//! The Symphony kernel: process table, event loop, syscall dispatch, the
//! two-level scheduler, and I/O with KV offload.
//!
//! # Determinism
//!
//! LIPs run on real OS threads, but the kernel is the only scheduler: it
//! delivers one reply, then blocks until *that* thread's next syscall (or
//! exit) arrives before touching anything else. Combined with the virtual
//! clock and seeded RNG streams, a whole serving run replays bit-identically
//! — the integration tests compare trace fingerprints across runs.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::Arc;

use crossbeam::channel::{unbounded, Receiver, Sender};
use symphony_gpu::{DeviceSpec, ExecError, GpuExecutor, GpuMetrics, PredRequest};
use symphony_kvfs::{
    FileId, KvError, KvStats, KvStore, KvStoreConfig, Mode, OwnerId, Residency, RestoreReport,
    SwapReport,
};
use symphony_model::surrogate::VocabInfo;
use symphony_model::{ModelConfig, Surrogate, TokenId};
use symphony_sim::{EventQueue, IdSlab, RetryPolicy, Rng, SimDuration, SimTime, Trace};
use symphony_telemetry::{
    export_chrome_trace, export_chrome_trace_with_flows, latency_bounds_ns, percent_bounds,
    Collector, Counter, EdgeKind, EventBus, EventKind, Gauge, Histogram, MetricsRegistry,
    MetricsSnapshot, SwapDir, TimedEvent,
};
use symphony_tokenizer::Bpe;

use crate::faults::{FaultInjector, FaultPlan, FaultStats, ToolFaultKind};
use crate::resilience::{
    AdmissionPolicy, BreakerBank, BreakerPolicy, BreakerVerdict, ResilienceCounters,
    ResilienceStats,
};
use crate::sched::{
    BatchPolicy, ContinuousConfig, Decision, ExecMode, InferScheduler, ProgramQueue,
};
use crate::syscall::{thread_main, Ctx, LipFn, SysReply, Syscall, UpCall};
use crate::tools::{ToolOutcome, ToolRegistry, ToolSpec};
use crate::types::{ExitStatus, Limits, Pid, ProcessRecord, ProcessUsage, SysError, Tid};
use crate::wal::{self, RecoveryReport, WalConfig, WalError, WalRecord, WalState};

/// A re-constructible program body for crash recovery. Unlike the plain
/// `FnOnce` closures accepted by [`Kernel::spawn_process`], an image can be
/// invoked again after a kernel crash, so [`Kernel::resume_programs`] can
/// re-execute the program deterministically from its start while answering
/// journalled syscall effects from the WAL.
pub type ProgramImage = Arc<dyn Fn(&mut Ctx) -> Result<(), SysError> + Send + Sync + 'static>;

/// Kernel construction parameters.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Served model shape (drives cost and KV footprint).
    pub model: ModelConfig,
    /// Seed of the surrogate model's behaviour.
    pub model_seed: u64,
    /// Simulated accelerator.
    pub device: DeviceSpec,
    /// Batch inference scheduling policy (§4.4). Only consulted in
    /// [`ExecMode::Static`]; the continuous executor admits at iteration
    /// boundaries instead of closing pool snapshots.
    pub batch_policy: BatchPolicy,
    /// How the GPU loop forms batches: run-to-completion snapshots
    /// ([`ExecMode::Static`]) or iteration-level continuous batching with
    /// chunked prefill and KVFS preemption ([`ExecMode::Continuous`]).
    pub exec: ExecMode,
    /// Global cap on requests per GPU batch.
    pub max_batch: usize,
    /// Tokens per KVFS page.
    pub page_tokens: usize,
    /// Host-memory KV swap space in bytes.
    pub cpu_swap_bytes: u64,
    /// NVMe disk-tier KV spill space in bytes. Zero disables the disk tier:
    /// DRAM exhaustion surfaces as `NoCpuMemory` exactly as before.
    pub disk_swap_bytes: u64,
    /// Restore the KV store from this journal at boot when the file exists
    /// (warm restart); [`Kernel::persist_kv`] writes it at shutdown.
    pub journal_path: Option<std::path::PathBuf>,
    /// Overrides the device-derived GPU KV budget (tests use tiny pools).
    pub gpu_kv_bytes_override: Option<u64>,
    /// Virtual CPU cost charged per system call.
    pub syscall_cost: SimDuration,
    /// Offload a process's KV files to host memory while it waits on I/O.
    pub offload_on_io_wait: bool,
    /// Only offload for tool calls at least this slow.
    pub offload_min_latency: SimDuration,
    /// Kernel RNG seed (tool latencies, LIP thread RNG streams).
    pub seed: u64,
    /// Default per-process limits.
    pub default_limits: Limits,
    /// Record a structured trace (disable for long benchmark runs).
    pub trace: bool,
    /// Record typed telemetry events for Chrome-trace export. When `false`
    /// (the default) the event bus is a no-op: no event is ever constructed.
    pub telemetry: bool,
    /// Additionally record *causal* events (spawn/IPC/join/tool/preempt
    /// edges, per-batch pred executions, replay hits) so the event stream
    /// reconstructs into per-program span DAGs
    /// (`symphony_telemetry::TraceForest`). Off by default: traces recorded
    /// without it stay byte-identical to the pre-causal format. Only
    /// meaningful together with `telemetry`.
    pub causal: bool,
    /// Cap on events retained by the telemetry bus; beyond it, emissions
    /// are dropped and counted under `telemetry.events_dropped`. `None`
    /// (the default) keeps everything.
    pub telemetry_capacity: Option<usize>,
    /// Fault-injection plan (all-zero = no faults, no extra RNG draws).
    pub faults: FaultPlan,
    /// Kernel-wide tool retry policy; a [`ToolSpec::with_retry`] overrides
    /// it per tool. `None` means one attempt.
    pub tool_retry: Option<RetryPolicy>,
    /// Per-tool circuit breaker; `None` disables breaking.
    pub breaker: Option<BreakerPolicy>,
    /// `pred` admission control under KV-pool pressure; `None` disables
    /// shedding and requeueing (KV exhaustion surfaces as `Kv(NoGpuMemory)`).
    pub admission: Option<AdmissionPolicy>,
    /// Kernel write-ahead log for crash tolerance; `None` disables
    /// journalling (and [`Kernel::recover`] fails with
    /// [`WalError::Disabled`]).
    pub wal: Option<WalConfig>,
}

impl KernelConfig {
    /// Small, fast configuration for unit tests: tiny model, test device,
    /// immediate batching, zero syscall cost.
    pub fn for_tests() -> Self {
        KernelConfig {
            model: ModelConfig::tiny(),
            model_seed: 7,
            device: DeviceSpec::test_device(),
            batch_policy: BatchPolicy::Immediate,
            exec: ExecMode::Static,
            max_batch: 64,
            page_tokens: 4,
            cpu_swap_bytes: 4_000_000,
            // No disk tier in tests by default: golden traces and capacity
            // assertions depend on the two-tier behaviour.
            disk_swap_bytes: 0,
            journal_path: None,
            gpu_kv_bytes_override: None,
            syscall_cost: SimDuration::ZERO,
            offload_on_io_wait: false,
            offload_min_latency: SimDuration::from_millis(10),
            seed: 42,
            default_limits: Limits::default(),
            trace: true,
            telemetry: false,
            causal: false,
            telemetry_capacity: None,
            faults: FaultPlan::none(),
            tool_retry: None,
            breaker: None,
            admission: None,
            wal: None,
        }
    }

    /// The paper's evaluation setup: Llama-13B on an A100-80G with adaptive
    /// batching.
    pub fn paper_setup() -> Self {
        KernelConfig {
            model: ModelConfig::llama_13b(),
            model_seed: 13,
            device: DeviceSpec::a100_80g(),
            batch_policy: BatchPolicy::Adaptive {
                target_batch: 16,
                max_wait: SimDuration::from_millis(10),
            },
            exec: ExecMode::Static,
            max_batch: 64,
            page_tokens: 16,
            cpu_swap_bytes: 256_000_000_000,
            disk_swap_bytes: 1_000_000_000_000,
            journal_path: None,
            gpu_kv_bytes_override: None,
            syscall_cost: SimDuration::from_micros(2),
            offload_on_io_wait: true,
            offload_min_latency: SimDuration::from_millis(20),
            seed: 42,
            default_limits: Limits::default(),
            trace: false,
            telemetry: false,
            causal: false,
            telemetry_capacity: None,
            faults: FaultPlan::none(),
            tool_retry: None,
            breaker: None,
            admission: None,
            wal: None,
        }
    }
}

/// Kernel events on the virtual clock.
enum Event {
    /// Deliver a reply to a parked thread.
    Resume(Tid, SysReply),
    /// A GPU batch finished.
    BatchDone { batch_id: u64 },
    /// An I/O (tool) completion. `issued_at` is when the call entered the
    /// kernel (the causal tool edge's source time).
    IoDone {
        tid: Tid,
        result: Result<String, SysError>,
        issued_at: SimTime,
    },
    /// Re-evaluate the batch scheduler.
    BatchTimer,
    /// A scheduled program arrival. `main_tid` is pre-assigned for durable
    /// programs so their per-thread RNG stream survives a crash before the
    /// arrival fires.
    SpawnProgram {
        pid: Pid,
        args: String,
        f: LipFn,
        main_tid: Option<Tid>,
    },
    /// A process's wall-clock deadline passed: fail its blocked receivers.
    DeadlineCheck { pid: Pid },
    /// Re-pool a `pred` that was backed off after KV-pool exhaustion.
    RequeuePred { pred: PendingPred },
}

struct ThreadState {
    pid: Pid,
    reply_tx: Sender<SysReply>,
    handle: Option<crate::lip_pool::JobHandle>,
    status: Option<ExitStatus>,
    join_waiters: Vec<Tid>,
    /// Name of the syscall this thread is currently parked in, for the
    /// telemetry `sys:*` span (closed when the reply is delivered).
    open_syscall: Option<&'static str>,
}

/// Per-process monotone sequence numbers for journalled syscall effects.
/// Each effectful syscall class draws the next id from its own stream; on
/// recovery the re-executed program draws the same ids in the same order,
/// which is how WAL records are matched back to their call sites (and how
/// tool side-effects are deduplicated).
#[derive(Debug, Clone, Copy, Default)]
struct EffectSeqs {
    tool: u64,
    send: u64,
    recv: u64,
    lookup: u64,
    now: u64,
    pred: u64,
}

struct Proc {
    main_tid: Tid,
    args: String,
    live_threads: u32,
    /// Undelivered messages: `(sender, payload, sent_at, sender_tid)`. The
    /// send context feeds the causal IPC edge when a later `recv` pops the
    /// entry; `sender_tid` 0 marks a mailbox rebuilt from the WAL (the
    /// pre-crash sender thread is unknown, so no edge is emitted).
    mailbox: VecDeque<(Pid, String, SimTime, u64)>,
    /// Threads parked in `recv`, with the effect-sequence id their eventual
    /// delivery will be journalled under.
    recv_waiters: VecDeque<(Tid, u64)>,
    limits: Limits,
    io_waiting: u32,
    offloaded: Vec<FileId>,
    finished: bool,
    /// Absolute virtual deadline (spawn time + `Limits::deadline`).
    deadline_at: Option<SimTime>,
    /// Deadline already detected (counts once per process).
    deadline_hit: bool,
    /// Cancelled from outside ([`Kernel::cancel_process`]): every
    /// subsequent syscall fails with [`SysError::Cancelled`].
    cancelled: bool,
    /// First `pred` completion observed (TTFT recorded).
    ttft_done: bool,
    /// Completion time of the last `pred` (inter-token latency).
    last_pred_done: Option<SimTime>,
    /// Effect-sequence counters for WAL journalling/replay.
    seqs: EffectSeqs,
    /// `true` for processes spawned via the durable API (journalled to the
    /// WAL and resumable after a crash).
    durable: bool,
}

struct PendingPred {
    tid: Tid,
    req: PredRequest,
    /// Times this request was requeued after KV-pool exhaustion.
    requeues: u32,
    /// When the `pred` first joined the pool (queue-delay metric; preserved
    /// across requeues so the delay covers the whole wait).
    enqueued_at: SimTime,
    /// Owning program (MLFQ service accounting).
    pid: Pid,
    /// `true` when issued by the program's main thread: a blocking,
    /// critical-path `pred`. Spawned threads' preds are treated as
    /// speculative/background work by the program-aware queue.
    critical: bool,
    // ---- continuous-executor progress (unused in static mode) ----
    /// Input tokens already executed in earlier iterations.
    done: usize,
    /// Distributions accumulated across chunks, delivered when `done`
    /// reaches the request length.
    dists: Vec<symphony_model::Dist>,
    /// File length at first admission, for rollback when a later chunk
    /// faults (a failed `pred` must leave no partial work, as in static
    /// mode).
    start_len: usize,
    /// Queue delay observed (first admission only).
    delay_recorded: bool,
    /// Effect-sequence id for the WAL `PredEffect` record of this call.
    seq: u64,
}

/// Ensure LIP-thread panics (crash tests, shutdown unwinds) do not spam
/// stderr: the hook suppresses output for threads named `lip-*`.
fn install_quiet_lip_panics() {
    use std::sync::OnceLock;
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let default = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let is_lip = std::thread::current()
                .name()
                .is_some_and(|n| n.starts_with("lip-"));
            if !is_lip {
                default(info);
            }
        }));
    });
}

/// Kernel-level latency/occupancy metrics in the unified registry.
struct KernelMetrics {
    /// Virtual time from process spawn to its first `pred` completion.
    ttft_ns: Histogram,
    /// Virtual time between consecutive `pred` completions of a process.
    inter_token_ns: Histogram,
    /// Virtual time a `pred` waited in the pool before batch launch.
    queue_delay_ns: Histogram,
    /// Batch size as a percentage of `max_batch`, one sample per batch.
    batch_occupancy_pct: Histogram,
    /// Whole-tool-call virtual latency (all attempts plus backoff).
    tool_latency_ns: Histogram,
    /// GPU KV pages in use, sampled after each batch.
    gpu_pages_used: Gauge,
    /// Disk-tier KV pages in use, sampled after each batch.
    disk_pages_used: Gauge,
    /// KV files swapped out to free GPU pages for an executing sequence
    /// (continuous executor only).
    preemptions: Counter,
    /// Prefill chunks executed by the continuous executor (requests that
    /// spanned more than one iteration).
    prefill_chunks: Counter,
    /// `finish_io` observed `io_waiting == 0` for the owning process — a
    /// bookkeeping bug (the decrement is clamped; this makes it visible).
    io_waiting_underflow: Counter,
    /// Successful `Kernel::recover` boots.
    recoveries: Counter,
    /// WAL frames replayed across all recoveries.
    replayed_frames: Counter,
    /// WAL checkpoints written.
    checkpoints: Counter,
    /// Durable bytes in the kernel WAL (header + synced frames).
    wal_bytes: Gauge,
    /// Admission-time static cost hints installed on the scheduler
    /// ([`Kernel::set_cost_hint`]).
    cost_hints: Counter,
    /// Wall-clock DES throughput of the latest [`Kernel::run`]: events
    /// processed per real second. Observability only — never read back
    /// into scheduling, so it cannot perturb determinism.
    events_per_sec: Gauge,
}

impl KernelMetrics {
    fn register(registry: &MetricsRegistry) -> Self {
        KernelMetrics {
            ttft_ns: registry.histogram("kernel.ttft_ns", &latency_bounds_ns()),
            inter_token_ns: registry.histogram("kernel.inter_token_ns", &latency_bounds_ns()),
            queue_delay_ns: registry.histogram("sched.queue_delay_ns", &latency_bounds_ns()),
            batch_occupancy_pct: registry.histogram("gpu.batch_occupancy_pct", &percent_bounds()),
            tool_latency_ns: registry.histogram("tools.call_latency_ns", &latency_bounds_ns()),
            gpu_pages_used: registry.gauge("kvfs.gpu_pages_used"),
            disk_pages_used: registry.gauge("kvfs.disk_pages_used"),
            preemptions: registry.counter("sched.preemptions"),
            prefill_chunks: registry.counter("sched.prefill_chunks"),
            io_waiting_underflow: registry.counter("kernel.io_waiting_underflow"),
            recoveries: registry.counter("kernel.recoveries"),
            replayed_frames: registry.counter("kernel.replayed_frames"),
            checkpoints: registry.counter("kernel.checkpoints"),
            wal_bytes: registry.gauge("kernel.wal_bytes"),
            cost_hints: registry.counter("sched.cost_hints"),
            events_per_sec: registry.gauge("sim.events_per_sec"),
        }
    }
}

/// The Symphony kernel.
pub struct Kernel {
    // Substrate.
    store: KvStore,
    /// Warm-restart report when the store was restored from a journal.
    restored: Option<RestoreReport>,
    gpu: GpuExecutor,
    tokenizer: &'static Bpe,
    tools: ToolRegistry,
    // Scheduling.
    events: EventQueue<Event>,
    ready: VecDeque<(Tid, SysReply)>,
    sched: InferScheduler<PendingPred>,
    exec: ExecMode,
    /// Continuous-mode wait queue (FIFO or program-aware MLFQ).
    cqueue: ProgramQueue<PendingPred>,
    /// Continuous-mode sequences admitted to the GPU, carried across
    /// iterations until they finish, fail or are preempted.
    active: Vec<PendingPred>,
    gpu_busy: bool,
    pending_batches: IdSlab<Vec<(Tid, SysReply)>>,
    next_batch: u64,
    timer_armed_until: Option<SimTime>,
    // Processes and threads.
    threads: IdSlab<ThreadState>,
    next_tid: u64,
    procs: IdSlab<Proc>,
    next_pid: u64,
    records: IdSlab<ProcessRecord>,
    names: BTreeMap<String, Pid>,
    live_threads: usize,
    // Plumbing.
    up_tx: Sender<UpCall>,
    up_rx: Receiver<UpCall>,
    rng: Rng,
    trace: Trace,
    // Telemetry.
    registry: MetricsRegistry,
    bus: EventBus,
    kmetrics: KernelMetrics,
    // Resilience.
    injector: FaultInjector,
    breakers: Option<BreakerBank>,
    admission: Option<AdmissionPolicy>,
    tool_retry: Option<RetryPolicy>,
    res_counters: ResilienceCounters,
    // Config extracts.
    causal: bool,
    syscall_cost: SimDuration,
    offload_on_io_wait: bool,
    offload_min_latency: SimDuration,
    default_limits: Limits,
    max_batch: usize,
    /// Open incremental KV journal ([`Kernel::open_kv_journal`]): deltas
    /// appended by [`Kernel::persist_kv_delta`], bounded by compaction.
    kv_journal: Option<symphony_kvfs::Journal>,
    // Crash tolerance.
    /// Open write-ahead log (`None` when journalling is disabled).
    wal: Option<WalState>,
    /// Journalled state being replayed after `recover`; consulted by
    /// effectful syscalls to answer from the log instead of re-firing.
    replay: Option<wal::Replay>,
    /// Pids spawned through the durable API (their effects are journalled).
    durable_pids: BTreeSet<u64>,
    /// `resume_programs` already ran (it must run at most once).
    programs_resumed: bool,
    /// Syscall boundaries crossed (crash-injection kill-points).
    syscall_boundaries: u64,
    /// Set when an injected kernel crash fired; the run loop halts.
    crashed: Option<u64>,
    // Serving.
    /// Streaming upcall sink: invoked synchronously on `emit`/`emit_tokens`
    /// and process exit so a front door (crates/serve) can forward output
    /// incrementally instead of polling finished records. `None` costs one
    /// branch per emit.
    session_sink: Option<SessionSink>,
}

/// Incremental session notifications delivered to a [`SessionSink`].
///
/// Events fire in virtual-time order, synchronously from the kernel event
/// loop, which is what makes a serving front door deterministic: the same
/// run yields the same event sequence byte for byte.
#[derive(Debug, Clone)]
pub enum SessionEvent {
    /// A process appended `text` to its output via `emit`/`emit_tokens`.
    Emitted {
        /// Emitting process.
        pid: Pid,
        /// Virtual emission time.
        at: SimTime,
        /// The appended text chunk.
        text: String,
        /// Tokens in the chunk (0 for plain-text `emit`).
        tokens: u64,
    },
    /// A process finished and its record is final.
    Exited {
        /// Exiting process.
        pid: Pid,
        /// Virtual exit time.
        at: SimTime,
        /// Final status.
        status: ExitStatus,
        /// Final resource usage.
        usage: ProcessUsage,
    },
}

/// Callback receiving [`SessionEvent`]s (see [`Kernel::set_session_sink`]).
pub type SessionSink = Box<dyn FnMut(SessionEvent) + Send>;

impl Kernel {
    /// Builds a kernel from a configuration.
    pub fn new(config: KernelConfig) -> Self {
        Self::build(config, None)
    }

    /// Boots a kernel from the write-ahead log at `config.wal.path`,
    /// restoring the virtual clock, pid/tid allocators, circuit-breaker
    /// state and the durable process table. In-flight durable programs are
    /// *not* re-executed yet — call [`Kernel::resume_programs`] with their
    /// program images, then [`Kernel::run`].
    ///
    /// The returned report counts candidates: `resumed` is the number of
    /// in-flight programs awaiting [`Kernel::resume_programs`], `finished`
    /// the completed ones restored as records, `lost` always zero here
    /// (images are only resolved at resume time).
    pub fn recover(config: KernelConfig) -> Result<(Self, RecoveryReport), WalError> {
        let wal_cfg = config.wal.clone().ok_or(WalError::Disabled)?;
        let bytes = std::fs::read(&wal_cfg.path).map_err(|_| WalError::Unreadable)?;
        let (seed, records, valid_len, torn) = wal::read_wal(&bytes)?;
        if seed != config.seed {
            return Err(WalError::Incompatible);
        }
        let replay = wal::build_replay(records, valid_len, torn);
        let report = RecoveryReport {
            resumed: replay.procs.values().filter(|p| p.exit.is_none()).count()
                + replay.scheduled.len(),
            finished: replay.procs.values().filter(|p| p.exit.is_some()).count(),
            lost: 0,
            frames: replay.frames,
            wal_bytes: replay.wal_bytes,
            torn: replay.torn,
            clock: replay.clock,
        };
        let kernel = Self::build(config, Some(replay));
        Ok((kernel, report))
    }

    fn build(config: KernelConfig, replay: Option<wal::Replay>) -> Self {
        install_quiet_lip_panics();
        let tokenizer = Bpe::default_tokenizer();
        let model = Surrogate::new(config.model, config.model_seed)
            .with_vocab(VocabInfo::from_tokenizer(tokenizer));
        let gpu_kv_bytes = config
            .gpu_kv_bytes_override
            .unwrap_or_else(|| config.device.kv_budget_bytes(&config.model));
        let registry = MetricsRegistry::new();
        let store_config = KvStoreConfig::from_bytes(
            gpu_kv_bytes,
            config.cpu_swap_bytes,
            config.disk_swap_bytes,
            config.model.kv_bytes_per_token(),
            config.page_tokens,
        );
        // Warm restart: replay the journal when one exists at the configured
        // path. Any failure (missing file, incompatible geometry) falls back
        // to a cold store — a serving kernel must boot either way.
        let mut restored = None;
        let store = match config
            .journal_path
            .as_deref()
            .filter(|p| p.exists())
            .and_then(|p| KvStore::restore_from_journal(p, store_config, &registry).ok())
        {
            Some((store, report)) => {
                restored = Some(report);
                store
            }
            None => KvStore::with_registry(store_config, &registry),
        };
        let (up_tx, up_rx) = unbounded();
        let wal_config = config.wal.clone();
        let mut kernel = Kernel {
            store,
            restored,
            gpu: GpuExecutor::with_registry(config.device, model, &registry),
            tokenizer,
            tools: ToolRegistry::new(),
            events: EventQueue::new(),
            ready: VecDeque::new(),
            sched: InferScheduler::new(config.batch_policy, config.max_batch),
            exec: config.exec,
            cqueue: ProgramQueue::new(match config.exec {
                ExecMode::Static => crate::sched::QueueDiscipline::Fifo,
                ExecMode::Continuous(c) => c.discipline,
            }),
            active: Vec::new(),
            gpu_busy: false,
            pending_batches: IdSlab::new(),
            next_batch: 0,
            timer_armed_until: None,
            threads: IdSlab::new(),
            next_tid: 1,
            procs: IdSlab::new(),
            next_pid: 1,
            records: IdSlab::new(),
            names: BTreeMap::new(),
            live_threads: 0,
            up_tx,
            up_rx,
            rng: Rng::new(config.seed),
            trace: if config.trace {
                Trace::new()
            } else {
                Trace::disabled()
            },
            bus: {
                // The drop counter registers unconditionally so metrics
                // snapshots are identical with telemetry on or off.
                let dropped = registry.counter("telemetry.events_dropped");
                if config.telemetry {
                    let mut bus = EventBus::recording();
                    bus.set_capacity(config.telemetry_capacity);
                    bus.set_drop_counter(dropped);
                    bus
                } else {
                    EventBus::disabled()
                }
            },
            kmetrics: KernelMetrics::register(&registry),
            injector: FaultInjector::with_registry(config.faults, config.seed, &registry),
            breakers: config
                .breaker
                .map(|p| BreakerBank::with_registry(p, &registry)),
            admission: config.admission,
            tool_retry: config.tool_retry,
            res_counters: ResilienceCounters::register(&registry),
            registry,
            causal: config.causal,
            syscall_cost: config.syscall_cost,
            offload_on_io_wait: config.offload_on_io_wait,
            offload_min_latency: config.offload_min_latency,
            default_limits: config.default_limits,
            max_batch: config.max_batch,
            kv_journal: None,
            wal: None,
            replay: None,
            durable_pids: BTreeSet::new(),
            programs_resumed: false,
            syscall_boundaries: 0,
            crashed: None,
            session_sink: None,
        };
        if let Some(r) = replay {
            // Restore the virtual clock and allocators so re-executed
            // programs see identical pids, tids (hence RNG streams) and
            // scheduling decisions.
            kernel.events.advance_to(r.clock);
            kernel.next_pid = kernel.next_pid.max(r.next_pid);
            kernel.next_tid = kernel.next_tid.max(r.next_tid);
            if let Some(bank) = kernel.breakers.as_mut() {
                bank.import_states(r.breakers.clone());
            }
            kernel.kmetrics.recoveries.inc();
            kernel.kmetrics.replayed_frames.add(r.frames);
            if let Some(cfg) = &wal_config {
                let w = WalState::open_append(cfg, r.wal_bytes, r.clock)
                    // lint:allow(k1): an unusable WAL at recovery boot is unrecoverable
                    .expect("reopen kernel WAL");
                kernel.kmetrics.wal_bytes.set(w.bytes_written as i64);
                kernel.wal = Some(w);
            }
            kernel.replay = Some(r);
        } else if let Some(cfg) = &wal_config {
            let w = WalState::create(cfg, config.seed)
                // lint:allow(k1): WAL creation failing at kernel boot is unrecoverable
                .expect("create kernel WAL");
            kernel.kmetrics.wal_bytes.set(w.bytes_written as i64);
            kernel.wal = Some(w);
        }
        kernel
    }

    // ---- setup API ------------------------------------------------------------

    /// Registers a server-side tool.
    pub fn register_tool(&mut self, name: &str, spec: ToolSpec) {
        self.tools.register(name, spec);
    }

    /// Preloads a KV file under `path` as the admin (e.g. a shared system
    /// prompt), computing its fingerprint chain without charging GPU time —
    /// the moral equivalent of shipping precomputed KV with the deployment.
    pub fn preload_kv(
        &mut self,
        path: &str,
        tokens: &[TokenId],
        mode: Mode,
        pinned: bool,
    ) -> Result<FileId, SysError> {
        let fpr = self.gpu.model().fingerprinter();
        let mut fp = fpr.origin();
        let entries: Vec<symphony_kvfs::KvEntry> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| {
                fp = fpr.advance(fp, t, i as u32);
                symphony_kvfs::KvEntry::new(t, i as u32, fp)
            })
            .collect();
        let f = self.store.create(OwnerId::ADMIN)?;
        self.store.append(f, OwnerId::ADMIN, &entries)?;
        self.store.chmod(f, OwnerId::ADMIN, mode)?;
        if pinned {
            self.store.pin(f, OwnerId::ADMIN)?;
        }
        self.store.link(f, path, OwnerId::ADMIN)?;
        Ok(f)
    }

    /// The warm-restart report when this kernel booted from a journal
    /// (`KernelConfig::journal_path`); `None` after a cold start.
    pub fn restored(&self) -> Option<&RestoreReport> {
        self.restored.as_ref()
    }

    /// Snapshots the KV store to an append-only journal at `path` for a
    /// later warm restart. Returns `Ok(true)` when the journal landed
    /// complete; under an injected `kv.journal_write` fault the write is
    /// torn mid-record (the tail third is lost) and `Ok(false)` is returned
    /// — replay will recover the valid prefix.
    pub fn persist_kv(&mut self, path: &std::path::Path) -> std::io::Result<bool> {
        let mut bytes = self.store.journal_bytes();
        let torn = self.injector.journal_write();
        if torn {
            let cut = bytes.len() - bytes.len() / 3;
            bytes.truncate(cut);
            let at = self.events.now();
            self.bus.emit(at, || EventKind::FaultInjected {
                site: "kv.journal_write",
            });
        }
        std::fs::write(path, bytes)?;
        Ok(!torn)
    }

    /// Opens an incremental KV journal at `path`: writes the current store
    /// as its base snapshot and starts delta tracking. From here on,
    /// [`Kernel::persist_kv_delta`] appends only what changed, and the
    /// journal is rewritten snapshot-equivalent whenever it crosses
    /// `config.compact_threshold_bytes` — so its size is bounded by the
    /// threshold plus one delta batch, not by history length.
    pub fn open_kv_journal(
        &mut self,
        path: &std::path::Path,
        config: symphony_kvfs::JournalConfig,
    ) -> std::io::Result<()> {
        let snapshot = self.store.journal_bytes();
        let journal = symphony_kvfs::Journal::create(path, &snapshot, config)?;
        self.store.enable_delta_log();
        self.store.set_journal_len_metric(journal.bytes());
        self.kv_journal = Some(journal);
        Ok(())
    }

    /// Appends the store's changes since the last call to the open KV
    /// journal, flushes them to disk, and compacts when the journal has
    /// crossed its threshold. Returns `Ok(true)` when a compaction ran;
    /// a no-op `Ok(false)` without an open journal.
    pub fn persist_kv_delta(&mut self) -> std::io::Result<bool> {
        let Some(journal) = self.kv_journal.as_mut() else {
            return Ok(false);
        };
        for rec in self.store.take_delta() {
            journal.append(&rec)?;
        }
        journal.flush()?;
        let mut compacted = false;
        if journal.needs_compaction() {
            let snapshot = self.store.journal_bytes();
            journal.compact(&snapshot)?;
            self.store.note_compaction();
            compacted = true;
        }
        self.store.set_journal_len_metric(journal.bytes());
        Ok(compacted)
    }

    /// Spawns a LIP immediately (at the current virtual time) with the
    /// default limits.
    pub fn spawn_process<F>(&mut self, name: &str, args: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) -> Result<(), SysError> + Send + 'static,
    {
        self.spawn_process_with_limits(name, args, self.default_limits, f)
    }

    /// Spawns a LIP immediately with explicit limits.
    pub fn spawn_process_with_limits<F>(
        &mut self,
        name: &str,
        args: &str,
        limits: Limits,
        f: F,
    ) -> Pid
    where
        F: FnOnce(&mut Ctx) -> Result<(), SysError> + Send + 'static,
    {
        let pid = self.alloc_pid(name, self.events.now(), limits);
        self.start_process(pid, args.to_string(), Box::new(f), None);
        pid
    }

    /// Schedules a LIP to arrive at a future virtual time (workload driving).
    pub fn schedule_process<F>(&mut self, at: SimTime, name: &str, args: &str, f: F) -> Pid
    where
        F: FnOnce(&mut Ctx) -> Result<(), SysError> + Send + 'static,
    {
        let pid = self.alloc_pid(name, at, self.default_limits);
        self.events.schedule(
            at,
            Event::SpawnProgram {
                pid,
                args: args.to_string(),
                f: Box::new(f),
                main_tid: None,
            },
        );
        pid
    }

    /// Installs an admission-time static cost hint for a program: the
    /// verifier's upper bound on critical-path pred tokens
    /// ([`EffectSummary::service_estimate`] in `symphony-lipscript`), or
    /// `None` when the bound is statically unbounded. The continuous
    /// executor's MLFQ adds the hint to observed service when picking a
    /// queue level, so known-cheap programs keep top priority and
    /// unbounded ones start at the bottom of the ladder. A no-op beyond
    /// bookkeeping under FIFO or the batch executor.
    pub fn set_cost_hint(&mut self, pid: Pid, est_service_tokens: Option<u64>) {
        self.cqueue.set_static_hint(pid.0, est_service_tokens);
        self.kmetrics.cost_hints.inc();
    }

    // ---- durable (crash-tolerant) process API ---------------------------------

    /// Spawns a durable LIP immediately: its spawn and effectful syscalls
    /// are journalled to the WAL so [`Kernel::recover`] +
    /// [`Kernel::resume_programs`] can re-execute it deterministically
    /// after a crash. The image must be re-invocable; see [`ProgramImage`].
    pub fn spawn_durable(&mut self, name: &str, args: &str, image: ProgramImage) -> Pid {
        self.spawn_durable_with_limits(name, args, self.default_limits, image)
    }

    /// Spawns a durable LIP with explicit limits.
    pub fn spawn_durable_with_limits(
        &mut self,
        name: &str,
        args: &str,
        limits: Limits,
        image: ProgramImage,
    ) -> Pid {
        let pid = self.alloc_pid(name, self.events.now(), limits);
        self.mark_durable(pid);
        let f: LipFn = Box::new(move |ctx| image(ctx));
        self.start_process(pid, args.to_string(), f, None);
        pid
    }

    /// Schedules a durable LIP for a future virtual arrival. The schedule
    /// itself is journalled — with a main thread id pre-assigned *now*, so
    /// the program's per-thread RNG stream is identical whether or not a
    /// crash intervenes before it starts — and a crash before the arrival
    /// does not drop the program.
    pub fn schedule_durable(
        &mut self,
        at: SimTime,
        name: &str,
        args: &str,
        image: ProgramImage,
    ) -> Pid {
        self.schedule_durable_with_limits(at, name, args, self.default_limits, image)
    }

    /// Schedules a durable LIP with explicit limits.
    pub fn schedule_durable_with_limits(
        &mut self,
        at: SimTime,
        name: &str,
        args: &str,
        limits: Limits,
        image: ProgramImage,
    ) -> Pid {
        let pid = self.alloc_pid(name, at, limits);
        self.mark_durable(pid);
        // Pre-assign the main tid: recovery re-admits this program from the
        // journal and must fork the same per-thread RNG stream.
        let main_tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.wal_append(WalRecord::ProcSched {
            at: self.events.now(),
            pid: pid.0,
            main_tid: main_tid.0,
            arrival: at,
            durable: true,
            name: name.to_string(),
            args: args.to_string(),
            limits,
        });
        let f: LipFn = Box::new(move |ctx| image(ctx));
        self.events.schedule(
            at,
            Event::SpawnProgram {
                pid,
                args: args.to_string(),
                f,
                main_tid: Some(main_tid),
            },
        );
        pid
    }

    fn mark_durable(&mut self, pid: Pid) {
        if let Some(p) = self.procs.get_mut(pid.0) {
            p.durable = true;
        }
        self.durable_pids.insert(pid.0);
    }

    fn alloc_pid(&mut self, name: &str, spawned_at: SimTime, limits: Limits) -> Pid {
        let pid = Pid(self.next_pid);
        self.next_pid += 1;
        self.records.insert(
            pid.0,
            ProcessRecord {
                pid,
                name: name.to_string(),
                spawned_at,
                exited_at: None,
                status: ExitStatus::Ok,
                output: String::new(),
                usage: ProcessUsage::default(),
            },
        );
        self.names.insert(name.to_string(), pid);
        if let Some(q) = limits.kv_quota_pages {
            self.store.set_quota(OwnerId(pid.0), Some(q));
        }
        let deadline_at = limits.deadline.map(|d| spawned_at + d);
        if let Some(t) = deadline_at {
            self.events.schedule(t, Event::DeadlineCheck { pid });
        }
        self.procs.insert(
            pid.0,
            Proc {
                main_tid: Tid(0),
                args: String::new(),
                live_threads: 0,
                mailbox: VecDeque::new(),
                recv_waiters: VecDeque::new(),
                limits,
                io_waiting: 0,
                offloaded: Vec::new(),
                finished: false,
                deadline_at,
                deadline_hit: false,
                cancelled: false,
                ttft_done: false,
                last_pred_done: None,
                seqs: EffectSeqs::default(),
                durable: false,
            },
        );
        pid
    }

    fn start_process(&mut self, pid: Pid, args: String, f: LipFn, forced_tid: Option<Tid>) {
        // `spawn` just inserted the record; a miss would mean the caller
        // passed a foreign pid. Degrade to a no-op instead of panicking.
        let Some(proc) = self.procs.get_mut(pid.0) else {
            debug_assert!(false, "start_process: unknown pid {}", pid.0);
            return;
        };
        proc.args = args.clone();
        if self.bus.is_enabled() {
            let name = self.records[pid.0].name.clone();
            let at = self.events.now();
            self.bus
                .emit(at, move || EventKind::ProcessSpawn { pid: pid.0, name });
        }
        let tid = match forced_tid {
            Some(t) => self.spawn_thread_with_tid(t, pid, args, f),
            None => self.spawn_thread(pid, args, f),
        };
        if let Some(proc) = self.procs.get_mut(pid.0) {
            proc.main_tid = tid;
        }
        // Journal durable spawns, except re-executions of already-journalled
        // programs during recovery (their spawn frame is already durable).
        let journal_spawn = self.durable_pids.contains(&pid.0)
            && !self
                .replay
                .as_ref()
                .is_some_and(|r| r.procs.contains_key(&pid.0));
        if journal_spawn {
            let (name, limits) = {
                let rec = &self.records[pid.0];
                let limits = self
                    .procs
                    .get(pid.0)
                    .map(|p| p.limits)
                    .unwrap_or(self.default_limits);
                (rec.name.clone(), limits)
            };
            let args = self
                .procs
                .get(pid.0)
                .map(|p| p.args.clone())
                .unwrap_or_default();
            self.wal_append(WalRecord::ProcSpawn {
                at: self.events.now(),
                pid: pid.0,
                main_tid: tid.0,
                durable: true,
                name,
                args,
                limits,
            });
        }
        self.trace.record_with(
            self.events.now(),
            "kernel",
            || format!("spawn pid={} tid={}", pid.0, tid.0),
        );
    }

    fn spawn_thread(&mut self, pid: Pid, args: String, f: LipFn) -> Tid {
        let tid = Tid(self.next_tid);
        self.next_tid += 1;
        self.spawn_thread_with_tid(tid, pid, args, f)
    }

    /// Spawns the LIP thread under a pre-assigned tid (recovery re-admission
    /// and journalled schedules, where tid identity pins the RNG stream).
    fn spawn_thread_with_tid(&mut self, tid: Tid, pid: Pid, args: String, f: LipFn) -> Tid {
        let (reply_tx, reply_rx) = unbounded();
        let ctx = Ctx::new(
            tid,
            pid,
            args,
            self.up_tx.clone(),
            reply_rx,
            self.rng.fork(tid.0),
            self.tokenizer.specials(),
        );
        let handle = crate::lip_pool::spawn_lip(Box::new(move || thread_main(ctx, f)));
        self.threads.insert(
            tid.0,
            ThreadState {
                pid,
                reply_tx,
                handle: Some(handle),
                status: None,
                join_waiters: Vec::new(),
                open_syscall: None,
            },
        );
        let at = self.events.now();
        self.bus.emit(at, || EventKind::ThreadSpawn {
            pid: pid.0,
            tid: tid.0,
        });
        if let Some(proc) = self.procs.get_mut(pid.0) {
            proc.live_threads += 1;
        }
        if let Some(r) = self.records.get_mut(pid.0) {
            r.usage.threads_spawned += 1;
        }
        self.live_threads += 1;
        self.ready.push_back((tid, SysReply::Start));
        tid
    }

    // ---- recovery --------------------------------------------------------------

    /// Re-admits journalled programs after [`Kernel::recover`]. `resolve`
    /// maps a program name to its image: unfinished programs re-execute
    /// deterministically from their start (journalled effects answer their
    /// syscalls up to the crash point), finished programs are restored as
    /// records without re-execution, and unresolvable programs are recorded
    /// as crashed. Returns the final recovery report; a second call (or a
    /// call on a non-recovered kernel) is a no-op reporting zeros.
    pub fn resume_programs<F>(&mut self, resolve: F) -> RecoveryReport
    where
        F: Fn(&str) -> Option<ProgramImage>,
    {
        let empty = RecoveryReport {
            resumed: 0,
            finished: 0,
            lost: 0,
            frames: 0,
            wal_bytes: 0,
            torn: false,
            clock: self.events.now(),
        };
        if self.programs_resumed {
            return empty;
        }
        let Some(replay) = self.replay.as_ref() else {
            return empty;
        };
        self.programs_resumed = true;
        let procs: Vec<(u64, wal::ReplayProc)> =
            replay.procs.iter().map(|(k, v)| (*k, v.clone())).collect();
        let scheduled: Vec<(u64, wal::ReplaySched)> = replay
            .scheduled
            .iter()
            .map(|(k, v)| (*k, v.clone()))
            .collect();
        let sends = replay.sends.clone();
        let mut to_skip = replay.recv_counts();
        let (frames, wal_bytes, torn, clock) =
            (replay.frames, replay.wal_bytes, replay.torn, replay.clock);
        let (mut resumed, mut finished, mut lost) = (0, 0, 0);
        for (pid, rp) in &procs {
            match &rp.exit {
                Some(exit) => {
                    self.restore_finished(*pid, rp, exit);
                    finished += 1;
                }
                None => match resolve(&rp.name) {
                    Some(image) => {
                        self.readmit(*pid, rp, image);
                        resumed += 1;
                    }
                    None => {
                        self.restore_lost(*pid, &rp.name, rp.spawned_at);
                        lost += 1;
                    }
                },
            }
        }
        for (pid, rs) in &scheduled {
            match resolve(&rs.name) {
                Some(image) => {
                    self.reschedule(*pid, rs, image);
                    resumed += 1;
                }
                None => {
                    self.restore_lost(*pid, &rs.name, rs.arrival);
                    lost += 1;
                }
            }
        }
        // Rebuild mailboxes: delivered sends in journal order, minus the
        // prefix each receiver already consumed (journalled recvs replay
        // from the log, not from the mailbox).
        for s in sends {
            if !s.delivered {
                continue;
            }
            if let Some(n) = to_skip.get_mut(&s.to) {
                if *n > 0 {
                    *n -= 1;
                    continue;
                }
            }
            if let Some(p) = self.procs.get_mut(s.to) {
                p.mailbox.push_back((Pid(s.from), s.data, SimTime::ZERO, 0));
            }
        }
        let at = self.events.now();
        let resumed_u = resumed as u64;
        self.bus.emit(at, move || EventKind::KernelRecovery {
            resumed: resumed_u,
            replayed_frames: frames,
        });
        self.trace.record_with(
            at,
            "kernel",
            || format!("recovered resumed={resumed} finished={finished} lost={lost}"),
        );
        RecoveryReport {
            resumed,
            finished,
            lost,
            frames,
            wal_bytes,
            torn,
            clock,
        }
    }

    /// Restores a journalled, completed process as a record (no
    /// re-execution; its outputs are already durable).
    fn restore_finished(&mut self, pid: u64, rp: &wal::ReplayProc, exit: &wal::ReplayExit) {
        self.records.insert(
            pid,
            ProcessRecord {
                pid: Pid(pid),
                name: rp.name.clone(),
                spawned_at: rp.spawned_at,
                exited_at: Some(exit.at),
                status: exit.status.clone(),
                output: exit.output.clone(),
                usage: exit.usage,
            },
        );
        self.names.insert(rp.name.clone(), Pid(pid));
        self.durable_pids.insert(pid);
    }

    /// Records an unfinished program whose image could not be resolved.
    fn restore_lost(&mut self, pid: u64, name: &str, spawned_at: SimTime) {
        self.records.insert(
            pid,
            ProcessRecord {
                pid: Pid(pid),
                name: name.to_string(),
                spawned_at,
                exited_at: Some(self.events.now()),
                status: ExitStatus::Crashed,
                output: String::new(),
                usage: ProcessUsage::default(),
            },
        );
        self.names.insert(name.to_string(), Pid(pid));
    }

    /// Re-admits one unfinished program under its original pid and main
    /// tid, so re-execution draws the same RNG stream and allocates the
    /// same identifiers as the pre-crash run.
    fn readmit(&mut self, pid: u64, rp: &wal::ReplayProc, image: ProgramImage) {
        self.records.insert(
            pid,
            ProcessRecord {
                pid: Pid(pid),
                name: rp.name.clone(),
                spawned_at: rp.spawned_at,
                exited_at: None,
                status: ExitStatus::Ok,
                output: String::new(),
                usage: ProcessUsage::default(),
            },
        );
        self.names.insert(rp.name.clone(), Pid(pid));
        if let Some(q) = rp.limits.kv_quota_pages {
            self.store.set_quota(OwnerId(pid), Some(q));
        }
        let deadline_at = rp.limits.deadline.map(|d| rp.spawned_at + d);
        if let Some(t) = deadline_at {
            self.events.schedule(
                t.max(self.events.now()),
                Event::DeadlineCheck { pid: Pid(pid) },
            );
        }
        self.procs.insert(
            pid,
            Proc {
                main_tid: Tid(rp.main_tid),
                args: rp.args.clone(),
                live_threads: 0,
                mailbox: VecDeque::new(),
                recv_waiters: VecDeque::new(),
                limits: rp.limits,
                io_waiting: 0,
                offloaded: Vec::new(),
                finished: false,
                deadline_at,
                deadline_hit: false,
                cancelled: false,
                ttft_done: false,
                last_pred_done: None,
                seqs: EffectSeqs::default(),
                durable: rp.durable,
            },
        );
        self.durable_pids.insert(pid);
        if self.bus.is_enabled() {
            let name = rp.name.clone();
            let at = self.events.now();
            self.bus
                .emit(at, move || EventKind::ProcessSpawn { pid, name });
        }
        let f: LipFn = Box::new(move |ctx| image(ctx));
        self.spawn_thread_with_tid(Tid(rp.main_tid), Pid(pid), rp.args.clone(), f);
    }

    /// Re-schedules a journalled future arrival that had not started by the
    /// crash. Arrivals already in the past fire at the restored clock.
    fn reschedule(&mut self, pid: u64, rs: &wal::ReplaySched, image: ProgramImage) {
        let arrival = rs.arrival.max(self.events.now());
        self.records.insert(
            pid,
            ProcessRecord {
                pid: Pid(pid),
                name: rs.name.clone(),
                spawned_at: rs.arrival,
                exited_at: None,
                status: ExitStatus::Ok,
                output: String::new(),
                usage: ProcessUsage::default(),
            },
        );
        self.names.insert(rs.name.clone(), Pid(pid));
        if let Some(q) = rs.limits.kv_quota_pages {
            self.store.set_quota(OwnerId(pid), Some(q));
        }
        let deadline_at = rs.limits.deadline.map(|d| rs.arrival + d);
        if let Some(t) = deadline_at {
            self.events
                .schedule(t.max(arrival), Event::DeadlineCheck { pid: Pid(pid) });
        }
        self.procs.insert(
            pid,
            Proc {
                main_tid: Tid(0),
                args: String::new(),
                live_threads: 0,
                mailbox: VecDeque::new(),
                recv_waiters: VecDeque::new(),
                limits: rs.limits,
                io_waiting: 0,
                offloaded: Vec::new(),
                finished: false,
                deadline_at,
                deadline_hit: false,
                cancelled: false,
                ttft_done: false,
                last_pred_done: None,
                seqs: EffectSeqs::default(),
                durable: rs.durable,
            },
        );
        self.durable_pids.insert(pid);
        let args = rs.args.clone();
        let f: LipFn = Box::new(move |ctx| image(ctx));
        self.events.schedule(
            arrival,
            Event::SpawnProgram {
                pid: Pid(pid),
                args,
                f,
                main_tid: Some(Tid(rs.main_tid)),
            },
        );
    }

    // ---- WAL plumbing ----------------------------------------------------------

    /// Appends one synchronous frame (no-op when the WAL is disabled).
    fn wal_append(&mut self, rec: WalRecord) {
        let Some(w) = self.wal.as_mut() else {
            return;
        };
        w.append_sync(&rec)
            // lint:allow(k1): a failed WAL write silently voids durability
            .expect("kernel WAL append");
        self.kmetrics.wal_bytes.set(w.bytes_written as i64);
    }

    /// Buffers a bulky pred frame for the next checkpoint (no-op when the
    /// WAL is disabled).
    fn wal_buffer_pred(&mut self, rec: WalRecord) {
        if let Some(w) = self.wal.as_mut() {
            w.buffer_pred(&rec);
        }
    }

    /// Writes a checkpoint frame (flushing buffered pred frames) when the
    /// virtual clock has passed the next checkpoint boundary.
    fn maybe_checkpoint(&mut self) {
        let now = self.events.now();
        if self.wal.as_ref().is_none_or(|w| now < w.next_checkpoint_at) {
            return;
        }
        let breakers = self
            .breakers
            .as_ref()
            .map(|b| b.export_states())
            .unwrap_or_default();
        let rec = WalRecord::Checkpoint {
            at: now,
            next_pid: self.next_pid,
            next_tid: self.next_tid,
            breakers,
        };
        let Some(w) = self.wal.as_mut() else {
            return;
        };
        let frames = w
            .checkpoint(&rec)
            // lint:allow(k1): a failed WAL write silently voids durability
            .expect("kernel WAL checkpoint");
        while w.next_checkpoint_at <= now {
            w.next_checkpoint_at += w.checkpoint_every;
        }
        let wal_bytes = w.bytes_written;
        self.kmetrics.checkpoints.inc();
        self.kmetrics.wal_bytes.set(wal_bytes as i64);
        self.bus
            .emit(now, move || EventKind::WalCheckpoint { frames, wal_bytes });
    }

    /// An injected kernel crash: halt the run loop, dropping buffered
    /// (unflushed) pred frames exactly as a real crash would.
    fn crash_now(&mut self, boundary: u64) {
        let at = self.events.now();
        self.bus
            .emit(at, move || EventKind::KernelCrash { boundary });
        self.trace
            .record_with(at, "kernel", || format!("crash at boundary {boundary}"));
        if let Some(w) = self.wal.as_mut() {
            w.pred_buf.clear();
            w.buffered_frames = 0;
        }
        self.crashed = Some(boundary);
    }

    /// `true` when `pid`'s effectful syscalls are journalled.
    fn is_durable(&self, pid: Pid) -> bool {
        self.procs.get(pid.0).is_some_and(|p| p.durable)
    }

    /// Rebuilds the KV entries a replayed `pred` appended pre-crash, so
    /// later live `pred`s against the same file see identical contents.
    /// Charges no GPU time (the work was already paid for before the
    /// crash). Returns `false` if the file state does not admit the append
    /// (the caller then falls back to live execution).
    fn replay_pred_append(
        &mut self,
        file: FileId,
        owner: OwnerId,
        tokens: &[(TokenId, u32)],
    ) -> bool {
        let fpr = self.gpu.model().fingerprinter();
        let mut fp = match self.store.tail_fingerprint(file) {
            Ok(Some(fp)) => fp,
            Ok(None) => fpr.origin(),
            Err(_) => return false,
        };
        let entries: Vec<symphony_kvfs::KvEntry> = tokens
            .iter()
            .map(|&(t, p)| {
                fp = fpr.advance(fp, t, p);
                symphony_kvfs::KvEntry::new(t, p, fp)
            })
            .collect();
        self.store.append(file, owner, &entries).is_ok()
    }

    /// The kill-point that halted this kernel, when an injected crash fired.
    pub fn crashed(&self) -> Option<u64> {
        self.crashed
    }

    /// Syscall boundaries crossed so far — the kill-point space the
    /// chaos sweep iterates with `FaultPlan::crash_at_boundary`.
    pub fn syscall_boundaries(&self) -> u64 {
        self.syscall_boundaries
    }

    /// Tool-handler invocations in this kernel. Replayed tool calls answer
    /// from the WAL without re-invoking handlers, so summing this across a
    /// crashed run and its recovery must equal the crash-free count
    /// (exactly-once side-effects).
    pub fn tool_invocations(&self) -> u64 {
        self.tools.invocations()
    }

    /// WAL frames replayed by `recover` across this kernel's lifetime.
    pub fn replayed_frames(&self) -> u64 {
        self.registry
            .counter_value("kernel.replayed_frames")
            .unwrap_or(0)
    }

    // ---- introspection ----------------------------------------------------------

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// Discrete events processed by the kernel's virtual clock since boot.
    /// The numerator of the `sim.events_per_sec` throughput metric the
    /// `exp_bench` harness reports.
    pub fn events_processed(&self) -> u64 {
        self.events.events_processed()
    }

    /// The record for a process (live or exited).
    pub fn record(&self, pid: Pid) -> Option<&ProcessRecord> {
        self.records.get(pid.0)
    }

    /// All process records, in PID order.
    pub fn records(&self) -> impl Iterator<Item = &ProcessRecord> {
        self.records.values()
    }

    /// GPU executor metrics.
    pub fn gpu_metrics(&self) -> GpuMetrics {
        self.gpu.metrics()
    }

    /// KV store statistics.
    pub fn kv_stats(&self) -> KvStats {
        self.store.stats()
    }

    /// Sequences preempted (KV swapped out) by the continuous executor to
    /// free GPU pages. Always 0 in [`ExecMode::Static`].
    pub fn preemptions(&self) -> u64 {
        self.registry
            .counter_value("sched.preemptions")
            .unwrap_or(0)
    }

    /// Prefill chunks executed by the continuous executor (requests that
    /// spanned more than one GPU iteration).
    pub fn prefill_chunks(&self) -> u64 {
        self.registry
            .counter_value("sched.prefill_chunks")
            .unwrap_or(0)
    }

    /// Static cost hints installed via [`Kernel::set_cost_hint`].
    pub fn cost_hints(&self) -> u64 {
        self.registry.counter_value("sched.cost_hints").unwrap_or(0)
    }

    /// Injected-fault counters for this run.
    pub fn fault_stats(&self) -> FaultStats {
        self.injector.stats()
    }

    /// Resilience counters (retries, timeouts, breaker trips, shedding).
    /// A snapshot of the `resilience.*` registry counters; the breaker bank
    /// increments the same entries, so no merging is needed.
    pub fn resilience_stats(&self) -> ResilienceStats {
        self.res_counters.snapshot()
    }

    /// The unified metrics registry (counters, gauges, histograms for every
    /// subsystem: `kernel.*`, `sched.*`, `gpu.*`, `kvfs.*`, `tools.*`,
    /// `faults.*`, `resilience.*`).
    pub fn metrics_registry(&self) -> &MetricsRegistry {
        &self.registry
    }

    /// A point-in-time snapshot of every registered metric, in name order.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.registry.snapshot()
    }

    /// Telemetry events recorded so far (empty unless
    /// [`KernelConfig::telemetry`] was set or a memory collector installed).
    pub fn telemetry_events(&self) -> &[TimedEvent] {
        self.bus.events()
    }

    /// Telemetry events constructed so far — stays 0 while the bus is
    /// disabled, which is the zero-cost property the tests assert.
    pub fn telemetry_constructed(&self) -> u64 {
        self.bus.constructed()
    }

    /// Replaces the telemetry collector, returning the old one (tests use
    /// this to install a counting collector mid-run).
    pub fn set_event_collector(&mut self, collector: Collector) -> Collector {
        self.bus.set_collector(collector)
    }

    /// Renders the recorded telemetry events as Chrome trace-event JSON
    /// (Perfetto-loadable). Deterministic: same-seed runs export
    /// byte-identical traces.
    pub fn export_chrome_trace(&self) -> String {
        export_chrome_trace(self.bus.events())
    }

    /// Like [`Kernel::export_chrome_trace`], but renders the causal events
    /// recorded under [`KernelConfig::causal`] as Perfetto flow arrows
    /// (spawn, IPC, join, tool and preemption edges across tracks).
    pub fn export_chrome_trace_with_flows(&self) -> String {
        export_chrome_trace_with_flows(self.bus.events())
    }

    /// Telemetry events discarded by the bus capacity cap
    /// ([`KernelConfig::telemetry_capacity`]); 0 while unbounded.
    pub fn events_dropped(&self) -> u64 {
        self.bus.dropped()
    }

    /// Read access to the KV store (tests and harnesses).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Admin access to the KV store for setup/inspection.
    pub fn store_mut(&mut self) -> &mut KvStore {
        &mut self.store
    }

    /// The run trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }

    /// LIP threads that are still alive (blocked or runnable).
    pub fn live_threads(&self) -> usize {
        self.live_threads
    }

    /// The tokenizer used by this kernel.
    pub fn tokenizer(&self) -> &'static Bpe {
        self.tokenizer
    }

    // ---- main loop -------------------------------------------------------------

    /// Runs the kernel until no thread is runnable and no event is pending.
    ///
    /// Returns the number of processes that exited during the run. If
    /// [`Kernel::live_threads`] is non-zero afterwards, the remaining threads
    /// are deadlocked (e.g. blocked in `recv_msg` with no sender).
    pub fn run(&mut self) -> usize {
        let before: usize = self
            .records
            .values()
            .filter(|r| r.exited_at.is_some())
            .count();
        // lint:allow(d1): sim.events_per_sec measures real host throughput — the gauge is observation-only and is never read back into simulation state
        let wall_start = std::time::Instant::now();
        let events_before = self.events.events_processed();
        loop {
            while let Some((tid, reply)) = self.ready.pop_front() {
                if self.crashed.is_some() {
                    break;
                }
                self.resume(tid, reply);
            }
            if self.crashed.is_some() {
                break;
            }
            self.maybe_launch_batch();
            if !self.ready.is_empty() {
                continue;
            }
            match self.events.pop() {
                Some((_, ev)) => self.handle_event(ev),
                None => break,
            }
            self.maybe_checkpoint();
        }
        let processed = self.events.events_processed() - events_before;
        let secs = wall_start.elapsed().as_secs_f64();
        if processed > 0 && secs > 0.0 {
            self.kmetrics
                .events_per_sec
                .set((processed as f64 / secs) as i64);
        }
        let after: usize = self
            .records
            .values()
            .filter(|r| r.exited_at.is_some())
            .count();
        after - before
    }

    fn resume(&mut self, tid: Tid, reply: SysReply) {
        let (pid, open) = {
            let Some(ts) = self.threads.get_mut(tid.0) else {
                return;
            };
            if ts.status.is_some() {
                return; // Thread already exited (e.g. killed reply raced).
            }
            if ts.reply_tx.send(reply).is_err() {
                return;
            }
            (ts.pid, ts.open_syscall.take())
        };
        // Every reply delivery funnels through here, so this is the single
        // point where a thread's syscall span closes and the CPU is handed
        // back to it.
        let at = self.events.now();
        if let Some(name) = open {
            self.bus.emit(at, || EventKind::SyscallExit {
                pid: pid.0,
                tid: tid.0,
                name,
            });
        }
        self.bus
            .emit(at, || EventKind::SchedDispatch { tid: tid.0 });
        let up = self
            .up_rx
            .recv()
            // lint:allow(k1): the kernel holds up_tx, so the channel cannot close
            .expect("a resumed LIP thread must issue a syscall or exit");
        match up {
            UpCall::Syscall { tid, call } => self.handle_syscall(tid, call),
            UpCall::Exited { tid, status } => self.handle_exit(tid, status),
        }
    }

    fn handle_event(&mut self, ev: Event) {
        match ev {
            Event::Resume(tid, reply) => self.ready.push_back((tid, reply)),
            Event::BatchDone { batch_id } => {
                self.gpu_busy = false;
                // Results are recorded at launch; an unknown id would mean a
                // duplicate BatchDone. Drop it rather than panic the kernel.
                let Some(results) = self.pending_batches.remove(batch_id) else {
                    debug_assert!(false, "BatchDone for unknown batch {batch_id}");
                    return;
                };
                let now = self.events.now();
                self.bus.emit(now, || EventKind::BatchEnd { id: batch_id });
                self.trace.record_with(
                    now,
                    "infer_sched",
                    || format!("batch_done id={batch_id} n={}", results.len()),
                );
                for (tid, reply) in results {
                    // Token-latency metrics: a delivered distribution is a
                    // decoded token from the process's point of view.
                    if matches!(reply, SysReply::Dists(_)) {
                        if let Some(ts) = self.threads.get(tid.0) {
                            let pid = ts.pid;
                            let spawned_at = self.records.get(pid.0).map(|r| r.spawned_at);
                            if let (Some(proc), Some(spawned_at)) =
                                (self.procs.get_mut(pid.0), spawned_at)
                            {
                                if !proc.ttft_done {
                                    proc.ttft_done = true;
                                    self.kmetrics.ttft_ns.observe((now - spawned_at).as_nanos());
                                } else if let Some(prev) = proc.last_pred_done {
                                    self.kmetrics
                                        .inter_token_ns
                                        .observe((now - prev).as_nanos());
                                }
                                proc.last_pred_done = Some(now);
                            }
                        }
                    }
                    self.ready.push_back((tid, reply));
                }
            }
            Event::IoDone {
                tid,
                result,
                issued_at,
            } => self.finish_io(tid, result, issued_at),
            Event::BatchTimer => {
                self.timer_armed_until = None;
            }
            Event::SpawnProgram {
                pid,
                args,
                f,
                main_tid,
            } => {
                self.start_process(pid, args, f, main_tid);
            }
            Event::DeadlineCheck { pid } => self.enforce_deadline(pid),
            Event::RequeuePred { pred } => match self.exec {
                ExecMode::Static => self.sched.on_arrival(self.events.now(), pred),
                ExecMode::Continuous(_) => {
                    self.cqueue.push(pred.pid.0, pred.critical, pred);
                }
            },
        }
    }

    /// Installs the streaming upcall sink. Subsequent `emit`/`emit_tokens`
    /// completions and process exits invoke it synchronously with
    /// [`SessionEvent`]s, in virtual-time order.
    pub fn set_session_sink(&mut self, sink: SessionSink) {
        self.session_sink = Some(sink);
    }

    /// Emits a telemetry event stamped with the current virtual time on
    /// the kernel's bus. Lets layers above the kernel (the serving front
    /// door) interleave their spans with kernel events in one trace.
    pub fn emit_event(&mut self, f: impl FnOnce() -> EventKind) {
        let at = self.events.now();
        self.bus.emit(at, f);
    }

    /// Cancels a running process from outside (session teardown at the
    /// serving layer). Mirrors deadline enforcement: threads blocked in
    /// `recv_msg` are woken with [`SysError::Cancelled`], and every
    /// subsequent syscall from any of the process's threads fails with the
    /// same error, driving the program to a prompt, typed exit. Returns
    /// `false` if the pid is unknown or already finished.
    pub fn cancel_process(&mut self, pid: Pid) -> bool {
        let Some(proc) = self.procs.get_mut(pid.0) else {
            return false;
        };
        if proc.finished || proc.cancelled {
            return false;
        }
        proc.cancelled = true;
        let waiters = std::mem::take(&mut proc.recv_waiters);
        self.trace.record_with(
            self.events.now(),
            "kernel",
            || format!("cancel pid={} woke={}", pid.0, waiters.len()),
        );
        for (w, _seq) in waiters {
            self.complete(w, SysReply::Err(SysError::Cancelled));
        }
        true
    }

    fn notify_session(&mut self, ev: SessionEvent) {
        if let Some(sink) = self.session_sink.as_mut() {
            sink(ev);
        }
    }

    /// Fires when a process's deadline passes: mark it, and fail its
    /// threads blocked in `recv_msg` (other blocked threads — pooled
    /// `pred`s, in-flight I/O, sleeps — already have completions scheduled
    /// and hit the syscall-entry deadline check on their next call).
    fn enforce_deadline(&mut self, pid: Pid) {
        let Some(proc) = self.procs.get_mut(pid.0) else {
            return;
        };
        if proc.finished {
            return;
        }
        let first_hit = !proc.deadline_hit;
        proc.deadline_hit = true;
        let waiters = std::mem::take(&mut proc.recv_waiters);
        if first_hit {
            self.res_counters.deadline_kills.inc();
            let at = self.events.now();
            self.bus.emit(at, || EventKind::DeadlineHit { pid: pid.0 });
        }
        self.trace.record_with(
            self.events.now(),
            "kernel",
            || format!("deadline pid={} woke={}", pid.0, waiters.len()),
        );
        for (w, _seq) in waiters {
            self.complete(w, SysReply::Err(SysError::DeadlineExceeded));
        }
    }

    // ---- batch scheduling --------------------------------------------------------

    fn maybe_launch_batch(&mut self) {
        if let ExecMode::Continuous(cfg) = self.exec {
            self.maybe_launch_iteration(cfg);
            return;
        }
        match self.sched.decide(self.events.now(), !self.gpu_busy) {
            Decision::LaunchNow => self.launch_batch(),
            Decision::WaitUntil(t) => {
                let already = self.timer_armed_until.is_some_and(|a| a <= t);
                if !already {
                    self.events.schedule(t, Event::BatchTimer);
                    self.timer_armed_until = Some(t);
                }
            }
            Decision::Idle => {}
        }
    }

    fn launch_batch(&mut self) {
        let pending = self.sched.take_batch();
        debug_assert!(!pending.is_empty());
        let now = self.events.now();
        let tids: Vec<Tid> = pending.iter().map(|p| p.tid).collect();
        let requeues: Vec<u32> = pending.iter().map(|p| p.requeues).collect();
        let enqueued: Vec<SimTime> = pending.iter().map(|p| p.enqueued_at).collect();
        let metas: Vec<(Pid, bool, u64)> =
            pending.iter().map(|p| (p.pid, p.critical, p.seq)).collect();
        let requests: Vec<PredRequest> = pending.into_iter().map(|p| p.req).collect();
        for &at in &enqueued {
            self.kmetrics.queue_delay_ns.observe((now - at).as_nanos());
        }
        let occupancy_pct = (requests.len() * 100 / self.max_batch.max(1)).min(100) as u32;
        self.kmetrics
            .batch_occupancy_pct
            .observe(occupancy_pct as u64);
        // One fault draw per request, in pool order (rate 0 draws nothing).
        let faulted: Vec<bool> = requests
            .iter()
            .map(|_| self.injector.pred_request())
            .collect();
        for f in &faulted {
            if *f {
                self.bus
                    .emit(now, || EventKind::FaultInjected { site: "gpu.pred" });
            }
        }
        let cow_before = self.store.stats().cow_copies;
        let (results, report) =
            self.gpu
                .execute_batch_with_faults(&mut self.store, &requests, &faulted);
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let n_requests = requests.len() as u32;
        let new_tokens = report.new_tokens;
        self.bus.emit(now, || EventKind::BatchBegin {
            id: batch_id,
            requests: n_requests,
            occupancy_pct,
            new_tokens,
        });
        if self.causal {
            // One scheduler→GPU hop per member: which pooled pred executes
            // in this batch, and how long it queued. Batched emission —
            // one reserve and one capacity check for the whole iteration.
            self.bus
                .emit_batch(now, requests.len(), |k| EventKind::PredExec {
                    pid: metas[k].0 .0,
                    tid: tids[k].0,
                    batch: batch_id,
                    tokens: requests[k].tokens.len() as u32,
                    enqueued_at: enqueued[k],
                });
        }
        let cow_delta = self.store.stats().cow_copies - cow_before;
        if cow_delta > 0 {
            self.bus
                .emit(now, || EventKind::KvCow { copies: cow_delta });
        }
        self.kmetrics
            .gpu_pages_used
            .set(self.store.gpu_pages_used() as i64);
        self.kmetrics
            .disk_pages_used
            .set(self.store.disk_pages_used() as i64);
        let adm = self.admission;
        let mut replies: Vec<(Tid, SysReply)> = Vec::with_capacity(requests.len());
        for (((((tid, res), req), requeues), enqueued_at), (ppid, critical, seq)) in tids
            .into_iter()
            .zip(results)
            .zip(requests)
            .zip(requeues)
            .zip(enqueued)
            .zip(metas)
        {
            let reply = match res {
                Ok(r) => {
                    if self.is_durable(ppid) {
                        self.wal_buffer_pred(WalRecord::PredEffect {
                            at: now,
                            pid: ppid.0,
                            seq,
                            dists: r.dists.clone(),
                        });
                    }
                    SysReply::Dists(r.dists)
                }
                // KV-pool exhaustion: with admission control on, back the
                // request off and re-pool it instead of failing the LIP.
                Err(ExecError::Kv(KvError::NoGpuMemory))
                    if adm.is_some_and(|a| requeues < a.max_retries) =>
                {
                    let delay = adm.map(|a| a.retry_delay).unwrap_or_default();
                    self.res_counters.preds_requeued.inc();
                    self.bus.emit(now, || EventKind::PredRequeue {
                        tid: tid.0,
                        attempt: requeues + 1,
                    });
                    self.events.schedule(
                        self.events.now() + delay,
                        Event::RequeuePred {
                            pred: PendingPred {
                                tid,
                                req,
                                requeues: requeues + 1,
                                enqueued_at,
                                pid: ppid,
                                critical,
                                done: 0,
                                dists: Vec::new(),
                                start_len: 0,
                                delay_recorded: false,
                                seq,
                            },
                        },
                    );
                    continue;
                }
                Err(ExecError::Kv(KvError::NoGpuMemory)) if adm.is_some() => {
                    // Requeue budget exhausted: shed the request.
                    self.res_counters.preds_shed.inc();
                    self.bus.emit(now, || EventKind::PredShed { tid: tid.0 });
                    SysReply::Err(SysError::Busy)
                }
                Err(ExecError::Kv(e)) => SysReply::Err(SysError::Kv(e)),
                Err(ExecError::NotResident) => SysReply::Err(SysError::Kv(KvError::NotResident)),
                Err(ExecError::EmptyRequest) => SysReply::Err(SysError::BadArgument),
                Err(ExecError::Faulted) => SysReply::Err(SysError::Fault("gpu.pred")),
            };
            replies.push((tid, reply));
        }
        self.trace.record_with(
            self.events.now(),
            "infer_sched",
            || format!(
                "batch_launch id={batch_id} n={} new_tokens={} dur={}",
                report.requests, report.new_tokens, report.duration
            ),
        );
        self.pending_batches.insert(batch_id, replies);
        self.gpu_busy = true;
        self.events.schedule(
            self.events.now() + report.duration,
            Event::BatchDone { batch_id },
        );
    }

    // ---- continuous (iteration-level) executor ---------------------------------

    /// Waiting `pred`s in whichever queue the execution mode uses.
    fn pred_queue_len(&self) -> usize {
        match self.exec {
            ExecMode::Static => self.sched.pool_len(),
            ExecMode::Continuous(_) => self.cqueue.len(),
        }
    }

    /// Iteration-level admission: runs one GPU iteration whenever the GPU
    /// is idle and work is admitted or waiting.
    fn maybe_launch_iteration(&mut self, cfg: ContinuousConfig) {
        if self.gpu_busy {
            return;
        }
        if self.active.is_empty() && self.cqueue.is_empty() {
            return;
        }
        let now = self.events.now();
        // Iteration boundary: let the current virtual instant drain first.
        // Replies and syscalls cascade at one instant (per-syscall cost can
        // be zero), so launching mid-cascade would fragment same-time
        // arrivals into single-request iterations.
        if self.events.peek_time() == Some(now) {
            return;
        }
        // Admit from the wait queue — the program-aware (or FIFO) order.
        while self.active.len() < self.max_batch {
            let Some(mut pred) = self.cqueue.pop() else {
                break;
            };
            if !pred.delay_recorded {
                pred.delay_recorded = true;
                self.kmetrics
                    .queue_delay_ns
                    .observe((now - pred.enqueued_at).as_nanos());
            }
            if pred.done == 0 {
                pred.start_len = self.store.len(pred.req.file).unwrap_or(0);
            }
            self.active.push(pred);
        }
        if self.active.is_empty() {
            return;
        }
        self.launch_iteration(cfg);
    }

    /// Picks the preemption victim among active peers of `i`: the
    /// lowest-priority (highest MLFQ level, then latest-arrived) sequence
    /// whose KV is GPU-resident and neither pinned nor locked. Sequences in
    /// `retire` or `preempted` are already leaving the active set.
    fn lowest_priority_peer(
        &self,
        i: usize,
        retire: &[usize],
        preempted: &[usize],
    ) -> Option<usize> {
        self.active
            .iter()
            .enumerate()
            .filter(|(j, s)| {
                *j != i
                    && !retire.contains(j)
                    && !preempted.contains(j)
                    && matches!(
                        self.store.residency(s.req.file),
                        Ok(Residency::Gpu | Residency::Mixed)
                    )
                    && self
                        .store
                        .stat(s.req.file)
                        .is_ok_and(|st| !st.pinned && st.locked_by.is_none())
            })
            .max_by_key(|(j, s)| {
                (
                    self.cqueue.level_for(s.pid.0, s.critical),
                    s.enqueued_at,
                    *j,
                )
            })
            .map(|(j, _)| j)
    }

    /// Virtual time to move one swap's traffic: DRAM-tier tokens cross
    /// PCIe, disk-tier tokens additionally cross the (slower) NVMe lane.
    fn swap_cost(&self, moved: SwapReport) -> SimDuration {
        let bpt = self.store.bytes_per_token();
        self.gpu.swap_time(moved.dram_tokens as u64, bpt)
            + self.gpu.disk_swap_time(moved.disk_tokens as u64, bpt)
    }

    /// Runs one token iteration: swap admitted-but-evicted KV back in,
    /// execute one chunk of every resident sequence, retire finished
    /// sequences, and recover from KV exhaustion by preempting.
    fn launch_iteration(&mut self, cfg: ContinuousConfig) {
        let now = self.events.now();
        let chunk = cfg.chunk_tokens.unwrap_or(usize::MAX).max(1);
        // PCIe/NVMe time for swaps performed on behalf of this iteration is
        // charged to the iteration's duration.
        let mut swap_extra = SimDuration::ZERO;

        // 1. Bring non-resident participants' KV back to the GPU (files
        // evicted by an earlier preemption, or swapped while their owner
        // was between `pred`s). A swap-in is only worth its PCIe time if
        // the sequence can then actually *run*, so require headroom for
        // the file plus its next chunk — otherwise the swapped-in file
        // refills exactly the pages a preemption just freed and the
        // iteration appends nothing, forever. Make headroom by evicting
        // idle LRU files first, then by preempting the lowest-priority
        // resident peer.
        let pt = self.store.page_tokens().max(1);
        let mut preempted: Vec<usize> = Vec::new();
        for i in 0..self.active.len() {
            if preempted.contains(&i) {
                continue;
            }
            let (file, spid, stid, need_pages) = {
                let s = &self.active[i];
                let take = (s.req.tokens.len() - s.done).min(chunk);
                let len = self.store.len(s.req.file).unwrap_or(0);
                (
                    s.req.file,
                    s.pid,
                    s.tid,
                    len.div_ceil(pt) + take.div_ceil(pt),
                )
            };
            if matches!(
                self.store.residency(file),
                Ok(Residency::Gpu | Residency::Empty)
            ) {
                continue;
            }
            while self.store.gpu_pages_free() < need_pages {
                let exclude: Vec<FileId> = self
                    .active
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| !preempted.contains(j))
                    .map(|(_, s)| s.req.file)
                    .collect();
                if let Some((victim, moved)) = self.store.evict_lru(&exclude) {
                    swap_extra += self.swap_cost(moved);
                    self.kmetrics.preemptions.inc();
                    self.bus.emit(now, || EventKind::Preempt {
                        file: victim.0,
                        tokens: moved.total() as u64,
                        victim_tid: 0,
                    });
                    continue;
                }
                let Some(j) = self.lowest_priority_peer(i, &[], &preempted) else {
                    break;
                };
                let (vfile, vtid, vpid) = (
                    self.active[j].req.file,
                    self.active[j].tid,
                    self.active[j].pid,
                );
                match self.store.swap_out(vfile, OwnerId::ADMIN) {
                    Ok(moved) => {
                        swap_extra += self.swap_cost(moved);
                        self.kmetrics.preemptions.inc();
                        self.bus.emit(now, || EventKind::Preempt {
                            file: vfile.0,
                            tokens: moved.total() as u64,
                            victim_tid: vtid.0,
                        });
                        if self.causal {
                            // Swap dependency: the victim's eviction funds
                            // this sequence's swap-in.
                            self.bus.emit(now, || EventKind::CausalEdge {
                                edge: EdgeKind::Preempt,
                                src_pid: vpid.0,
                                src_tid: vtid.0,
                                src_at: now,
                                dst_pid: spid.0,
                                dst_tid: stid.0,
                            });
                        }
                        preempted.push(j);
                    }
                    Err(_) => break,
                }
            }
            if self.store.gpu_pages_free() < need_pages {
                continue; // cannot fit this iteration; retry later
            }
            if let Ok(moved) = self.store.swap_in(file, OwnerId::ADMIN) {
                swap_extra += self.swap_cost(moved);
                self.bus.emit(now, || EventKind::KvSwap {
                    pid: spid.0,
                    tid: stid.0,
                    file: file.0,
                    tokens: moved.total() as u64,
                    disk_tokens: moved.disk_tokens as u64,
                    dir: SwapDir::In,
                });
            }
        }

        // 2. One slice per resident sequence, at most `chunk` tokens.
        let mut parts: Vec<usize> = Vec::new();
        let mut requests: Vec<PredRequest> = Vec::new();
        for (i, s) in self.active.iter().enumerate() {
            if !matches!(
                self.store.residency(s.req.file),
                Ok(Residency::Gpu | Residency::Empty)
            ) {
                continue;
            }
            let take = (s.req.tokens.len() - s.done).min(chunk);
            requests.push(PredRequest {
                file: s.req.file,
                owner: s.req.owner,
                tokens: s.req.tokens[s.done..s.done + take].to_vec(),
            });
            parts.push(i);
        }
        if parts.is_empty() {
            return;
        }

        // 3. Fault draws, one per participating request, in admission
        // order (all-zero plans draw nothing).
        let faulted: Vec<bool> = requests
            .iter()
            .map(|_| self.injector.pred_request())
            .collect();
        for f in &faulted {
            if *f {
                self.bus
                    .emit(now, || EventKind::FaultInjected { site: "gpu.pred" });
            }
        }
        let cow_before = self.store.stats().cow_copies;
        let (results, report) =
            self.gpu
                .execute_batch_with_faults(&mut self.store, &requests, &faulted);
        let batch_id = self.next_batch;
        self.next_batch += 1;
        let occupancy_pct = (parts.len() * 100 / self.max_batch.max(1)).min(100) as u32;
        self.kmetrics
            .batch_occupancy_pct
            .observe(occupancy_pct as u64);
        let n_requests = parts.len() as u32;
        let new_tokens = report.new_tokens;
        self.bus.emit(now, || EventKind::BatchBegin {
            id: batch_id,
            requests: n_requests,
            occupancy_pct,
            new_tokens,
        });
        if self.causal {
            // One scheduler→GPU hop per iteration member (chunked prefills
            // hop once per chunk, which is exactly their service pattern).
            // Batched: one reserve/capacity check for the whole iteration.
            let active = &self.active;
            self.bus.emit_batch(now, parts.len(), |k| {
                let s = &active[parts[k]];
                EventKind::PredExec {
                    pid: s.pid.0,
                    tid: s.tid.0,
                    batch: batch_id,
                    tokens: requests[k].tokens.len() as u32,
                    enqueued_at: s.enqueued_at,
                }
            });
        }
        let cow_delta = self.store.stats().cow_copies - cow_before;
        if cow_delta > 0 {
            self.bus
                .emit(now, || EventKind::KvCow { copies: cow_delta });
        }

        // 4. Apply results: accumulate chunk progress, retire finished or
        // terminally failed sequences, collect KV-exhausted ones.
        let adm = self.admission;
        let mut replies: Vec<(Tid, SysReply)> = Vec::new();
        let mut retire: Vec<usize> = Vec::new();
        let mut failed_mem: Vec<usize> = Vec::new();
        for (k, res) in results.into_iter().enumerate() {
            let i = parts[k];
            let take = requests[k].tokens.len();
            match res {
                Ok(r) => {
                    let s = &mut self.active[i];
                    s.dists.extend(r.dists);
                    s.done += take;
                    let total = s.req.tokens.len();
                    if s.done < total || take < total {
                        self.kmetrics.prefill_chunks.inc();
                        let (ctid, ctk, cdone, ctotal) =
                            (s.tid.0, take as u32, s.done as u32, total as u32);
                        self.bus.emit(now, || EventKind::ChunkExec {
                            tid: ctid,
                            batch: batch_id,
                            tokens: ctk,
                            done: cdone,
                            total: ctotal,
                        });
                    }
                    let (cpid, ccrit, cseq, ctid) = (s.pid, s.critical, s.seq, s.tid);
                    let finished_dists = if s.done == total {
                        Some(std::mem::take(&mut s.dists))
                    } else {
                        None
                    };
                    if let Some(dists) = finished_dists {
                        if self.is_durable(cpid) {
                            self.wal_buffer_pred(WalRecord::PredEffect {
                                at: now,
                                pid: cpid.0,
                                seq: cseq,
                                dists: dists.clone(),
                            });
                        }
                        replies.push((ctid, SysReply::Dists(dists)));
                        retire.push(i);
                    }
                    self.cqueue.charge(cpid.0, ccrit, take as u64);
                }
                Err(ExecError::Kv(KvError::NoGpuMemory)) => failed_mem.push(i),
                Err(e) => {
                    let (file, owner, start_len, done, stid) = {
                        let s = &self.active[i];
                        (s.req.file, s.req.owner, s.start_len, s.done, s.tid)
                    };
                    // A failed pred leaves no partial work behind, exactly
                    // as in static mode: roll earlier chunks back.
                    if done > 0 {
                        let _ = self.store.truncate(file, owner, start_len);
                    }
                    let reply = match e {
                        ExecError::NotResident => SysReply::Err(SysError::Kv(KvError::NotResident)),
                        ExecError::EmptyRequest => SysReply::Err(SysError::BadArgument),
                        ExecError::Faulted => SysReply::Err(SysError::Fault("gpu.pred")),
                        ExecError::Kv(ke) => SysReply::Err(SysError::Kv(ke)),
                    };
                    replies.push((stid, reply));
                    retire.push(i);
                }
            }
        }

        // 5. KV exhaustion: free pages by evicting idle files, then by
        // preempting the lowest-priority co-running sequence; only when
        // nothing is evictable fall back to admission-control requeue/shed
        // (static-mode semantics). `preempted` carries over phase 1's
        // swap-in victims so phase 6 requeues them too.
        let mut requeued: Vec<usize> = Vec::new();
        for &i in &failed_mem {
            if preempted.contains(&i) {
                continue; // became a victim of an earlier recovery
            }
            let file = self.active[i].req.file;
            let need = (self.active[i].req.tokens.len() - self.active[i].done).min(chunk);
            loop {
                if self.store.can_append(file, need).unwrap_or(false) {
                    break;
                }
                let exclude: Vec<FileId> = self
                    .active
                    .iter()
                    .enumerate()
                    .filter(|(j, _)| !retire.contains(j) && !preempted.contains(j))
                    .map(|(_, s)| s.req.file)
                    .collect();
                if let Some((victim, moved)) = self.store.evict_lru(&exclude) {
                    swap_extra += self.swap_cost(moved);
                    self.kmetrics.preemptions.inc();
                    self.bus.emit(now, || EventKind::Preempt {
                        file: victim.0,
                        tokens: moved.total() as u64,
                        victim_tid: 0,
                    });
                    continue;
                }
                // No idle victim left: preempt the lowest-priority peer
                // (highest MLFQ level, then latest arrival).
                let Some(j) = self.lowest_priority_peer(i, &retire, &preempted) else {
                    break; // nothing evictable at all
                };
                let vfile = self.active[j].req.file;
                let vtid = self.active[j].tid;
                match self.store.swap_out(vfile, OwnerId::ADMIN) {
                    Ok(moved) => {
                        swap_extra += self.swap_cost(moved);
                        self.kmetrics.preemptions.inc();
                        self.bus.emit(now, || EventKind::Preempt {
                            file: vfile.0,
                            tokens: moved.total() as u64,
                            victim_tid: vtid.0,
                        });
                        preempted.push(j);
                    }
                    Err(_) => break,
                }
            }
            if self.store.can_append(file, need).unwrap_or(false) {
                continue; // stays active; next iteration makes progress
            }
            let (stid, srequeues, sdone) = {
                let s = &self.active[i];
                (s.tid, s.requeues, s.done)
            };
            if adm.is_some_and(|a| srequeues < a.max_retries) {
                self.res_counters.preds_requeued.inc();
                let attempt = srequeues + 1;
                self.bus.emit(now, || EventKind::PredRequeue {
                    tid: stid.0,
                    attempt,
                });
                requeued.push(i);
            } else {
                let (file, owner, start_len) = {
                    let s = &self.active[i];
                    (s.req.file, s.req.owner, s.start_len)
                };
                if sdone > 0 {
                    let _ = self.store.truncate(file, owner, start_len);
                }
                let reply = if adm.is_some() {
                    self.res_counters.preds_shed.inc();
                    self.bus.emit(now, || EventKind::PredShed { tid: stid.0 });
                    SysReply::Err(SysError::Busy)
                } else {
                    SysReply::Err(SysError::Kv(KvError::NoGpuMemory))
                };
                replies.push((stid, reply));
                retire.push(i);
            }
        }

        // 6. Rebuild the active set: drop retired sequences, move preempted
        // and requeued ones back to the wait queue (keeping their chunk
        // progress — preemption only changes timing, never results).
        let mut kept = Vec::with_capacity(self.active.len());
        for (j, mut s) in std::mem::take(&mut self.active).into_iter().enumerate() {
            if retire.contains(&j) {
                continue;
            }
            if preempted.contains(&j) {
                let (spid, scrit) = (s.pid.0, s.critical);
                self.cqueue.push_front(spid, scrit, s);
            } else if requeued.contains(&j) {
                s.requeues += 1;
                let delay = adm.map(|a| a.retry_delay).unwrap_or_default();
                self.events
                    .schedule(now + delay, Event::RequeuePred { pred: s });
            } else {
                kept.push(s);
            }
        }
        self.active = kept;

        self.kmetrics
            .gpu_pages_used
            .set(self.store.gpu_pages_used() as i64);
        self.kmetrics
            .disk_pages_used
            .set(self.store.disk_pages_used() as i64);
        let duration = swap_extra + report.duration;
        self.trace.record_with(
            now,
            "infer_sched",
            || format!(
                "iter_launch id={batch_id} n={} new_tokens={} dur={duration}",
                report.requests, report.new_tokens
            ),
        );
        self.pending_batches.insert(batch_id, replies);
        self.gpu_busy = true;
        self.events
            .schedule(now + duration, Event::BatchDone { batch_id });
    }

    // ---- syscall dispatch -----------------------------------------------------------

    /// Schedules a reply after the per-syscall CPU charge.
    fn complete(&mut self, tid: Tid, reply: SysReply) {
        let at = self.events.now() + self.syscall_cost;
        self.events.schedule(at, Event::Resume(tid, reply));
    }

    /// Marks a syscall answered from the WAL effect journal during recovery
    /// replay (causal mode only) — the recovery-replay phase bucket.
    fn note_replay_hit(&mut self, pid: Pid, tid: Tid, sys: &'static str) {
        if self.causal {
            let at = self.events.now();
            self.bus.emit(at, || EventKind::ReplayAnswered {
                pid: pid.0,
                tid: tid.0,
                sys,
            });
        }
    }

    fn owner_of(&self, tid: Tid) -> Option<(Pid, OwnerId)> {
        let pid = self.threads.get(tid.0)?.pid;
        Some((pid, OwnerId(pid.0)))
    }

    fn handle_syscall(&mut self, tid: Tid, call: Syscall) {
        // A syscall from a thread the kernel no longer tracks has no owner
        // to charge or answer; drop it instead of panicking the kernel.
        let Some((pid, owner)) = self.owner_of(tid) else {
            debug_assert!(false, "syscall from unknown tid {}", tid.0);
            return;
        };
        // Crash injection: every syscall boundary is a kill-point. The
        // crash fires *before* the syscall executes, so a handler either
        // ran and journalled its effect pre-crash, or did neither —
        // effects are atomic with their WAL frames under this model.
        self.syscall_boundaries += 1;
        if self.injector.kernel_crash(self.syscall_boundaries) {
            self.crash_now(self.syscall_boundaries);
            return;
        }
        // Open a syscall span; `resume` closes it when the reply is
        // delivered back to the LIP.
        let sys_name = call.name();
        let sys_at = self.events.now();
        self.bus.emit(sys_at, || EventKind::SyscallEnter {
            pid: pid.0,
            tid: tid.0,
            name: sys_name,
        });
        if let Some(ts) = self.threads.get_mut(tid.0) {
            ts.open_syscall = Some(sys_name);
        }
        // Fails the syscall with a typed error when a bookkeeping lookup
        // that "cannot" miss does miss (lint rule k1: no kernel panics).
        macro_rules! sys {
            ($opt:expr, $what:literal) => {
                match $opt {
                    Some(v) => v,
                    None => {
                        self.complete(tid, SysReply::Err(SysError::Internal($what)));
                        return;
                    }
                }
            };
        }

        // Global syscall accounting and limit.
        let (syscalls_so_far, max_syscalls) = {
            let rec = sys!(self.records.get_mut(pid.0), "process record missing");
            rec.usage.syscalls += 1;
            (rec.usage.syscalls, self.procs[pid.0].limits.max_syscalls)
        };
        if let Some(max) = max_syscalls {
            if syscalls_so_far > max {
                self.complete(tid, SysReply::Err(SysError::LimitExceeded("syscalls")));
                return;
            }
        }
        // Wall-clock deadline: once past it, every syscall fails.
        if let Some(t) = self.procs[pid.0].deadline_at {
            if self.events.now() >= t {
                let proc = sys!(self.procs.get_mut(pid.0), "process missing");
                if !proc.deadline_hit {
                    proc.deadline_hit = true;
                    self.res_counters.deadline_kills.inc();
                    self.bus
                        .emit(sys_at, || EventKind::DeadlineHit { pid: pid.0 });
                }
                self.complete(tid, SysReply::Err(SysError::DeadlineExceeded));
                return;
            }
        }
        // Cancellation: like a deadline hit, once set every syscall fails.
        if self.procs[pid.0].cancelled {
            self.complete(tid, SysReply::Err(SysError::Cancelled));
            return;
        }

        macro_rules! kv {
            ($e:expr) => {
                match $e {
                    Ok(v) => v,
                    Err(e) => {
                        self.complete(tid, SysReply::Err(SysError::Kv(e)));
                        return;
                    }
                }
            };
        }

        match call {
            Syscall::Pred { kv, tokens } => {
                if tokens.is_empty() {
                    self.complete(tid, SysReply::Err(SysError::BadArgument));
                    return;
                }
                // Bounded admission queue: shed before accounting the work.
                if let Some(adm) = self.admission {
                    if self.pred_queue_len() >= adm.max_queue {
                        self.res_counters.preds_shed.inc();
                        self.bus.emit(sys_at, || EventKind::PredShed { tid: tid.0 });
                        self.complete(tid, SysReply::Err(SysError::Busy));
                        return;
                    }
                }
                let limit = self.procs[pid.0].limits.max_pred_tokens;
                let rec = sys!(self.records.get_mut(pid.0), "process record missing");
                rec.usage.pred_calls += 1;
                rec.usage.pred_tokens += tokens.len() as u64;
                if let Some(max) = limit {
                    if rec.usage.pred_tokens > max {
                        self.complete(tid, SysReply::Err(SysError::LimitExceeded("pred_tokens")));
                        return;
                    }
                }
                self.trace.record_with(
                    self.events.now(),
                    "kernel",
                    || format!("pred tid={} n={}", tid.0, tokens.len()),
                );
                let n_tokens = tokens.len() as u32;
                let pool = self.pred_queue_len() as u32;
                self.bus.emit(sys_at, || EventKind::PredEnqueue {
                    tid: tid.0,
                    tokens: n_tokens,
                    pool,
                });
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.pred;
                    p.seqs.pred += 1;
                    s
                };
                // Recovery replay: a pred whose distributions were durable
                // at the crash answers from the log, rebuilding its KV
                // append without charging GPU time.
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.preds.get(&(pid.0, seq)))
                        .filter(|d| d.len() == tokens.len())
                        .cloned();
                    if let Some(dists) = hit {
                        if self.replay_pred_append(kv, owner, &tokens) {
                            self.note_replay_hit(pid, tid, sys_name);
                            self.complete(tid, SysReply::Dists(dists));
                            return;
                        }
                    }
                }
                let critical = self.procs[pid.0].main_tid == tid;
                let pending = PendingPred {
                    tid,
                    req: PredRequest {
                        file: kv,
                        owner,
                        tokens,
                    },
                    requeues: 0,
                    enqueued_at: self.events.now(),
                    pid,
                    critical,
                    done: 0,
                    dists: Vec::new(),
                    start_len: 0,
                    delay_recorded: false,
                    seq,
                };
                match self.exec {
                    ExecMode::Static => self.sched.on_arrival(self.events.now(), pending),
                    ExecMode::Continuous(_) => self.cqueue.push(pid.0, critical, pending),
                }
                // Thread stays parked; the batch scheduler will resume it.
            }
            Syscall::KvCreate => {
                let f = kv!(self.store.create(owner));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_create",
                    file: f.0,
                });
                self.complete(tid, SysReply::Handle(f));
            }
            Syscall::KvOpen { path } => {
                let f = kv!(self.store.open(&path, owner));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_open",
                    file: f.0,
                });
                self.complete(tid, SysReply::Handle(f));
            }
            Syscall::KvLink { kv, path } => {
                kv!(self.store.link(kv, &path, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvUnlink { path } => {
                kv!(self.store.unlink(&path, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvFork { kv } => {
                let f = kv!(self.store.fork(kv, owner));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_fork",
                    file: f.0,
                });
                self.complete(tid, SysReply::Handle(f));
            }
            Syscall::KvRemove { kv } => {
                kv!(self.store.remove(kv, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvLen { kv } => {
                let n = kv!(self.store.len(kv));
                self.complete(tid, SysReply::Len(n));
            }
            Syscall::KvNextPos { kv } => {
                let p = kv!(self.store.next_position(kv));
                self.complete(tid, SysReply::Pos(p));
            }
            Syscall::KvTruncate { kv, len } => {
                kv!(self.store.truncate(kv, owner, len));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvExtract { kv, ranges } => {
                let f = kv!(self.store.extract(kv, owner, &ranges));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_extract",
                    file: f.0,
                });
                self.complete(tid, SysReply::Handle(f));
            }
            Syscall::KvMerge { kvs } => {
                let f = kv!(self.store.merge(&kvs, owner));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_merge",
                    file: f.0,
                });
                self.complete(tid, SysReply::Handle(f));
            }
            Syscall::KvRead { kv, start, count } => {
                let e = kv!(self.store.read(kv, owner, start, count));
                self.bus.emit(sys_at, || EventKind::KvOp {
                    pid: pid.0,
                    tid: tid.0,
                    op: "kv_read",
                    file: kv.0,
                });
                self.complete(tid, SysReply::Entries(e));
            }
            Syscall::KvPin { kv } => {
                kv!(self.store.pin(kv, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvUnpin { kv } => {
                kv!(self.store.unpin(kv, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvLock { kv } => {
                kv!(self.store.lock(kv, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvUnlock { kv } => {
                kv!(self.store.unlock(kv, owner));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvChmod { kv, mode } => {
                kv!(self.store.chmod(kv, owner, mode));
                self.complete(tid, SysReply::Unit);
            }
            Syscall::KvStat { kv } => {
                let s = kv!(self.store.stat(kv));
                self.complete(tid, SysReply::Stat(Box::new(s)));
            }
            Syscall::KvSwapOut { kv } => {
                let moved = kv!(self.store.swap_out(kv, owner));
                self.bus.emit(sys_at, || EventKind::KvSwap {
                    pid: pid.0,
                    tid: tid.0,
                    file: kv.0,
                    tokens: moved.total() as u64,
                    disk_tokens: moved.disk_tokens as u64,
                    dir: SwapDir::Out,
                });
                let cost = self.swap_cost(moved);
                let at = self.events.now() + self.syscall_cost + cost;
                self.events.schedule(at, Event::Resume(tid, SysReply::Unit));
            }
            Syscall::KvSwapIn { kv } => {
                // Injected PCIe/host-memory fault: the transfer fails, the
                // file stays swapped out, and the LIP may retry.
                if self.injector.swap_in() {
                    self.bus
                        .emit(sys_at, || EventKind::FaultInjected { site: "kv.swap_in" });
                    self.complete(tid, SysReply::Err(SysError::Fault("kv.swap_in")));
                    return;
                }
                let moved = kv!(self.store.swap_in(kv, owner));
                self.bus.emit(sys_at, || EventKind::KvSwap {
                    pid: pid.0,
                    tid: tid.0,
                    file: kv.0,
                    tokens: moved.total() as u64,
                    disk_tokens: moved.disk_tokens as u64,
                    dir: SwapDir::In,
                });
                let cost = self.swap_cost(moved);
                let at = self.events.now() + self.syscall_cost + cost;
                self.events.schedule(at, Event::Resume(tid, SysReply::Unit));
            }
            Syscall::Spawn { f } => {
                let proc = &self.procs[pid.0];
                if let Some(max) = proc.limits.max_threads {
                    if proc.live_threads >= max {
                        self.complete(tid, SysReply::Err(SysError::LimitExceeded("threads")));
                        return;
                    }
                }
                // Sibling threads inherit the process's args string.
                let args = self.procs[pid.0].args.clone();
                let new_tid = self.spawn_thread(pid, args, f);
                if self.causal {
                    self.bus.emit(sys_at, || EventKind::CausalEdge {
                        edge: EdgeKind::Spawn,
                        src_pid: pid.0,
                        src_tid: tid.0,
                        src_at: sys_at,
                        dst_pid: pid.0,
                        dst_tid: new_tid.0,
                    });
                }
                self.complete(tid, SysReply::NewTid(new_tid));
            }
            Syscall::Join { tid: target } => match self.threads.get_mut(target.0) {
                None => self.complete(tid, SysReply::Err(SysError::NotFound)),
                Some(ts) => match &ts.status {
                    Some(status) => {
                        let s = status.clone();
                        self.complete(tid, SysReply::Joined(s));
                    }
                    None => ts.join_waiters.push(tid),
                },
            },
            Syscall::CallTool { name, args } => {
                let proc = sys!(self.procs.get_mut(pid.0), "process missing");
                if let Some(max) = proc.limits.max_tool_calls {
                    if self.records[pid.0].usage.tool_calls >= max {
                        self.complete(tid, SysReply::Err(SysError::LimitExceeded("tool_calls")));
                        return;
                    }
                }
                // Unknown tool: typed error before any RNG draw, so adding
                // a tool elsewhere never shifts unrelated latency streams.
                if !self.tools.contains(&name) {
                    self.complete(tid, SysReply::Err(SysError::NoSuchTool(name)));
                    return;
                }
                sys!(self.records.get_mut(pid.0), "process record missing")
                    .usage
                    .tool_calls += 1;
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.tool;
                    p.seqs.tool += 1;
                    s
                };
                let now = self.events.now();
                // Recovery replay: a journalled outcome answers without
                // re-invoking the handler — the side-effect already happened
                // pre-crash, and firing it again would double it. The
                // breaker re-learns the outcome (post-checkpoint reports
                // were lost with the crash) unless the journalled result
                // was itself a breaker rejection.
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.tools.get(&(pid.0, seq)))
                        .cloned();
                    if let Some(rec) = hit {
                        if !matches!(rec.result, Err(SysError::Unavailable)) {
                            if let Some(bank) = self.breakers.as_mut() {
                                bank.report(
                                    &name,
                                    rec.result.is_ok(),
                                    now + SimDuration::from_nanos(rec.latency_ns),
                                );
                            }
                        }
                        self.trace.record_with(
                            now,
                            "io",
                            || format!("tool={} tid={} replayed", name, tid.0),
                        );
                        let reply = match rec.result {
                            Ok(s) => SysReply::Text(s),
                            Err(e) => SysReply::Err(e),
                        };
                        self.note_replay_hit(pid, tid, sys_name);
                        self.complete(tid, reply);
                        return;
                    }
                }
                // Circuit breaker: fast-fail while open (no latency charge
                // beyond the syscall cost — that is the point of breaking).
                if let Some(bank) = self.breakers.as_mut() {
                    match bank.admit(&name, now) {
                        BreakerVerdict::Allow | BreakerVerdict::AllowTrial => {}
                        BreakerVerdict::Reject => {
                            self.trace.record_with(
                                now,
                                "io",
                                || format!("tool={} tid={} breaker_open", name, tid.0),
                            );
                            if self.bus.is_enabled() {
                                let tool = name.clone();
                                self.bus.emit(now, || EventKind::BreakerReject {
                                    pid: pid.0,
                                    tid: tid.0,
                                    tool,
                                });
                            }
                            if self.is_durable(pid) {
                                self.wal_append(WalRecord::ToolEffect {
                                    at: now,
                                    pid: pid.0,
                                    seq,
                                    latency_ns: 0,
                                    fired: false,
                                    result: Err(SysError::Unavailable),
                                });
                            }
                            self.complete(tid, SysReply::Err(SysError::Unavailable));
                            return;
                        }
                    }
                }
                // Per-tool policy overrides the kernel-wide default.
                let policy = self
                    .tools
                    .retry_policy(&name)
                    .or(self.tool_retry)
                    .unwrap_or_default();
                let timeout = self.procs[pid.0].limits.tool_timeout;
                // All attempts are planned synchronously: the virtual time
                // the call occupies is the sum of per-attempt charges
                // (latency clamped to the timeout) plus backoff delays, and
                // one IoDone at the end delivers the final result.
                let mut total = SimDuration::ZERO;
                let mut failures = 0u32;
                let final_result = loop {
                    let fault = self.injector.tool_attempt();
                    if fault.is_some() {
                        self.bus
                            .emit(now, || EventKind::FaultInjected { site: "tool" });
                    }
                    // Existence was checked above and the registry is
                    // append-only; if the lookup fails anyway, that error
                    // becomes the call's final result instead of a panic.
                    let (latency, outcome) = match self.tools.invoke(&name, &args, &mut self.rng) {
                        Ok(v) => v,
                        Err(e) => break Err(e),
                    };
                    let mut eff_latency = match fault {
                        Some(ToolFaultKind::Hang) => latency * self.injector.stall_factor(),
                        _ => latency,
                    };
                    let mut attempt_result = match fault {
                        Some(ToolFaultKind::Fail) => Err(SysError::Fault("tool")),
                        _ => match outcome {
                            ToolOutcome::Ok(s) => Ok(s),
                            ToolOutcome::Failed(msg) => Err(SysError::ToolFailed(msg)),
                        },
                    };
                    if let Some(to) = timeout {
                        if eff_latency > to {
                            eff_latency = to;
                            attempt_result = Err(SysError::Timeout);
                            self.res_counters.tool_timeouts.inc();
                        }
                    }
                    total += eff_latency;
                    match attempt_result {
                        Ok(s) => break Ok(s),
                        Err(e) => {
                            failures += 1;
                            if policy.should_retry(failures) {
                                self.res_counters.tool_retries.inc();
                                if self.bus.is_enabled() {
                                    let tool = name.clone();
                                    self.bus.emit(now, || EventKind::ToolRetry {
                                        pid: pid.0,
                                        tid: tid.0,
                                        tool,
                                        failures,
                                    });
                                }
                                total += policy.backoff_after(failures, &mut self.rng);
                            } else {
                                self.res_counters.tool_calls_exhausted.inc();
                                break Err(e);
                            }
                        }
                    }
                };
                if let Some(bank) = self.breakers.as_mut() {
                    let trips_before = bank.trips();
                    bank.report(&name, final_result.is_ok(), now + total);
                    if bank.trips() > trips_before && self.bus.is_enabled() {
                        let tool = name.clone();
                        self.bus.emit(now, || EventKind::BreakerTrip { tool });
                    }
                }
                self.trace.record_with(
                    now,
                    "io",
                    || format!(
                        "tool={} tid={} attempts={} latency={}",
                        name,
                        tid.0,
                        failures + u32::from(final_result.is_ok()),
                        total
                    ),
                );
                self.kmetrics.tool_latency_ns.observe(total.as_nanos());
                if self.bus.is_enabled() {
                    let tool = name.clone();
                    let attempts = failures + u32::from(final_result.is_ok());
                    let latency_ns = total.as_nanos();
                    self.bus.emit(now, || EventKind::ToolInvoke {
                        pid: pid.0,
                        tid: tid.0,
                        tool,
                        attempts,
                        latency_ns,
                    });
                }
                // The handler fired and its outcome is decided: make it
                // durable *now*, atomically with the effect under the
                // syscall-boundary crash model, so recovery never re-fires
                // the tool (exactly-once side-effects).
                if self.is_durable(pid) {
                    self.wal_append(WalRecord::ToolEffect {
                        at: now,
                        pid: pid.0,
                        seq,
                        latency_ns: total.as_nanos(),
                        fired: true,
                        result: final_result.clone(),
                    });
                }
                self.begin_io(pid, total);
                self.events.schedule(
                    now + total,
                    Event::IoDone {
                        tid,
                        result: final_result,
                        issued_at: now,
                    },
                );
            }
            Syscall::SendMsg { to, data } => {
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.send;
                    p.seqs.send += 1;
                    s
                };
                // Recovery replay: the delivery (if any) happened pre-crash
                // and is already in the rebuilt mailbox or a journalled
                // recv; re-delivering would duplicate the message.
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.send_results.get(&(pid.0, seq)))
                        .copied();
                    if let Some(ok) = hit {
                        let reply = if ok {
                            SysReply::Unit
                        } else {
                            SysReply::Err(SysError::NotFound)
                        };
                        self.note_replay_hit(pid, tid, sys_name);
                        self.complete(tid, reply);
                        return;
                    }
                }
                // Journal the send when either endpoint is durable: the
                // sender's replay needs the result; the receiver's mailbox
                // rebuild needs the payload.
                let journal = self.is_durable(pid) || self.is_durable(to);
                match self.procs.get(to.0) {
                    Some(target) if !target.finished => {}
                    _ => {
                        if journal {
                            self.wal_append(WalRecord::IpcSend {
                                at: sys_at,
                                from: pid.0,
                                to: to.0,
                                seq,
                                ok: false,
                                delivered: false,
                                data: data.clone(),
                            });
                        }
                        self.complete(tid, SysReply::Err(SysError::NotFound));
                        return;
                    }
                }
                // Injected drop: the message vanishes in flight. The sender
                // still sees success — IPC is at-most-once, like UDP — so
                // resilient LIPs need acks/timeouts, which the chaos tests
                // exercise.
                if self.injector.ipc_send() {
                    self.trace.record_with(
                        self.events.now(),
                        "kernel",
                        || format!("ipc_drop from={} to={}", pid.0, to.0),
                    );
                    self.bus.emit(sys_at, || EventKind::IpcDrop {
                        from: pid.0,
                        to: to.0,
                    });
                    if journal {
                        self.wal_append(WalRecord::IpcSend {
                            at: sys_at,
                            from: pid.0,
                            to: to.0,
                            seq,
                            ok: true,
                            delivered: false,
                            data: data.clone(),
                        });
                    }
                    self.complete(tid, SysReply::Unit);
                    return;
                }
                let waiter = {
                    let target = sys!(self.procs.get_mut(to.0), "ipc target missing");
                    match target.recv_waiters.pop_front() {
                        Some(w) => Some(w),
                        None => {
                            target.mailbox.push_back((pid, data.clone(), sys_at, tid.0));
                            None
                        }
                    }
                };
                if journal {
                    self.wal_append(WalRecord::IpcSend {
                        at: sys_at,
                        from: pid.0,
                        to: to.0,
                        seq,
                        ok: true,
                        delivered: true,
                        data: data.clone(),
                    });
                }
                if let Some((wtid, rseq)) = waiter {
                    if self.is_durable(to) {
                        self.wal_append(WalRecord::IpcRecv {
                            at: sys_at,
                            pid: to.0,
                            seq: rseq,
                            from: pid.0,
                            data: data.clone(),
                        });
                    }
                    if self.causal {
                        // Direct delivery: this send wakes the parked recv.
                        self.bus.emit(sys_at, || EventKind::CausalEdge {
                            edge: EdgeKind::Ipc,
                            src_pid: pid.0,
                            src_tid: tid.0,
                            src_at: sys_at,
                            dst_pid: to.0,
                            dst_tid: wtid.0,
                        });
                    }
                    self.complete(wtid, SysReply::Msg { from: pid, data });
                }
                self.complete(tid, SysReply::Unit);
            }
            Syscall::Recv => {
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.recv;
                    p.seqs.recv += 1;
                    s
                };
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.recvs.get(&(pid.0, seq)))
                        .cloned();
                    if let Some((from, data)) = hit {
                        self.note_replay_hit(pid, tid, sys_name);
                        self.complete(
                            tid,
                            SysReply::Msg {
                                from: Pid(from),
                                data,
                            },
                        );
                        return;
                    }
                }
                let delivered = {
                    let proc = sys!(self.procs.get_mut(pid.0), "process missing");
                    match proc.mailbox.pop_front() {
                        Some(m) => Some(m),
                        None => {
                            proc.recv_waiters.push_back((tid, seq));
                            None
                        }
                    }
                };
                if let Some((from, data, sent_at, sender_tid)) = delivered {
                    if self.is_durable(pid) {
                        self.wal_append(WalRecord::IpcRecv {
                            at: sys_at,
                            pid: pid.0,
                            seq,
                            from: from.0,
                            data: data.clone(),
                        });
                    }
                    if self.causal && sender_tid != 0 {
                        // Mailbox hit: the buffered send (at `sent_at`) is
                        // what answers this recv.
                        self.bus.emit(sys_at, || EventKind::CausalEdge {
                            edge: EdgeKind::Ipc,
                            src_pid: from.0,
                            src_tid: sender_tid,
                            src_at: sent_at,
                            dst_pid: pid.0,
                            dst_tid: tid.0,
                        });
                    }
                    self.complete(tid, SysReply::Msg { from, data });
                }
            }
            Syscall::LookupProcess { name } => {
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.lookup;
                    p.seqs.lookup += 1;
                    s
                };
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.lookups.get(&(pid.0, seq)))
                        .copied();
                    if let Some(found) = hit {
                        self.note_replay_hit(pid, tid, sys_name);
                        self.complete(tid, SysReply::MaybePid(found.map(Pid)));
                        return;
                    }
                }
                let found = self
                    .names
                    .get(&name)
                    .copied()
                    .filter(|p| self.procs.get(p.0).is_some_and(|pr| !pr.finished));
                if self.is_durable(pid) {
                    self.wal_append(WalRecord::Lookup {
                        at: sys_at,
                        pid: pid.0,
                        seq,
                        found: found.map(|p| p.0),
                    });
                }
                self.complete(tid, SysReply::MaybePid(found));
            }
            Syscall::Sleep { dur } => {
                let at = self.events.now() + dur;
                self.events.schedule(at, Event::Resume(tid, SysReply::Unit));
            }
            Syscall::Emit { text } => {
                sys!(self.records.get_mut(pid.0), "process record missing")
                    .output
                    .push_str(&text);
                if self.session_sink.is_some() {
                    self.notify_session(SessionEvent::Emitted {
                        pid,
                        at: sys_at,
                        text,
                        tokens: 0,
                    });
                }
                self.complete(tid, SysReply::Unit);
            }
            Syscall::EmitTokens { tokens } => {
                let text = self.tokenizer.decode(&tokens);
                let rec = sys!(self.records.get_mut(pid.0), "process record missing");
                rec.output.push_str(&text);
                rec.usage.emitted_tokens += tokens.len() as u64;
                if self.session_sink.is_some() {
                    let n = tokens.len() as u64;
                    self.notify_session(SessionEvent::Emitted {
                        pid,
                        at: sys_at,
                        text,
                        tokens: n,
                    });
                }
                self.complete(tid, SysReply::Unit);
            }
            Syscall::Tokenize { text } => {
                let tokens = self.tokenizer.encode(&text);
                self.complete(tid, SysReply::Tokens(tokens));
            }
            Syscall::Detokenize { tokens } => {
                let text = self.tokenizer.decode(&tokens);
                self.complete(tid, SysReply::Text(text));
            }
            Syscall::Now => {
                let seq = {
                    let p = sys!(self.procs.get_mut(pid.0), "process missing");
                    let s = p.seqs.now;
                    p.seqs.now += 1;
                    s
                };
                // Replayed `now` returns the *original* observation: the
                // recovered clock starts past the crash point, and a LIP
                // branching on time must see the same values it saw before.
                if self.is_durable(pid) {
                    let hit = self
                        .replay
                        .as_ref()
                        .and_then(|r| r.nows.get(&(pid.0, seq)))
                        .copied();
                    if let Some(t) = hit {
                        self.note_replay_hit(pid, tid, sys_name);
                        self.complete(tid, SysReply::Time(t));
                        return;
                    }
                }
                let t = self.events.now();
                if self.is_durable(pid) {
                    self.wal_append(WalRecord::NowEffect {
                        at: sys_at,
                        pid: pid.0,
                        seq,
                        t,
                    });
                }
                self.complete(tid, SysReply::Time(t));
            }
        }
    }

    // ---- I/O with KV offload (§4.3) ------------------------------------------------

    fn begin_io(&mut self, pid: Pid, latency: SimDuration) {
        let Some(proc) = self.procs.get_mut(pid.0) else {
            debug_assert!(false, "begin_io: unknown pid {}", pid.0);
            return;
        };
        proc.io_waiting += 1;
        if !self.offload_on_io_wait || latency < self.offload_min_latency {
            return;
        }
        // Offload the process's GPU-resident, unpinned files to host memory.
        let owner = OwnerId(pid.0);
        let victims: Vec<FileId> = self
            .store
            .list_files()
            .into_iter()
            .filter(|s| s.owner == owner && !s.pinned && s.residency == Residency::Gpu)
            .map(|s| s.id)
            .collect();
        for f in victims {
            if self.store.swap_out(f, owner).is_ok() {
                if let Some(proc) = self.procs.get_mut(pid.0) {
                    proc.offloaded.push(f);
                }
                let at = self.events.now();
                self.bus.emit(at, || EventKind::KvOffload {
                    pid: pid.0,
                    file: f.0,
                });
                self.trace
                    .record_with(at, "io", || format!("offload pid={} file={}", pid.0, f.0));
            }
        }
    }

    fn finish_io(&mut self, tid: Tid, result: Result<String, SysError>, issued_at: SimTime) {
        let Some(ts) = self.threads.get(tid.0) else {
            return;
        };
        let pid = ts.pid;
        if self.causal {
            // Tool edge: the call issued at `issued_at` is what lets this
            // thread resume now.
            let at = self.events.now();
            self.bus.emit(at, || EventKind::CausalEdge {
                edge: EdgeKind::Tool,
                src_pid: pid.0,
                src_tid: tid.0,
                src_at: issued_at,
                dst_pid: pid.0,
                dst_tid: tid.0,
            });
        }
        // A missing process record still must not swallow the reply: skip
        // the offload bookkeeping but deliver the result to the thread.
        let Some(proc) = self.procs.get_mut(pid.0) else {
            debug_assert!(false, "finish_io: unknown pid {}", pid.0);
            let reply = match result {
                Ok(s) => SysReply::Text(s),
                Err(e) => SysReply::Err(e),
            };
            self.ready.push_back((tid, reply));
            return;
        };
        // An underflow here means an IoDone fired for a process that never
        // entered `begin_io` — a bookkeeping bug that a silent clamp would
        // hide (and with it the offload-restore trigger below).
        let underflow = proc.io_waiting == 0;
        debug_assert!(!underflow, "finish_io: io_waiting underflow pid={}", pid.0);
        proc.io_waiting = proc.io_waiting.saturating_sub(1);
        if underflow {
            self.kmetrics.io_waiting_underflow.inc();
        }
        let proc = match self.procs.get_mut(pid.0) {
            Some(p) => p,
            None => return,
        };
        let mut restored = SwapReport::default();
        if proc.io_waiting == 0 && !proc.offloaded.is_empty() {
            let files = std::mem::take(&mut proc.offloaded);
            let owner = OwnerId(pid.0);
            for f in files {
                // Injected restore fault: the file stays in host memory.
                // The LIP's next `pred` on it sees `Kv(NotResident)` and
                // can swap it in explicitly — containment, not a crash.
                if self.injector.swap_in() {
                    let at = self.events.now();
                    self.bus
                        .emit(at, || EventKind::FaultInjected { site: "kv.restore" });
                    self.trace.record_with(
                        at,
                        "io",
                        || format!("restore_fault pid={} file={}", pid.0, f.0),
                    );
                    continue;
                }
                if let Ok(moved) = self.store.swap_in(f, owner) {
                    restored.dram_tokens += moved.dram_tokens;
                    restored.disk_tokens += moved.disk_tokens;
                }
            }
        }
        let reply = match result {
            Ok(s) => SysReply::Text(s),
            Err(e) => SysReply::Err(e),
        };
        let restore_tokens = restored.total();
        if restore_tokens > 0 {
            // The thread pays the PCIe (and NVMe, for disk-spilled pages)
            // restore time before resuming.
            let cost = self.swap_cost(restored);
            let at = self.events.now();
            self.bus.emit(at, || EventKind::KvRestore {
                pid: pid.0,
                tokens: restore_tokens as u64,
            });
            self.trace.record_with(
                at,
                "io",
                || format!("restore pid={} tokens={restore_tokens}", pid.0),
            );
            self.events
                .schedule(self.events.now() + cost, Event::Resume(tid, reply));
        } else {
            self.ready.push_back((tid, reply));
        }
    }

    // ---- exit and cleanup --------------------------------------------------------

    fn handle_exit(&mut self, tid: Tid, status: ExitStatus) {
        let (pid, waiters, handle) = {
            // An exit from a thread the kernel never tracked has nothing to
            // clean up; the count is only decremented on a real exit.
            let Some(ts) = self.threads.get_mut(tid.0) else {
                debug_assert!(false, "exit from unknown tid {}", tid.0);
                return;
            };
            ts.status = Some(status.clone());
            (
                ts.pid,
                std::mem::take(&mut ts.join_waiters),
                ts.handle.take(),
            )
        };
        self.live_threads -= 1;
        if let Some(h) = handle {
            h.join();
        }
        for w in waiters {
            if self.causal {
                // Join edge: this thread's exit unblocks the joiner.
                let at = self.events.now();
                let dst_pid = self.threads.get(w.0).map(|t| t.pid.0).unwrap_or(pid.0);
                self.bus.emit(at, || EventKind::CausalEdge {
                    edge: EdgeKind::Join,
                    src_pid: pid.0,
                    src_tid: tid.0,
                    src_at: at,
                    dst_pid,
                    dst_tid: w.0,
                });
            }
            self.complete(w, SysReply::Joined(status.clone()));
        }
        let Some(proc) = self.procs.get_mut(pid.0) else {
            debug_assert!(false, "exit for unknown pid {}", pid.0);
            return;
        };
        proc.live_threads -= 1;
        let is_main = proc.main_tid == tid;
        let process_done = proc.live_threads == 0;
        if is_main {
            if let Some(rec) = self.records.get_mut(pid.0) {
                rec.status = status.clone();
            }
        }
        let at = self.events.now();
        let ok = status.is_ok();
        self.bus.emit(at, || EventKind::ThreadExit {
            pid: pid.0,
            tid: tid.0,
            ok,
        });
        self.trace.record_with(
            at,
            "kernel",
            || format!("exit tid={} pid={} ok={}", tid.0, pid.0, status.is_ok()),
        );
        if process_done {
            self.finalize_process(pid);
        }
    }

    /// Reclaims a finished process's resources: releases its locks and
    /// removes its *unnamed* KV files. Files published under a path persist
    /// beyond the process lifetime (§4.2).
    fn finalize_process(&mut self, pid: Pid) {
        let owner = OwnerId(pid.0);
        self.store.release_locks(owner);
        self.cqueue.forget(pid.0);
        let victims: Vec<FileId> = self
            .store
            .list_files()
            .into_iter()
            .filter(|s| s.owner == owner && s.links == 0)
            .map(|s| s.id)
            .collect();
        for f in victims {
            let _ = self.store.remove(f, OwnerId::ADMIN);
        }
        if let Some(proc) = self.procs.get_mut(pid.0) {
            proc.finished = true;
            proc.mailbox.clear();
        }
        let now = self.events.now();
        let Some(rec) = self.records.get_mut(pid.0) else {
            debug_assert!(false, "finalize for unknown pid {}", pid.0);
            return;
        };
        rec.exited_at = Some(now);
        let ok = rec.status.is_ok();
        let exit_rec = if self.durable_pids.contains(&pid.0) {
            Some(WalRecord::ProcExit {
                at: now,
                pid: pid.0,
                status: rec.status.clone(),
                output: rec.output.clone(),
                usage: rec.usage,
            })
        } else {
            None
        };
        if let Some(r) = exit_rec {
            // A durable exit frame makes the whole program's outcome
            // durable: recovery restores it as a record, no re-execution.
            self.wal_append(r);
        }
        self.bus
            .emit(now, || EventKind::ProcessExit { pid: pid.0, ok });
        if self.session_sink.is_some() {
            let (status, usage) = match self.records.get(pid.0) {
                Some(rec) => (rec.status.clone(), rec.usage),
                None => return,
            };
            self.notify_session(SessionEvent::Exited {
                pid,
                at: now,
                status,
                usage,
            });
        }
        self.trace
            .record_with(now, "kernel", || format!("reap pid={}", pid.0));
    }
}

impl Drop for Kernel {
    fn drop(&mut self) {
        // Unblock every parked LIP thread (their recv fails once the reply
        // sender drops), then join the OS threads.
        let mut threads = std::mem::take(&mut self.threads);
        let mut handles = Vec::new();
        for (_, ts) in threads.drain() {
            drop(ts.reply_tx);
            if let Some(h) = ts.handle {
                handles.push(h);
            }
        }
        for h in handles {
            h.join();
        }
    }
}
