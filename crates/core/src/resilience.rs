//! Resilience mechanisms: per-tool circuit breakers and KV-pool admission
//! control.
//!
//! Both run entirely on the virtual clock, so their state transitions are
//! deterministic for a given `(seed, plan, workload)` and show up
//! byte-identically in kernel stats across same-seed runs.

use std::collections::BTreeMap;

use symphony_sim::{SimDuration, SimTime};
use symphony_telemetry::{Counter, MetricsRegistry};

/// Circuit-breaker configuration, applied per tool name.
///
/// The breaker counts *whole-call* outcomes (after retries), not individual
/// attempts: a call that succeeds on its third attempt resets the streak.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BreakerPolicy {
    /// Consecutive failed calls that trip the breaker open.
    pub failure_threshold: u32,
    /// How long the breaker stays open before admitting a half-open trial.
    pub cooldown: SimDuration,
}

impl BreakerPolicy {
    /// A breaker tripping after `failure_threshold` failures with the given
    /// cooldown.
    pub fn new(failure_threshold: u32, cooldown: SimDuration) -> Self {
        BreakerPolicy {
            failure_threshold: failure_threshold.max(1),
            cooldown,
        }
    }
}

/// One tool's breaker state machine: Closed → Open → HalfOpen → {Closed, Open}.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BreakerState {
    /// Calls flow; consecutive failures are counted.
    Closed { consecutive_failures: u32 },
    /// Calls fast-fail until the cooldown expires on the virtual clock.
    Open { until: SimTime },
    /// One trial call is in flight; its outcome decides the next state.
    HalfOpen,
}

/// A serialisable view of one breaker's state, used by the kernel WAL to
/// checkpoint and restore the bank across crashes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerStateView {
    /// Calls flow; `consecutive_failures` failures so far.
    Closed {
        /// Consecutive whole-call failures counted toward the threshold.
        consecutive_failures: u32,
    },
    /// Fast-failing until the cooldown expires.
    Open {
        /// Virtual time at which the cooldown expires.
        until: SimTime,
    },
    /// A trial call was in flight.
    HalfOpen,
}

/// The admission verdict for a tool call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BreakerVerdict {
    /// Proceed normally.
    Allow,
    /// Proceed as the single half-open trial.
    AllowTrial,
    /// Fast-fail with `SysError::Unavailable`.
    Reject,
}

/// All per-tool breakers plus trip counters.
#[derive(Debug)]
pub struct BreakerBank {
    policy: BreakerPolicy,
    states: BTreeMap<String, BreakerState>,
    trips: Counter,
    rejections: Counter,
}

impl BreakerBank {
    /// A bank where every tool starts closed, with a private metrics
    /// registry.
    pub fn new(policy: BreakerPolicy) -> Self {
        BreakerBank::with_registry(policy, &MetricsRegistry::new())
    }

    /// A bank whose trip/rejection counters live in `registry` under the
    /// `resilience.breaker_*` names (shared with [`ResilienceCounters`]).
    pub fn with_registry(policy: BreakerPolicy, registry: &MetricsRegistry) -> Self {
        BreakerBank {
            policy,
            states: BTreeMap::new(),
            trips: registry.counter("resilience.breaker_trips"),
            rejections: registry.counter("resilience.breaker_rejections"),
        }
    }

    /// Times the breaker tripped open.
    pub fn trips(&self) -> u64 {
        self.trips.get()
    }

    /// Calls fast-failed while open.
    pub fn rejections(&self) -> u64 {
        self.rejections.get()
    }

    /// Whether `tool`'s breaker is currently open at `now`.
    pub fn is_open(&self, tool: &str, now: SimTime) -> bool {
        matches!(self.states.get(tool), Some(BreakerState::Open { until }) if now < *until)
    }

    /// Gate a call to `tool` at `now`.
    pub fn admit(&mut self, tool: &str, now: SimTime) -> BreakerVerdict {
        let state = self
            .states
            .entry(tool.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_failures: 0,
            });
        match *state {
            BreakerState::Closed { .. } => BreakerVerdict::Allow,
            BreakerState::Open { until } => {
                if now >= until {
                    *state = BreakerState::HalfOpen;
                    BreakerVerdict::AllowTrial
                } else {
                    self.rejections.inc();
                    BreakerVerdict::Reject
                }
            }
            // A trial is already in flight; other callers keep fast-failing
            // until it reports back.
            BreakerState::HalfOpen => {
                self.rejections.inc();
                BreakerVerdict::Reject
            }
        }
    }

    /// Report a whole call's outcome. `completed_at` is when the call (with
    /// all its retries) finished on the virtual clock; an open breaker's
    /// cooldown runs from there.
    pub fn report(&mut self, tool: &str, success: bool, completed_at: SimTime) {
        let state = self
            .states
            .entry(tool.to_string())
            .or_insert(BreakerState::Closed {
                consecutive_failures: 0,
            });
        if success {
            *state = BreakerState::Closed {
                consecutive_failures: 0,
            };
            return;
        }
        let trip = match *state {
            BreakerState::Closed {
                consecutive_failures,
            } => {
                let n = consecutive_failures + 1;
                if n >= self.policy.failure_threshold {
                    true
                } else {
                    *state = BreakerState::Closed {
                        consecutive_failures: n,
                    };
                    false
                }
            }
            // A failed half-open trial re-opens immediately.
            BreakerState::HalfOpen => true,
            // Late report while open (call was in flight when it tripped):
            // extend the cooldown.
            BreakerState::Open { .. } => true,
        };
        if trip {
            self.trips.inc();
            *state = BreakerState::Open {
                until: completed_at + self.policy.cooldown,
            };
        }
    }

    /// Every tool's current state, in name order, for checkpointing.
    pub fn export_states(&self) -> Vec<(String, BreakerStateView)> {
        self.states
            .iter()
            .map(|(tool, s)| {
                let view = match *s {
                    BreakerState::Closed {
                        consecutive_failures,
                    } => BreakerStateView::Closed {
                        consecutive_failures,
                    },
                    BreakerState::Open { until } => BreakerStateView::Open { until },
                    BreakerState::HalfOpen => BreakerStateView::HalfOpen,
                };
                (tool.clone(), view)
            })
            .collect()
    }

    /// Replaces the bank's states with a checkpointed snapshot. Trip and
    /// rejection counters are process-lifetime metrics and are not restored.
    pub fn import_states(&mut self, states: Vec<(String, BreakerStateView)>) {
        self.states = states
            .into_iter()
            .map(|(tool, view)| {
                let s = match view {
                    BreakerStateView::Closed {
                        consecutive_failures,
                    } => BreakerState::Closed {
                        consecutive_failures,
                    },
                    BreakerStateView::Open { until } => BreakerState::Open { until },
                    BreakerStateView::HalfOpen => BreakerState::HalfOpen,
                };
                (tool, s)
            })
            .collect();
    }
}

/// Admission control for `pred` under KV-pool pressure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AdmissionPolicy {
    /// Shed a `pred` arrival with `SysError::Busy` once this many calls are
    /// already pooled (bounded queue).
    pub max_queue: usize,
    /// On `NoGpuMemory` at batch time, requeue the request after this delay
    /// instead of failing it...
    pub retry_delay: SimDuration,
    /// ...at most this many times, then fail with `SysError::Busy`.
    pub max_retries: u32,
}

impl AdmissionPolicy {
    /// Bounded queue of `max_queue` with requeue-on-pressure defaults.
    pub fn bounded(max_queue: usize) -> Self {
        AdmissionPolicy {
            max_queue: max_queue.max(1),
            retry_delay: SimDuration::from_millis(5),
            max_retries: 8,
        }
    }
}

/// Resilience counters surfaced in kernel stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ResilienceStats {
    /// Tool attempts retried (attempt 2 and beyond).
    pub tool_retries: u64,
    /// Tool calls that failed after exhausting all attempts.
    pub tool_calls_exhausted: u64,
    /// Tool attempts that exceeded the per-call timeout.
    pub tool_timeouts: u64,
    /// Breaker trips (Closed/HalfOpen → Open).
    pub breaker_trips: u64,
    /// Calls fast-failed with `Unavailable` while a breaker was open.
    pub breaker_rejections: u64,
    /// `pred` arrivals shed with `Busy` at the admission queue.
    pub preds_shed: u64,
    /// `pred` requests requeued after KV-pool exhaustion.
    pub preds_requeued: u64,
    /// Processes terminated by their wall-clock deadline.
    pub deadline_kills: u64,
}

/// Live counter handles into the metrics registry backing
/// [`ResilienceStats`] (`resilience.*` names). The breaker counters are the
/// same registry entries a [`BreakerBank::with_registry`] increments, so a
/// snapshot needs no merging.
#[derive(Debug, Clone)]
pub(crate) struct ResilienceCounters {
    pub(crate) tool_retries: Counter,
    pub(crate) tool_calls_exhausted: Counter,
    pub(crate) tool_timeouts: Counter,
    breaker_trips: Counter,
    breaker_rejections: Counter,
    pub(crate) preds_shed: Counter,
    pub(crate) preds_requeued: Counter,
    pub(crate) deadline_kills: Counter,
}

impl ResilienceCounters {
    pub(crate) fn register(registry: &MetricsRegistry) -> Self {
        ResilienceCounters {
            tool_retries: registry.counter("resilience.tool_retries"),
            tool_calls_exhausted: registry.counter("resilience.tool_calls_exhausted"),
            tool_timeouts: registry.counter("resilience.tool_timeouts"),
            breaker_trips: registry.counter("resilience.breaker_trips"),
            breaker_rejections: registry.counter("resilience.breaker_rejections"),
            preds_shed: registry.counter("resilience.preds_shed"),
            preds_requeued: registry.counter("resilience.preds_requeued"),
            deadline_kills: registry.counter("resilience.deadline_kills"),
        }
    }

    /// A point-in-time [`ResilienceStats`] snapshot.
    pub(crate) fn snapshot(&self) -> ResilienceStats {
        ResilienceStats {
            tool_retries: self.tool_retries.get(),
            tool_calls_exhausted: self.tool_calls_exhausted.get(),
            tool_timeouts: self.tool_timeouts.get(),
            breaker_trips: self.breaker_trips.get(),
            breaker_rejections: self.breaker_rejections.get(),
            preds_shed: self.preds_shed.get(),
            preds_requeued: self.preds_requeued.get(),
            deadline_kills: self.deadline_kills.get(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn breaker_trips_after_threshold_and_cools_down() {
        let mut bank = BreakerBank::new(BreakerPolicy::new(3, SimDuration::from_millis(100)));
        // Two failures: still closed.
        bank.report("api", false, at(1));
        bank.report("api", false, at(2));
        assert_eq!(bank.admit("api", at(3)), BreakerVerdict::Allow);
        assert_eq!(bank.trips(), 0);
        // Third consecutive failure trips it.
        bank.report("api", false, at(3));
        assert_eq!(bank.trips(), 1);
        assert!(bank.is_open("api", at(50)));
        assert_eq!(bank.admit("api", at(50)), BreakerVerdict::Reject);
        assert_eq!(bank.rejections(), 1);
        // Cooldown over: one half-open trial, others still rejected.
        assert_eq!(bank.admit("api", at(103)), BreakerVerdict::AllowTrial);
        assert_eq!(bank.admit("api", at(104)), BreakerVerdict::Reject);
        // Trial succeeds: closed again.
        bank.report("api", true, at(110));
        assert_eq!(bank.admit("api", at(111)), BreakerVerdict::Allow);
    }

    #[test]
    fn failed_trial_reopens() {
        let mut bank = BreakerBank::new(BreakerPolicy::new(1, SimDuration::from_millis(10)));
        bank.report("api", false, at(0));
        assert_eq!(bank.trips(), 1);
        assert_eq!(bank.admit("api", at(15)), BreakerVerdict::AllowTrial);
        bank.report("api", false, at(16));
        assert_eq!(bank.trips(), 2);
        assert!(bank.is_open("api", at(20)));
        assert!(!bank.is_open("api", at(26)), "cooldown from completion time");
    }

    #[test]
    fn success_resets_streak() {
        let mut bank = BreakerBank::new(BreakerPolicy::new(2, SimDuration::from_millis(10)));
        bank.report("api", false, at(0));
        bank.report("api", true, at(1));
        bank.report("api", false, at(2));
        assert_eq!(bank.trips(), 0, "streak broken by success");
    }

    #[test]
    fn breakers_are_per_tool() {
        let mut bank = BreakerBank::new(BreakerPolicy::new(1, SimDuration::from_secs(1)));
        bank.report("bad", false, at(0));
        assert_eq!(bank.admit("bad", at(1)), BreakerVerdict::Reject);
        assert_eq!(bank.admit("good", at(1)), BreakerVerdict::Allow);
    }
}
