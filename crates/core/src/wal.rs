//! The kernel write-ahead log: crash-tolerant serving state.
//!
//! PR 5 made KV pages durable; this module makes the *kernel* durable —
//! process table, tool side-effects, IPC traffic and pred results — so a
//! mid-run crash costs bounded re-execution instead of every in-flight
//! program. The format reuses the SYMJ frame discipline from
//! `symphony_kvfs::journal` (`[tag u8][len u32][payload][crc u32]`,
//! FNV-1a over tag + payload, torn tails truncated) under a distinct
//! magic and tag space (32+), so one set of tooling reads both logs.
//!
//! # Durability classes
//!
//! Frames split into two classes, and the split is what makes the
//! checkpoint interval a real knob:
//!
//! - **Synchronous** (flushed before the effect is observable): process
//!   spawn/exit, tool effects, IPC sends/receives, name lookups and
//!   `now` reads. These are small and must never be lost — a re-executed
//!   LIP that cannot find its tool call in the log would fire the tool
//!   twice.
//! - **Buffered** (flushed at checkpoints): pred results, which carry
//!   whole token distributions. A crash loses the buffer; the recovered
//!   LIP re-executes those preds on the GPU. Wasted work therefore
//!   scales with the checkpoint interval, which E14 measures.
//!
//! # Recovery model
//!
//! LIPs are closures on OS threads — there is no portable way to
//! snapshot one mid-flight. Recovery instead *re-executes* every
//! unfinished program from its start with the same pid, main tid and
//! per-thread RNG stream, answering every journalled syscall effect from
//! the log (same tool results, same IPC data, same pred distributions —
//! bit-exact via [`Dist::from_normalized_parts`]) so the re-execution
//! deterministically reaches the pre-crash state without re-firing
//! side effects, then falls through to live execution. Sequence numbers
//! per `(pid, effect kind)` key the replay maps.

use std::collections::{BTreeMap, BTreeSet};
use std::io::Write;
use std::path::PathBuf;

use symphony_kvfs::KvError;
use symphony_model::Dist;
use symphony_sim::frame::{
    append_frame, fnv1a, push_opt_u64, push_str, push_u32, push_u64, read_frames, Cursor,
};
use symphony_sim::{SimDuration, SimTime};

use crate::resilience::BreakerStateView;
use crate::types::{ExitStatus, Limits, ProcessUsage, SysError};

/// WAL file magic: "SYMW" (sibling of the KVFS journal's "SYMJ").
pub const WAL_MAGIC: [u8; 4] = *b"SYMW";

/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;

/// Default virtual-time spacing between checkpoints.
pub const DEFAULT_CHECKPOINT_EVERY: SimDuration = SimDuration::from_millis(5);

const HEADER_LEN: usize = 4 + 4 + 8 + 4;

const TAG_PROC_SPAWN: u8 = 32;
const TAG_PROC_EXIT: u8 = 33;
const TAG_TOOL_EFFECT: u8 = 34;
const TAG_IPC_SEND: u8 = 35;
const TAG_IPC_RECV: u8 = 36;
const TAG_LOOKUP: u8 = 37;
const TAG_NOW: u8 = 38;
const TAG_PRED_EFFECT: u8 = 39;
const TAG_CHECKPOINT: u8 = 40;
const TAG_PROC_SCHED: u8 = 41;

/// Enables the kernel WAL: where it lives and how often buffered pred
/// frames are checkpointed to disk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalConfig {
    /// WAL file path. Created (truncating any previous log) by
    /// `Kernel::new`; appended to by `Kernel::recover`.
    pub path: PathBuf,
    /// Virtual-time interval between checkpoints. Shorter intervals lose
    /// less pred work to a crash but write (and fsync) more often.
    pub checkpoint_every: SimDuration,
}

impl WalConfig {
    /// A config at the default checkpoint interval.
    pub fn new(path: impl Into<PathBuf>) -> Self {
        WalConfig {
            path: path.into(),
            checkpoint_every: DEFAULT_CHECKPOINT_EVERY,
        }
    }

    /// Overrides the checkpoint interval.
    pub fn with_checkpoint_every(mut self, every: SimDuration) -> Self {
        self.checkpoint_every = every;
        self
    }
}

/// Why a WAL could not be read back.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalError {
    /// `KernelConfig::wal` is `None` — there is nothing to recover from.
    Disabled,
    /// The file is missing or its header is unusable.
    Unreadable,
    /// Magic/version mismatch, or the log was written under a different
    /// kernel seed (replay would diverge).
    Incompatible,
}

impl core::fmt::Display for WalError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            WalError::Disabled => write!(f, "kernel WAL is not configured"),
            WalError::Unreadable => write!(f, "kernel WAL missing or header unusable"),
            WalError::Incompatible => write!(f, "kernel WAL incompatible (magic/version/seed)"),
        }
    }
}

/// What `Kernel::resume_programs` recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Unfinished programs re-admitted for deterministic re-execution.
    pub resumed: usize,
    /// Finished programs restored as records without re-execution.
    pub finished: usize,
    /// Unfinished programs whose image could not be resolved; recorded as
    /// crashed.
    pub lost: usize,
    /// Valid frames read from the log.
    pub frames: u64,
    /// WAL bytes read.
    pub wal_bytes: u64,
    /// Whether a torn tail was truncated.
    pub torn: bool,
    /// The virtual clock restored from the last durable frame.
    pub clock: SimTime,
}

// ---- records ---------------------------------------------------------------

/// One journalled kernel effect. Every payload starts with the virtual
/// time it was recorded at, which recovery uses to restore the clock.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum WalRecord {
    ProcSpawn {
        at: SimTime,
        pid: u64,
        main_tid: u64,
        durable: bool,
        name: String,
        args: String,
        limits: Limits,
    },
    ProcExit {
        at: SimTime,
        pid: u64,
        status: ExitStatus,
        output: String,
        usage: ProcessUsage,
    },
    ToolEffect {
        at: SimTime,
        pid: u64,
        seq: u64,
        latency_ns: u64,
        fired: bool,
        result: Result<String, SysError>,
    },
    IpcSend {
        at: SimTime,
        from: u64,
        to: u64,
        seq: u64,
        ok: bool,
        delivered: bool,
        data: String,
    },
    IpcRecv {
        at: SimTime,
        pid: u64,
        seq: u64,
        from: u64,
        data: String,
    },
    Lookup {
        at: SimTime,
        pid: u64,
        seq: u64,
        found: Option<u64>,
    },
    NowEffect {
        at: SimTime,
        pid: u64,
        seq: u64,
        t: SimTime,
    },
    PredEffect {
        at: SimTime,
        pid: u64,
        seq: u64,
        dists: Vec<Dist>,
    },
    Checkpoint {
        at: SimTime,
        next_pid: u64,
        next_tid: u64,
        breakers: Vec<(String, BreakerStateView)>,
    },
    /// A program admitted for a *future* arrival. Journalled at schedule
    /// time so a crash before the arrival event fires does not silently
    /// drop the program; superseded by `ProcSpawn` once it starts. The
    /// main tid is pre-assigned at schedule time so the program's
    /// per-thread RNG stream is identical whether or not a crash
    /// intervened before it started.
    ProcSched {
        at: SimTime,
        pid: u64,
        main_tid: u64,
        arrival: SimTime,
        durable: bool,
        name: String,
        args: String,
        limits: Limits,
    },
}

impl WalRecord {
    pub(crate) fn at(&self) -> SimTime {
        match self {
            WalRecord::ProcSpawn { at, .. }
            | WalRecord::ProcExit { at, .. }
            | WalRecord::ToolEffect { at, .. }
            | WalRecord::IpcSend { at, .. }
            | WalRecord::IpcRecv { at, .. }
            | WalRecord::Lookup { at, .. }
            | WalRecord::NowEffect { at, .. }
            | WalRecord::PredEffect { at, .. }
            | WalRecord::Checkpoint { at, .. }
            | WalRecord::ProcSched { at, .. } => *at,
        }
    }
}

// ---- error codecs ----------------------------------------------------------

const KV_ERRORS: &[KvError] = &[
    KvError::NoGpuMemory,
    KvError::NoCpuMemory,
    KvError::NoDiskMemory,
    KvError::NotFound,
    KvError::AlreadyExists,
    KvError::PermissionDenied,
    KvError::Locked,
    KvError::NotLockHolder,
    KvError::QuotaExceeded,
    KvError::BadRange,
    KvError::NotResident,
    KvError::Pinned,
    KvError::EmptyInput,
    KvError::JournalTorn,
    KvError::JournalIncompatible,
];

fn encode_kv_error(e: KvError) -> u8 {
    KV_ERRORS.iter().position(|k| *k == e).unwrap_or(3) as u8
}

fn decode_kv_error(b: u8) -> KvError {
    KV_ERRORS
        .get(b as usize)
        .copied()
        .unwrap_or(KvError::NotFound)
}

/// Re-materialises a `&'static str` error payload. Known kernel constants
/// come back as themselves; anything else is leaked once per distinct
/// string, which is bounded by the (small, fixed) set of payloads the
/// kernel can produce.
fn intern(s: String) -> &'static str {
    for known in [
        "tool",
        "gpu.pred",
        "kv.swap_in",
        "syscalls",
        "pred_tokens",
        "tool_calls",
        "threads",
    ] {
        if s == known {
            return known;
        }
    }
    Box::leak(s.into_boxed_str())
}

fn encode_sys_error(out: &mut Vec<u8>, e: &SysError) {
    let (kind, payload): (u8, &str) = match e {
        SysError::Kv(k) => {
            out.push(0);
            out.push(encode_kv_error(*k));
            push_str(out, "");
            return;
        }
        SysError::NotFound => (1, ""),
        SysError::NoSuchTool(name) => (2, name.as_str()),
        SysError::BadArgument => (3, ""),
        SysError::ThreadFailed => (4, ""),
        SysError::ToolFailed(msg) => (5, msg.as_str()),
        SysError::Timeout => (6, ""),
        SysError::DeadlineExceeded => (7, ""),
        SysError::Unavailable => (8, ""),
        SysError::Busy => (9, ""),
        SysError::Fault(site) => (10, site),
        SysError::LimitExceeded(what) => (11, what),
        SysError::Shutdown => (12, ""),
        SysError::Internal(what) => (13, what),
        SysError::Cancelled => (14, ""),
    };
    out.push(kind);
    out.push(0);
    push_str(out, payload);
}

fn decode_sys_error(c: &mut Cursor<'_>) -> Option<SysError> {
    let kind = c.u8()?;
    let kv = c.u8()?;
    let payload = c.str()?;
    Some(match kind {
        0 => SysError::Kv(decode_kv_error(kv)),
        1 => SysError::NotFound,
        2 => SysError::NoSuchTool(payload),
        3 => SysError::BadArgument,
        4 => SysError::ThreadFailed,
        5 => SysError::ToolFailed(payload),
        6 => SysError::Timeout,
        7 => SysError::DeadlineExceeded,
        8 => SysError::Unavailable,
        9 => SysError::Busy,
        10 => SysError::Fault(intern(payload)),
        11 => SysError::LimitExceeded(intern(payload)),
        12 => SysError::Shutdown,
        13 => SysError::Internal(intern(payload)),
        14 => SysError::Cancelled,
        _ => return None,
    })
}

fn encode_limits(out: &mut Vec<u8>, l: &Limits) {
    push_opt_u64(out, l.max_syscalls);
    push_opt_u64(out, l.max_pred_tokens);
    push_opt_u64(out, l.max_tool_calls);
    push_opt_u64(out, l.max_threads.map(u64::from));
    push_opt_u64(out, l.kv_quota_pages.map(|p| p as u64));
    push_opt_u64(out, l.tool_timeout.map(|d| d.as_nanos()));
    push_opt_u64(out, l.deadline.map(|d| d.as_nanos()));
}

fn decode_limits(c: &mut Cursor<'_>) -> Option<Limits> {
    Some(Limits {
        max_syscalls: c.opt_u64()?,
        max_pred_tokens: c.opt_u64()?,
        max_tool_calls: c.opt_u64()?,
        max_threads: c.opt_u64()?.map(|v| v as u32),
        kv_quota_pages: c.opt_u64()?.map(|v| v as usize),
        tool_timeout: c.opt_u64()?.map(SimDuration::from_nanos),
        deadline: c.opt_u64()?.map(SimDuration::from_nanos),
    })
}

// ---- record codec ----------------------------------------------------------

fn record_tag(rec: &WalRecord) -> u8 {
    match rec {
        WalRecord::ProcSpawn { .. } => TAG_PROC_SPAWN,
        WalRecord::ProcExit { .. } => TAG_PROC_EXIT,
        WalRecord::ToolEffect { .. } => TAG_TOOL_EFFECT,
        WalRecord::IpcSend { .. } => TAG_IPC_SEND,
        WalRecord::IpcRecv { .. } => TAG_IPC_RECV,
        WalRecord::Lookup { .. } => TAG_LOOKUP,
        WalRecord::NowEffect { .. } => TAG_NOW,
        WalRecord::PredEffect { .. } => TAG_PRED_EFFECT,
        WalRecord::Checkpoint { .. } => TAG_CHECKPOINT,
        WalRecord::ProcSched { .. } => TAG_PROC_SCHED,
    }
}

fn encode_payload(rec: &WalRecord, out: &mut Vec<u8>) {
    push_u64(out, rec.at().as_nanos());
    match rec {
        WalRecord::ProcSpawn {
            pid,
            main_tid,
            durable,
            name,
            args,
            limits,
            ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *main_tid);
            out.push(u8::from(*durable));
            push_str(out, name);
            push_str(out, args);
            encode_limits(out, limits);
        }
        WalRecord::ProcExit {
            pid,
            status,
            output,
            usage,
            ..
        } => {
            push_u64(out, *pid);
            match status {
                ExitStatus::Ok => out.push(0),
                ExitStatus::Crashed => out.push(1),
                ExitStatus::Error(e) => {
                    out.push(2);
                    encode_sys_error(out, e);
                }
            }
            push_str(out, output);
            push_u64(out, usage.syscalls);
            push_u64(out, usage.pred_calls);
            push_u64(out, usage.pred_tokens);
            push_u64(out, usage.emitted_tokens);
            push_u64(out, usage.tool_calls);
            push_u32(out, usage.threads_spawned);
        }
        WalRecord::ToolEffect {
            pid,
            seq,
            latency_ns,
            fired,
            result,
            ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *seq);
            push_u64(out, *latency_ns);
            out.push(u8::from(*fired));
            match result {
                Ok(text) => {
                    out.push(0);
                    push_str(out, text);
                }
                Err(e) => {
                    out.push(1);
                    encode_sys_error(out, e);
                }
            }
        }
        WalRecord::IpcSend {
            from,
            to,
            seq,
            ok,
            delivered,
            data,
            ..
        } => {
            push_u64(out, *from);
            push_u64(out, *to);
            push_u64(out, *seq);
            out.push(u8::from(*ok));
            out.push(u8::from(*delivered));
            push_str(out, data);
        }
        WalRecord::IpcRecv {
            pid,
            seq,
            from,
            data,
            ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *seq);
            push_u64(out, *from);
            push_str(out, data);
        }
        WalRecord::Lookup {
            pid, seq, found, ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *seq);
            push_opt_u64(out, *found);
        }
        WalRecord::NowEffect { pid, seq, t, .. } => {
            push_u64(out, *pid);
            push_u64(out, *seq);
            push_u64(out, t.as_nanos());
        }
        WalRecord::PredEffect {
            pid, seq, dists, ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *seq);
            push_u32(out, dists.len() as u32);
            for d in dists {
                let entries = d.entries();
                push_u32(out, entries.len() as u32);
                for &(tok, p) in entries {
                    push_u32(out, tok);
                    push_u64(out, p.to_bits());
                }
                push_u64(out, d.tail_mass().to_bits());
                push_u32(out, d.tail_tokens());
            }
        }
        WalRecord::Checkpoint {
            next_pid,
            next_tid,
            breakers,
            ..
        } => {
            push_u64(out, *next_pid);
            push_u64(out, *next_tid);
            push_u32(out, breakers.len() as u32);
            for (tool, state) in breakers {
                push_str(out, tool);
                match state {
                    BreakerStateView::Closed {
                        consecutive_failures,
                    } => {
                        out.push(0);
                        push_u64(out, u64::from(*consecutive_failures));
                    }
                    BreakerStateView::Open { until } => {
                        out.push(1);
                        push_u64(out, until.as_nanos());
                    }
                    BreakerStateView::HalfOpen => {
                        out.push(2);
                        push_u64(out, 0);
                    }
                }
            }
        }
        WalRecord::ProcSched {
            pid,
            main_tid,
            arrival,
            durable,
            name,
            args,
            limits,
            ..
        } => {
            push_u64(out, *pid);
            push_u64(out, *main_tid);
            push_u64(out, arrival.as_nanos());
            out.push(u8::from(*durable));
            push_str(out, name);
            push_str(out, args);
            encode_limits(out, limits);
        }
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Option<WalRecord> {
    let mut c = Cursor::new(payload);
    let at = SimTime::from_nanos(c.u64()?);
    let rec = match tag {
        TAG_PROC_SPAWN => WalRecord::ProcSpawn {
            at,
            pid: c.u64()?,
            main_tid: c.u64()?,
            durable: c.u8()? != 0,
            name: c.str()?,
            args: c.str()?,
            limits: decode_limits(&mut c)?,
        },
        TAG_PROC_EXIT => {
            let pid = c.u64()?;
            let status = match c.u8()? {
                0 => ExitStatus::Ok,
                1 => ExitStatus::Crashed,
                2 => ExitStatus::Error(decode_sys_error(&mut c)?),
                _ => return None,
            };
            WalRecord::ProcExit {
                at,
                pid,
                status,
                output: c.str()?,
                usage: ProcessUsage {
                    syscalls: c.u64()?,
                    pred_calls: c.u64()?,
                    pred_tokens: c.u64()?,
                    emitted_tokens: c.u64()?,
                    tool_calls: c.u64()?,
                    threads_spawned: c.u32()?,
                },
            }
        }
        TAG_TOOL_EFFECT => {
            let pid = c.u64()?;
            let seq = c.u64()?;
            let latency_ns = c.u64()?;
            let fired = c.u8()? != 0;
            let result = match c.u8()? {
                0 => Ok(c.str()?),
                1 => Err(decode_sys_error(&mut c)?),
                _ => return None,
            };
            WalRecord::ToolEffect {
                at,
                pid,
                seq,
                latency_ns,
                fired,
                result,
            }
        }
        TAG_IPC_SEND => WalRecord::IpcSend {
            at,
            from: c.u64()?,
            to: c.u64()?,
            seq: c.u64()?,
            ok: c.u8()? != 0,
            delivered: c.u8()? != 0,
            data: c.str()?,
        },
        TAG_IPC_RECV => WalRecord::IpcRecv {
            at,
            pid: c.u64()?,
            seq: c.u64()?,
            from: c.u64()?,
            data: c.str()?,
        },
        TAG_LOOKUP => WalRecord::Lookup {
            at,
            pid: c.u64()?,
            seq: c.u64()?,
            found: c.opt_u64()?,
        },
        TAG_NOW => WalRecord::NowEffect {
            at,
            pid: c.u64()?,
            seq: c.u64()?,
            t: SimTime::from_nanos(c.u64()?),
        },
        TAG_PRED_EFFECT => {
            let pid = c.u64()?;
            let seq = c.u64()?;
            let n = c.u32()? as usize;
            let mut dists = Vec::with_capacity(n.min(payload.len()));
            for _ in 0..n {
                let ne = c.u32()? as usize;
                let mut entries = Vec::with_capacity(ne.min(payload.len()));
                for _ in 0..ne {
                    let tok = c.u32()?;
                    let p = f64::from_bits(c.u64()?);
                    if !p.is_finite() || p < 0.0 {
                        return None;
                    }
                    entries.push((tok, p));
                }
                let tail_mass = f64::from_bits(c.u64()?);
                let tail_tokens = c.u32()?;
                if entries.is_empty() || !tail_mass.is_finite() || tail_mass < 0.0 {
                    return None;
                }
                let total: f64 = entries.iter().map(|e| e.1).sum::<f64>() + tail_mass;
                if (total - 1.0).abs() >= 1e-6 {
                    return None;
                }
                for w in entries.windows(2) {
                    if !(w[0].1 > w[1].1 || (w[0].1 == w[1].1 && w[0].0 < w[1].0)) {
                        return None;
                    }
                }
                dists.push(Dist::from_normalized_parts(entries, tail_mass, tail_tokens));
            }
            WalRecord::PredEffect {
                at,
                pid,
                seq,
                dists,
            }
        }
        TAG_CHECKPOINT => {
            let next_pid = c.u64()?;
            let next_tid = c.u64()?;
            let n = c.u32()? as usize;
            let mut breakers = Vec::with_capacity(n.min(payload.len()));
            for _ in 0..n {
                let tool = c.str()?;
                let kind = c.u8()?;
                let value = c.u64()?;
                let state = match kind {
                    0 => BreakerStateView::Closed {
                        consecutive_failures: value as u32,
                    },
                    1 => BreakerStateView::Open {
                        until: SimTime::from_nanos(value),
                    },
                    2 => BreakerStateView::HalfOpen,
                    _ => return None,
                };
                breakers.push((tool, state));
            }
            WalRecord::Checkpoint {
                at,
                next_pid,
                next_tid,
                breakers,
            }
        }
        TAG_PROC_SCHED => WalRecord::ProcSched {
            at,
            pid: c.u64()?,
            main_tid: c.u64()?,
            arrival: SimTime::from_nanos(c.u64()?),
            durable: c.u8()? != 0,
            name: c.str()?,
            args: c.str()?,
            limits: decode_limits(&mut c)?,
        },
        _ => return None,
    };
    c.done().then_some(rec)
}

/// Human-readable name for a WAL frame tag (unknown tags are possible in
/// logs written by newer kernels).
pub fn tag_name(tag: u8) -> &'static str {
    match tag {
        TAG_PROC_SPAWN => "proc_spawn",
        TAG_PROC_EXIT => "proc_exit",
        TAG_TOOL_EFFECT => "tool_effect",
        TAG_IPC_SEND => "ipc_send",
        TAG_IPC_RECV => "ipc_recv",
        TAG_LOOKUP => "lookup",
        TAG_NOW => "now",
        TAG_PRED_EFFECT => "pred_effect",
        TAG_CHECKPOINT => "checkpoint",
        TAG_PROC_SCHED => "proc_sched",
        _ => "unknown",
    }
}

/// Parses WAL bytes and counts valid frames per tag — the journal-growth
/// observability hook `exp_recovery` reports, answering "what is this log
/// made of" without replaying it.
pub fn frame_counts(bytes: &[u8]) -> Result<BTreeMap<&'static str, u64>, WalError> {
    let (_seed, records, _len, _torn) = read_wal(bytes)?;
    let mut counts = BTreeMap::new();
    for rec in &records {
        *counts.entry(tag_name(record_tag(rec))).or_insert(0u64) += 1;
    }
    Ok(counts)
}

/// Encodes one record as a complete SYMJ frame.
pub(crate) fn encode_frame(rec: &WalRecord) -> Vec<u8> {
    let mut payload = Vec::new();
    encode_payload(rec, &mut payload);
    let mut frame = Vec::with_capacity(payload.len() + 9);
    append_frame(&mut frame, record_tag(rec), &payload);
    frame
}

fn header_bytes(seed: u64) -> Vec<u8> {
    let mut buf = Vec::with_capacity(HEADER_LEN);
    buf.extend_from_slice(&WAL_MAGIC);
    push_u32(&mut buf, WAL_VERSION);
    push_u64(&mut buf, seed);
    let crc = fnv1a(&buf);
    push_u32(&mut buf, crc);
    buf
}

/// Parses WAL bytes: the writing kernel's seed, the longest valid record
/// prefix, the byte length of that prefix (header included, for torn-tail
/// truncation on reopen), and whether a torn tail (or an undecodable
/// frame) was cut. An unknown tag or malformed payload ends the valid
/// prefix exactly like a torn frame — forward-compatible and crash-safe
/// in the same code path.
pub(crate) fn read_wal(bytes: &[u8]) -> Result<(u64, Vec<WalRecord>, u64, bool), WalError> {
    if bytes.len() < HEADER_LEN {
        return Err(WalError::Unreadable);
    }
    if bytes[..4] != WAL_MAGIC {
        return Err(WalError::Incompatible);
    }
    let version = u32::from_le_bytes(bytes[4..8].try_into().unwrap_or([0; 4]));
    if version != WAL_VERSION {
        return Err(WalError::Incompatible);
    }
    let seed = u64::from_le_bytes(bytes[8..16].try_into().unwrap_or([0; 8]));
    let stored_crc = u32::from_le_bytes(bytes[16..20].try_into().unwrap_or([0; 4]));
    if stored_crc != fnv1a(&bytes[..HEADER_LEN - 4]) {
        return Err(WalError::Unreadable);
    }
    let (frames, mut torn) = read_frames(&bytes[HEADER_LEN..]);
    let mut records = Vec::with_capacity(frames.len());
    let mut valid_len = HEADER_LEN as u64;
    for (tag, payload) in frames {
        match decode_payload(tag, &payload) {
            Some(rec) => {
                // Frame layout: tag u8 + len u32 + payload + crc u32.
                valid_len += 9 + payload.len() as u64;
                records.push(rec);
            }
            None => {
                torn = true;
                break;
            }
        }
    }
    Ok((seed, records, valid_len, torn))
}

// ---- writer ----------------------------------------------------------------

/// Appends frames to the WAL file. Synchronous frames are flushed as they
/// are written; buffered pred frames accumulate in [`WalState::pred_buf`]
/// until a checkpoint.
#[derive(Debug)]
pub(crate) struct WalState {
    file: std::fs::File,
    /// Total bytes durably appended (header included).
    pub(crate) bytes_written: u64,
    /// Frames durably appended.
    pub(crate) frames_written: u64,
    /// Encoded pred frames awaiting the next checkpoint.
    pub(crate) pred_buf: Vec<u8>,
    /// Pred frames currently buffered.
    pub(crate) buffered_frames: u64,
    /// Checkpoint spacing on the virtual clock.
    pub(crate) checkpoint_every: SimDuration,
    /// Next checkpoint due at this virtual time.
    pub(crate) next_checkpoint_at: SimTime,
}

impl WalState {
    /// Creates (truncating) the WAL for a fresh kernel.
    pub(crate) fn create(config: &WalConfig, seed: u64) -> std::io::Result<Self> {
        let mut file = std::fs::File::create(&config.path)?;
        let header = header_bytes(seed);
        file.write_all(&header)?;
        file.flush()?;
        // A zero interval would make the checkpoint catch-up loop spin.
        let every = config.checkpoint_every.max(SimDuration::from_nanos(1));
        Ok(WalState {
            file,
            bytes_written: header.len() as u64,
            frames_written: 0,
            pred_buf: Vec::new(),
            buffered_frames: 0,
            checkpoint_every: every,
            next_checkpoint_at: SimTime::ZERO + every,
        })
    }

    /// Opens the WAL for appending after recovery. `durable_len` is how
    /// many bytes of the existing file were valid; a torn tail past it is
    /// truncated so new frames land on a clean boundary.
    pub(crate) fn open_append(
        config: &WalConfig,
        durable_len: u64,
        clock: SimTime,
    ) -> std::io::Result<Self> {
        let file = std::fs::OpenOptions::new().write(true).open(&config.path)?;
        file.set_len(durable_len)?;
        let mut file = file;
        use std::io::Seek;
        file.seek(std::io::SeekFrom::End(0))?;
        let every = config.checkpoint_every.max(SimDuration::from_nanos(1));
        Ok(WalState {
            file,
            bytes_written: durable_len,
            frames_written: 0,
            pred_buf: Vec::new(),
            buffered_frames: 0,
            checkpoint_every: every,
            next_checkpoint_at: clock + every,
        })
    }

    /// Appends one synchronous frame and flushes it.
    pub(crate) fn append_sync(&mut self, rec: &WalRecord) -> std::io::Result<()> {
        let frame = encode_frame(rec);
        self.file.write_all(&frame)?;
        self.file.flush()?;
        self.bytes_written += frame.len() as u64;
        self.frames_written += 1;
        Ok(())
    }

    /// Buffers one pred frame for the next checkpoint.
    pub(crate) fn buffer_pred(&mut self, rec: &WalRecord) {
        self.pred_buf.extend_from_slice(&encode_frame(rec));
        self.buffered_frames += 1;
    }

    /// Flushes the pred buffer and the checkpoint frame. Returns the
    /// number of frames made durable.
    pub(crate) fn checkpoint(&mut self, rec: &WalRecord) -> std::io::Result<u64> {
        let flushed = self.buffered_frames;
        if !self.pred_buf.is_empty() {
            self.file.write_all(&self.pred_buf)?;
            self.bytes_written += self.pred_buf.len() as u64;
            self.frames_written += self.buffered_frames;
            self.pred_buf.clear();
            self.buffered_frames = 0;
        }
        self.append_sync(rec)?;
        Ok(flushed + 1)
    }
}

// ---- replay state ----------------------------------------------------------

/// One journalled process, assembled from its spawn (and maybe exit)
/// frames.
#[derive(Debug, Clone)]
pub(crate) struct ReplayProc {
    pub(crate) name: String,
    pub(crate) args: String,
    pub(crate) spawned_at: SimTime,
    pub(crate) main_tid: u64,
    pub(crate) limits: Limits,
    pub(crate) durable: bool,
    pub(crate) exit: Option<ReplayExit>,
}

/// A journalled process exit.
#[derive(Debug, Clone)]
pub(crate) struct ReplayExit {
    pub(crate) at: SimTime,
    pub(crate) status: ExitStatus,
    pub(crate) output: String,
    pub(crate) usage: ProcessUsage,
}

/// A program journalled as scheduled but (per the log) never started.
#[derive(Debug, Clone)]
pub(crate) struct ReplaySched {
    pub(crate) name: String,
    pub(crate) args: String,
    pub(crate) main_tid: u64,
    pub(crate) arrival: SimTime,
    pub(crate) limits: Limits,
    pub(crate) durable: bool,
}

/// A journalled whole-tool-call outcome.
#[derive(Debug, Clone)]
pub(crate) struct ToolOutcomeRec {
    pub(crate) latency_ns: u64,
    pub(crate) result: Result<String, SysError>,
}

/// A journalled IPC send, kept in journal (= delivery) order for mailbox
/// reconstruction.
#[derive(Debug, Clone)]
pub(crate) struct SendRec {
    pub(crate) to: u64,
    pub(crate) delivered: bool,
    pub(crate) data: String,
    pub(crate) from: u64,
}

/// Everything recovery needs, keyed for O(log n) replay hits.
#[derive(Debug, Default)]
pub(crate) struct Replay {
    pub(crate) clock: SimTime,
    pub(crate) next_pid: u64,
    pub(crate) next_tid: u64,
    pub(crate) procs: BTreeMap<u64, ReplayProc>,
    /// Scheduled-but-never-started programs (no `ProcSpawn` frame).
    pub(crate) scheduled: BTreeMap<u64, ReplaySched>,
    pub(crate) tools: BTreeMap<(u64, u64), ToolOutcomeRec>,
    /// `(from, seq)` → whether the send succeeded (suppresses re-sends).
    pub(crate) send_results: BTreeMap<(u64, u64), bool>,
    /// Successful sends in journal order (mailbox reconstruction).
    pub(crate) sends: Vec<SendRec>,
    pub(crate) recvs: BTreeMap<(u64, u64), (u64, String)>,
    pub(crate) lookups: BTreeMap<(u64, u64), Option<u64>>,
    pub(crate) nows: BTreeMap<(u64, u64), SimTime>,
    pub(crate) preds: BTreeMap<(u64, u64), Vec<Dist>>,
    pub(crate) breakers: Vec<(String, BreakerStateView)>,
    pub(crate) frames: u64,
    pub(crate) wal_bytes: u64,
    pub(crate) torn: bool,
}

impl Replay {
    /// Count of journalled recvs per receiver, used to skip the consumed
    /// prefix when rebuilding mailboxes.
    pub(crate) fn recv_counts(&self) -> BTreeMap<u64, usize> {
        let mut counts: BTreeMap<u64, usize> = BTreeMap::new();
        for &(pid, _) in self.recvs.keys() {
            *counts.entry(pid).or_default() += 1;
        }
        counts
    }
}

/// Folds a record stream into replay maps. Re-journalled frames from a
/// previous recovery are idempotent: later frames for the same key simply
/// overwrite identical content.
pub(crate) fn build_replay(records: Vec<WalRecord>, wal_bytes: u64, torn: bool) -> Replay {
    let mut r = Replay {
        wal_bytes,
        torn,
        frames: records.len() as u64,
        ..Replay::default()
    };
    let mut send_keys_seen: BTreeSet<(u64, u64)> = BTreeSet::new();
    for rec in records {
        r.clock = r.clock.max(rec.at());
        match rec {
            WalRecord::ProcSpawn {
                at,
                pid,
                main_tid,
                durable,
                name,
                args,
                limits,
            } => {
                r.next_pid = r.next_pid.max(pid + 1);
                r.next_tid = r.next_tid.max(main_tid + 1);
                r.procs.entry(pid).or_insert(ReplayProc {
                    name,
                    args,
                    spawned_at: at,
                    main_tid,
                    limits,
                    durable,
                    exit: None,
                });
            }
            WalRecord::ProcExit {
                at,
                pid,
                status,
                output,
                usage,
            } => {
                if let Some(p) = r.procs.get_mut(&pid) {
                    p.exit = Some(ReplayExit {
                        at,
                        status,
                        output,
                        usage,
                    });
                }
            }
            WalRecord::ToolEffect {
                pid,
                seq,
                latency_ns,
                result,
                ..
            } => {
                r.tools
                    .insert((pid, seq), ToolOutcomeRec { latency_ns, result });
            }
            WalRecord::IpcSend {
                from,
                to,
                seq,
                ok,
                delivered,
                data,
                ..
            } => {
                r.send_results.insert((from, seq), ok);
                // Journal order is delivery order; only first sight counts
                // (a recovered run re-journals nothing, but belt and braces).
                if ok && delivered && send_keys_seen.insert((from, seq)) {
                    r.sends.push(SendRec {
                        to,
                        delivered,
                        data,
                        from,
                    });
                }
            }
            WalRecord::IpcRecv {
                pid,
                seq,
                from,
                data,
                ..
            } => {
                r.recvs.insert((pid, seq), (from, data));
            }
            WalRecord::Lookup {
                pid, seq, found, ..
            } => {
                r.lookups.insert((pid, seq), found);
            }
            WalRecord::NowEffect { pid, seq, t, .. } => {
                r.nows.insert((pid, seq), t);
            }
            WalRecord::PredEffect {
                pid, seq, dists, ..
            } => {
                r.preds.insert((pid, seq), dists);
            }
            WalRecord::Checkpoint {
                next_pid,
                next_tid,
                breakers,
                ..
            } => {
                r.next_pid = r.next_pid.max(next_pid);
                r.next_tid = r.next_tid.max(next_tid);
                r.breakers = breakers;
            }
            WalRecord::ProcSched {
                pid,
                main_tid,
                arrival,
                durable,
                name,
                args,
                limits,
                ..
            } => {
                r.next_pid = r.next_pid.max(pid + 1);
                r.next_tid = r.next_tid.max(main_tid + 1);
                r.scheduled.entry(pid).or_insert(ReplaySched {
                    name,
                    args,
                    main_tid,
                    arrival,
                    limits,
                    durable,
                });
            }
        }
    }
    // A spawn frame supersedes the schedule frame for the same pid.
    let started: Vec<u64> = r
        .scheduled
        .keys()
        .filter(|p| r.procs.contains_key(p))
        .copied()
        .collect();
    for pid in started {
        r.scheduled.remove(&pid);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_records() -> Vec<WalRecord> {
        vec![
            WalRecord::ProcSpawn {
                at: SimTime::from_nanos(10),
                pid: 1,
                main_tid: 7,
                durable: true,
                name: "agent0".into(),
                args: "x=1".into(),
                limits: Limits {
                    max_syscalls: Some(100),
                    deadline: Some(SimDuration::from_millis(5)),
                    ..Limits::default()
                },
            },
            WalRecord::ToolEffect {
                at: SimTime::from_nanos(20),
                pid: 1,
                seq: 0,
                latency_ns: 1_000_000,
                fired: true,
                result: Ok("searched: q".into()),
            },
            WalRecord::ToolEffect {
                at: SimTime::from_nanos(25),
                pid: 1,
                seq: 1,
                latency_ns: 500,
                fired: false,
                result: Err(SysError::Timeout),
            },
            WalRecord::IpcSend {
                at: SimTime::from_nanos(30),
                from: 1,
                to: 2,
                seq: 0,
                ok: true,
                delivered: true,
                data: "hello".into(),
            },
            WalRecord::IpcRecv {
                at: SimTime::from_nanos(31),
                pid: 2,
                seq: 0,
                from: 1,
                data: "hello".into(),
            },
            WalRecord::Lookup {
                at: SimTime::from_nanos(32),
                pid: 1,
                seq: 0,
                found: Some(2),
            },
            WalRecord::NowEffect {
                at: SimTime::from_nanos(33),
                pid: 1,
                seq: 0,
                t: SimTime::from_nanos(33),
            },
            WalRecord::PredEffect {
                at: SimTime::from_nanos(40),
                pid: 1,
                seq: 0,
                dists: vec![Dist::from_weights(vec![(3, 2.0), (9, 1.0)], 1.0, 64)],
            },
            WalRecord::Checkpoint {
                at: SimTime::from_nanos(50),
                next_pid: 3,
                next_tid: 9,
                breakers: vec![
                    (
                        "search".into(),
                        BreakerStateView::Closed {
                            consecutive_failures: 2,
                        },
                    ),
                    (
                        "flaky".into(),
                        BreakerStateView::Open {
                            until: SimTime::from_nanos(99),
                        },
                    ),
                ],
            },
            WalRecord::ProcExit {
                at: SimTime::from_nanos(60),
                pid: 1,
                status: ExitStatus::Error(SysError::Fault("tool")),
                output: "partial".into(),
                usage: ProcessUsage {
                    syscalls: 12,
                    pred_calls: 1,
                    pred_tokens: 4,
                    emitted_tokens: 2,
                    tool_calls: 2,
                    threads_spawned: 1,
                },
            },
            WalRecord::ProcSched {
                at: SimTime::from_nanos(61),
                pid: 4,
                main_tid: 11,
                arrival: SimTime::from_nanos(900),
                durable: true,
                name: "late-agent".into(),
                args: "y=2".into(),
                limits: Limits::default(),
            },
        ]
    }

    fn wal_bytes(records: &[WalRecord], seed: u64) -> Vec<u8> {
        let mut buf = header_bytes(seed);
        for r in records {
            buf.extend_from_slice(&encode_frame(r));
        }
        buf
    }

    #[test]
    fn round_trips_every_record_type() {
        let recs = sample_records();
        let bytes = wal_bytes(&recs, 42);
        let (seed, back, valid_len, torn) = read_wal(&bytes).unwrap();
        assert_eq!(seed, 42);
        assert_eq!(valid_len, bytes.len() as u64);
        assert!(!torn);
        assert_eq!(back.len(), recs.len());
        for (a, b) in recs.iter().zip(&back) {
            match (a, b) {
                // Dist has no PartialEq on purpose-equal float compare; the
                // pred record is checked field-by-field below.
                (WalRecord::PredEffect { .. }, WalRecord::PredEffect { .. }) => {}
                _ => assert_eq!(a, b),
            }
        }
        let (WalRecord::PredEffect { dists: orig, .. }, WalRecord::PredEffect { dists: got, .. }) =
            (&recs[7], &back[7])
        else {
            panic!("expected pred records at index 7");
        };
        assert_eq!(orig.len(), got.len());
        assert_eq!(orig[0].entries(), got[0].entries());
        assert_eq!(orig[0].tail_mass().to_bits(), got[0].tail_mass().to_bits());
        assert_eq!(orig[0].tail_tokens(), got[0].tail_tokens());
    }

    #[test]
    fn truncation_at_every_byte_keeps_valid_prefix() {
        let recs = sample_records();
        let bytes = wal_bytes(&recs, 7);
        // Frame boundaries: cutting exactly there is a clean (un-torn) log.
        let mut boundaries = vec![HEADER_LEN];
        let mut off = HEADER_LEN;
        for r in &recs {
            off += encode_frame(r).len();
            boundaries.push(off);
        }
        for cut in HEADER_LEN..bytes.len() {
            let (seed, prefix, valid_len, torn) = read_wal(&bytes[..cut]).unwrap();
            assert_eq!(seed, 7);
            let on_boundary = boundaries.contains(&cut);
            assert_eq!(torn, !on_boundary, "cut at {cut}");
            let whole = boundaries.iter().filter(|&&b| b <= cut).count() - 1;
            assert_eq!(prefix.len(), whole, "cut at {cut}");
            let last_boundary = boundaries.iter().filter(|&&b| b <= cut).max().unwrap();
            assert_eq!(valid_len, *last_boundary as u64, "cut at {cut}");
        }
        // Cuts inside the header are unreadable, not torn.
        for cut in 0..HEADER_LEN {
            assert_eq!(read_wal(&bytes[..cut]), Err(WalError::Unreadable));
        }
    }

    #[test]
    fn header_errors_are_typed() {
        let bytes = wal_bytes(&[], 1);
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(read_wal(&wrong_magic), Err(WalError::Incompatible));
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(read_wal(&wrong_version), Err(WalError::Incompatible));
        let mut bad_crc = bytes;
        bad_crc[9] ^= 0xff;
        assert_eq!(read_wal(&bad_crc), Err(WalError::Unreadable));
    }

    #[test]
    fn unknown_tag_truncates_like_a_tear() {
        let mut bytes = wal_bytes(&sample_records()[..2], 3);
        append_frame(&mut bytes, 250, b"future record type");
        let (_, records, valid_len, torn) = read_wal(&bytes).unwrap();
        assert_eq!(records.len(), 2);
        assert!(valid_len < bytes.len() as u64);
        assert!(torn);
    }

    #[test]
    fn replay_maps_key_by_pid_and_seq() {
        let recs = sample_records();
        let bytes = wal_bytes(&recs, 5);
        let (_, records, _, torn) = read_wal(&bytes).unwrap();
        let r = build_replay(records, bytes.len() as u64, torn);
        assert_eq!(r.clock, SimTime::from_nanos(61));
        assert_eq!(r.next_pid, 5);
        assert_eq!(r.procs.len(), 1);
        assert!(r.procs[&1].exit.is_some());
        assert!(r.tools.contains_key(&(1, 0)));
        assert!(matches!(r.tools[&(1, 1)].result, Err(SysError::Timeout)));
        assert_eq!(r.send_results[&(1, 0)], true);
        assert_eq!(r.sends.len(), 1);
        assert_eq!(r.recvs[&(2, 0)], (1, "hello".into()));
        assert_eq!(r.lookups[&(1, 0)], Some(2));
        assert_eq!(r.nows[&(1, 0)], SimTime::from_nanos(33));
        assert_eq!(r.preds[&(1, 0)].len(), 1);
        assert_eq!(r.breakers.len(), 2);
        assert_eq!(r.recv_counts()[&2], 1);
        assert_eq!(r.scheduled.len(), 1);
        assert_eq!(r.scheduled[&4].arrival, SimTime::from_nanos(900));
        assert_eq!(r.scheduled[&4].main_tid, 11);
        assert_eq!(r.next_tid, 12, "sched main tid raises the tid floor");
    }

    #[test]
    fn sys_error_round_trip_covers_static_payloads() {
        let errors = [
            SysError::Kv(KvError::QuotaExceeded),
            SysError::NoSuchTool("webs".into()),
            SysError::ToolFailed("500".into()),
            SysError::Fault("gpu.pred"),
            SysError::LimitExceeded("pred_tokens"),
            SysError::Internal("some invariant"),
            SysError::Busy,
        ];
        for e in errors {
            let mut buf = Vec::new();
            encode_sys_error(&mut buf, &e);
            let mut c = Cursor::new(&buf);
            assert_eq!(decode_sys_error(&mut c).unwrap(), e);
            assert!(c.done());
        }
    }

    #[test]
    fn wal_state_buffers_preds_until_checkpoint() {
        let dir = std::env::temp_dir().join(format!("symwal-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("unit.wal");
        let cfg = WalConfig::new(&path);
        let mut w = WalState::create(&cfg, 9).unwrap();
        w.append_sync(&sample_records()[0]).unwrap();
        w.buffer_pred(&sample_records()[7]);
        assert_eq!(w.buffered_frames, 1);
        let on_disk = std::fs::read(&path).unwrap();
        let (_, recs, _, _) = read_wal(&on_disk).unwrap();
        assert_eq!(recs.len(), 1, "pred not durable before checkpoint");
        let flushed = w
            .checkpoint(&WalRecord::Checkpoint {
                at: SimTime::from_nanos(99),
                next_pid: 2,
                next_tid: 2,
                breakers: vec![],
            })
            .unwrap();
        assert_eq!(flushed, 2);
        let on_disk = std::fs::read(&path).unwrap();
        let (_, recs, _, torn) = read_wal(&on_disk).unwrap();
        assert!(!torn);
        assert_eq!(recs.len(), 3, "spawn + pred + checkpoint");
        std::fs::remove_dir_all(&dir).ok();
    }
}
