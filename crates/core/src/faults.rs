//! Deterministic fault injection (§6 "reliability" — chaos testing the
//! kernel's containment story).
//!
//! A [`FaultPlan`] names per-site fault rates; a [`FaultInjector`] draws
//! from its **own** seeded RNG stream, independent of the kernel's
//! workload RNG. Two properties make the injection deterministic and
//! non-invasive:
//!
//! - **Seed isolation.** The injector forks its stream from the kernel seed
//!   with a fixed salt, so enabling faults never perturbs workload draws
//!   (tool latencies, model sampling) for the *surviving* operations.
//! - **Rate gating.** A site whose rate is `0.0` makes *no* RNG draw at
//!   all, so an all-zero plan is byte-identical to no plan — asserted by
//!   the chaos suite.
//!
//! Sites are drawn in kernel event order on the virtual clock, so a given
//! `(seed, plan, workload)` triple always faults the same operations.

use symphony_sim::Rng;
use symphony_telemetry::{Counter, MetricsRegistry};

/// Salt XORed into the kernel seed for the injector's RNG stream.
const FAULT_STREAM_SALT: u64 = 0x000F_A017_5EED_u64;

/// What happens to a tool-call attempt selected for fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToolFaultKind {
    /// The attempt fails after its sampled latency (a 5xx, say).
    Fail,
    /// The attempt hangs for `stall_factor ×` its sampled latency; with a
    /// per-call timeout this converts to [`crate::SysError::Timeout`],
    /// without one it just runs long.
    Hang,
}

/// Per-site fault rates, all in `[0, 1]` per operation. `default()` is
/// all-zero: no faults, no RNG draws.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a tool-call attempt faults.
    pub tool_fault_rate: f64,
    /// Of faulted attempts, the fraction that *hang* rather than fail.
    pub tool_hang_fraction: f64,
    /// Latency multiplier for hung attempts.
    pub tool_stall_factor: f64,
    /// Probability one `pred` request in a batch transiently faults (work
    /// lost, no KV appended, retryable).
    pub pred_fault_rate: f64,
    /// Probability a KV swap-in (explicit or offload-restore) fails.
    pub swap_in_fault_rate: f64,
    /// Probability an IPC `send_msg` is silently dropped.
    pub ipc_drop_rate: f64,
    /// Probability a KV journal write is torn mid-record (crash during
    /// persistence; the tail record is truncated).
    pub journal_write_fault_rate: f64,
}

impl FaultPlan {
    /// No faults anywhere (the kernel default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when every rate is zero — the injector then never draws.
    pub fn is_none(&self) -> bool {
        self.tool_fault_rate == 0.0
            && self.pred_fault_rate == 0.0
            && self.swap_in_fault_rate == 0.0
            && self.ipc_drop_rate == 0.0
            && self.journal_write_fault_rate == 0.0
    }

    /// A plan faulting only tool calls at `rate` (all failures, no hangs).
    pub fn tools_only(rate: f64) -> Self {
        FaultPlan {
            tool_fault_rate: rate,
            tool_stall_factor: 10.0,
            ..FaultPlan::default()
        }
    }
}

/// Counters of injected faults, included in kernel stats so two same-seed
/// runs can be compared field-for-field. A point-in-time snapshot of the
/// injector's counters in the unified metrics registry (`faults.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Tool attempts forced to fail.
    pub tool_failures: u64,
    /// Tool attempts forced to hang.
    pub tool_hangs: u64,
    /// `pred` requests transiently faulted.
    pub pred_faults: u64,
    /// KV swap-ins failed.
    pub swap_in_failures: u64,
    /// IPC messages dropped.
    pub ipc_drops: u64,
    /// KV journal writes torn mid-record.
    pub journal_write_failures: u64,
}

/// Live counter handles into the metrics registry backing [`FaultStats`].
#[derive(Debug, Clone)]
struct FaultCounters {
    tool_failures: Counter,
    tool_hangs: Counter,
    pred_faults: Counter,
    swap_in_failures: Counter,
    ipc_drops: Counter,
    journal_write_failures: Counter,
}

impl FaultCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        FaultCounters {
            tool_failures: registry.counter("faults.tool_failures"),
            tool_hangs: registry.counter("faults.tool_hangs"),
            pred_faults: registry.counter("faults.pred_faults"),
            swap_in_failures: registry.counter("faults.swap_in_failures"),
            ipc_drops: registry.counter("faults.ipc_drops"),
            journal_write_failures: registry.counter("faults.journal_write_failures"),
        }
    }
}

/// Draws fault decisions from a dedicated RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Builds an injector whose stream is derived from the kernel seed,
    /// with a private metrics registry.
    pub fn new(plan: FaultPlan, kernel_seed: u64) -> Self {
        FaultInjector::with_registry(plan, kernel_seed, &MetricsRegistry::new())
    }

    /// Builds an injector whose counters live in `registry` under the
    /// `faults.*` names.
    pub fn with_registry(plan: FaultPlan, kernel_seed: u64, registry: &MetricsRegistry) -> Self {
        FaultInjector {
            plan,
            rng: Rng::new(kernel_seed ^ FAULT_STREAM_SALT),
            counters: FaultCounters::register(registry),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far (a snapshot of the `faults.*` counters).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            tool_failures: self.counters.tool_failures.get(),
            tool_hangs: self.counters.tool_hangs.get(),
            pred_faults: self.counters.pred_faults.get(),
            swap_in_failures: self.counters.swap_in_failures.get(),
            ipc_drops: self.counters.ipc_drops.get(),
            journal_write_failures: self.counters.journal_write_failures.get(),
        }
    }

    /// Decides the fate of one tool-call attempt. `None` = run normally.
    pub fn tool_attempt(&mut self) -> Option<ToolFaultKind> {
        if self.plan.tool_fault_rate == 0.0 {
            return None;
        }
        if self.rng.next_f64() >= self.plan.tool_fault_rate {
            return None;
        }
        // Second draw picks the flavour; gated so hang_fraction == 0 costs
        // one draw per *faulted* attempt only.
        let hang = self.plan.tool_hang_fraction > 0.0
            && self.rng.next_f64() < self.plan.tool_hang_fraction;
        if hang {
            self.counters.tool_hangs.inc();
            Some(ToolFaultKind::Hang)
        } else {
            self.counters.tool_failures.inc();
            Some(ToolFaultKind::Fail)
        }
    }

    /// Stall multiplier applied to hung attempts.
    pub fn stall_factor(&self) -> f64 {
        if self.plan.tool_stall_factor > 1.0 {
            self.plan.tool_stall_factor
        } else {
            10.0
        }
    }

    /// Decides whether one `pred` request in a batch faults.
    pub fn pred_request(&mut self) -> bool {
        if self.plan.pred_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.pred_fault_rate;
        if hit {
            self.counters.pred_faults.inc();
        }
        hit
    }

    /// Decides whether one KV swap-in fails.
    pub fn swap_in(&mut self) -> bool {
        if self.plan.swap_in_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.swap_in_fault_rate;
        if hit {
            self.counters.swap_in_failures.inc();
        }
        hit
    }

    /// Decides whether one KV journal write is torn mid-record.
    pub fn journal_write(&mut self) -> bool {
        if self.plan.journal_write_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.journal_write_fault_rate;
        if hit {
            self.counters.journal_write_failures.inc();
        }
        hit
    }

    /// Decides whether one IPC message is dropped.
    pub fn ipc_send(&mut self) -> bool {
        if self.plan.ipc_drop_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.ipc_drop_rate;
        if hit {
            self.counters.ipc_drops.inc();
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_draws_or_faults() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42);
        for _ in 0..100 {
            assert!(inj.tool_attempt().is_none());
            assert!(!inj.pred_request());
            assert!(!inj.swap_in());
            assert!(!inj.ipc_send());
            assert!(!inj.journal_write());
        }
        assert_eq!(inj.stats(), FaultStats::default());
        // No draws consumed: the stream equals a fresh one.
        let mut fresh = Rng::new(42 ^ FAULT_STREAM_SALT);
        assert_eq!(inj.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn rates_are_respected_statistically() {
        let plan = FaultPlan {
            tool_fault_rate: 0.3,
            pred_fault_rate: 0.1,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 7);
        let mut tool_hits = 0;
        let mut pred_hits = 0;
        for _ in 0..10_000 {
            if inj.tool_attempt().is_some() {
                tool_hits += 1;
            }
            if inj.pred_request() {
                pred_hits += 1;
            }
        }
        assert!((2700..3300).contains(&tool_hits), "tool_hits={tool_hits}");
        assert!((800..1200).contains(&pred_hits), "pred_hits={pred_hits}");
        assert_eq!(inj.stats().tool_failures, tool_hits);
        assert_eq!(inj.stats().pred_faults, pred_hits);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan {
            tool_fault_rate: 0.5,
            tool_hang_fraction: 0.4,
            swap_in_fault_rate: 0.2,
            ipc_drop_rate: 0.2,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan, 99);
        let mut b = FaultInjector::new(plan, 99);
        for _ in 0..1000 {
            assert_eq!(a.tool_attempt(), b.tool_attempt());
            assert_eq!(a.swap_in(), b.swap_in());
            assert_eq!(a.ipc_send(), b.ipc_send());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().tool_hangs > 0, "hang flavour exercised");
    }

    #[test]
    fn hang_fraction_splits_flavours() {
        let plan = FaultPlan {
            tool_fault_rate: 1.0,
            tool_hang_fraction: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 3);
        for _ in 0..10 {
            assert_eq!(inj.tool_attempt(), Some(ToolFaultKind::Hang));
        }
        assert_eq!(inj.stats().tool_hangs, 10);
        assert_eq!(inj.stats().tool_failures, 0);
    }
}
