//! Deterministic fault injection (§6 "reliability" — chaos testing the
//! kernel's containment story).
//!
//! A [`FaultPlan`] names per-site fault rates; a [`FaultInjector`] draws
//! from its **own** seeded RNG stream, independent of the kernel's
//! workload RNG. Two properties make the injection deterministic and
//! non-invasive:
//!
//! - **Seed isolation.** The injector forks its stream from the kernel seed
//!   with a fixed salt, so enabling faults never perturbs workload draws
//!   (tool latencies, model sampling) for the *surviving* operations.
//! - **Rate gating.** A site whose rate is `0.0` makes *no* RNG draw at
//!   all, so an all-zero plan is byte-identical to no plan — asserted by
//!   the chaos suite.
//!
//! Sites are drawn in kernel event order on the virtual clock, so a given
//! `(seed, plan, workload)` triple always faults the same operations.

use symphony_sim::Rng;
use symphony_telemetry::{Counter, MetricsRegistry};

/// Salt XORed into the kernel seed for the injector's RNG stream.
const FAULT_STREAM_SALT: u64 = 0x000F_A017_5EED_u64;

/// What happens to a tool-call attempt selected for fault injection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ToolFaultKind {
    /// The attempt fails after its sampled latency (a 5xx, say).
    Fail,
    /// The attempt hangs for `stall_factor ×` its sampled latency; with a
    /// per-call timeout this converts to [`crate::SysError::Timeout`],
    /// without one it just runs long.
    Hang,
}

/// Per-site fault rates, all in `[0, 1]` per operation. `default()` is
/// all-zero: no faults, no RNG draws.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FaultPlan {
    /// Probability a tool-call attempt faults.
    pub tool_fault_rate: f64,
    /// Of faulted attempts, the fraction that *hang* rather than fail.
    pub tool_hang_fraction: f64,
    /// Latency multiplier for hung attempts.
    pub tool_stall_factor: f64,
    /// Probability one `pred` request in a batch transiently faults (work
    /// lost, no KV appended, retryable).
    pub pred_fault_rate: f64,
    /// Probability a KV swap-in (explicit or offload-restore) fails.
    pub swap_in_fault_rate: f64,
    /// Probability an IPC `send_msg` is silently dropped.
    pub ipc_drop_rate: f64,
    /// Probability a KV journal write is torn mid-record (crash during
    /// persistence; the tail record is truncated).
    pub journal_write_fault_rate: f64,
    /// Probability the *kernel itself* crashes at a syscall boundary (the
    /// machine dies mid-run; recovery replays the WAL). Evaluated once per
    /// boundary from the same isolated stream as every other site.
    pub kernel_crash_rate: f64,
    /// Deterministic kill point: crash at exactly the Nth syscall boundary
    /// (1-based), regardless of `kernel_crash_rate`. No RNG draw — the
    /// kill-at-every-boundary chaos sweep iterates this.
    pub crash_at_boundary: Option<u64>,
}

impl FaultPlan {
    /// No faults anywhere (the kernel default).
    pub fn none() -> Self {
        FaultPlan::default()
    }

    /// True when every rate is zero — the injector then never draws.
    pub fn is_none(&self) -> bool {
        self.tool_fault_rate == 0.0
            && self.pred_fault_rate == 0.0
            && self.swap_in_fault_rate == 0.0
            && self.ipc_drop_rate == 0.0
            && self.journal_write_fault_rate == 0.0
            && self.kernel_crash_rate == 0.0
            && self.crash_at_boundary.is_none()
    }

    /// A plan faulting only tool calls at `rate` (all failures, no hangs).
    pub fn tools_only(rate: f64) -> Self {
        FaultPlan {
            tool_fault_rate: rate,
            tool_stall_factor: 10.0,
            ..FaultPlan::default()
        }
    }

    /// Checks every probability is a real number in `[0, 1]` (and the
    /// stall factor a finite non-negative multiplier). An out-of-range
    /// rate would silently skew the gate — `>= 1.0` faults everything,
    /// `NaN` compares false and faults nothing — so the injector refuses
    /// to build from an invalid plan.
    pub fn validate(&self) -> Result<(), String> {
        let rates = [
            ("tool_fault_rate", self.tool_fault_rate),
            ("tool_hang_fraction", self.tool_hang_fraction),
            ("pred_fault_rate", self.pred_fault_rate),
            ("swap_in_fault_rate", self.swap_in_fault_rate),
            ("ipc_drop_rate", self.ipc_drop_rate),
            ("journal_write_fault_rate", self.journal_write_fault_rate),
            ("kernel_crash_rate", self.kernel_crash_rate),
        ];
        for (name, rate) in rates {
            if !(0.0..=1.0).contains(&rate) || rate.is_nan() {
                return Err(format!("fault plan: {name} = {rate} is not in [0, 1]"));
            }
        }
        if !self.tool_stall_factor.is_finite() || self.tool_stall_factor < 0.0 {
            return Err(format!(
                "fault plan: tool_stall_factor = {} is not a finite non-negative multiplier",
                self.tool_stall_factor
            ));
        }
        if self.crash_at_boundary == Some(0) {
            return Err("fault plan: crash_at_boundary is 1-based; 0 never fires".to_string());
        }
        Ok(())
    }
}

/// Counters of injected faults, included in kernel stats so two same-seed
/// runs can be compared field-for-field. A point-in-time snapshot of the
/// injector's counters in the unified metrics registry (`faults.*`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Tool attempts forced to fail.
    pub tool_failures: u64,
    /// Tool attempts forced to hang.
    pub tool_hangs: u64,
    /// `pred` requests transiently faulted.
    pub pred_faults: u64,
    /// KV swap-ins failed.
    pub swap_in_failures: u64,
    /// IPC messages dropped.
    pub ipc_drops: u64,
    /// KV journal writes torn mid-record.
    pub journal_write_failures: u64,
    /// Kernel crashes injected at syscall boundaries.
    pub kernel_crashes: u64,
}

/// Live counter handles into the metrics registry backing [`FaultStats`].
#[derive(Debug, Clone)]
struct FaultCounters {
    tool_failures: Counter,
    tool_hangs: Counter,
    pred_faults: Counter,
    swap_in_failures: Counter,
    ipc_drops: Counter,
    journal_write_failures: Counter,
    kernel_crashes: Counter,
}

impl FaultCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        FaultCounters {
            tool_failures: registry.counter("faults.tool_failures"),
            tool_hangs: registry.counter("faults.tool_hangs"),
            pred_faults: registry.counter("faults.pred_faults"),
            swap_in_failures: registry.counter("faults.swap_in_failures"),
            ipc_drops: registry.counter("faults.ipc_drops"),
            journal_write_failures: registry.counter("faults.journal_write_failures"),
            kernel_crashes: registry.counter("faults.kernel_crashes"),
        }
    }
}

/// Draws fault decisions from a dedicated RNG stream.
#[derive(Debug)]
pub struct FaultInjector {
    plan: FaultPlan,
    rng: Rng,
    counters: FaultCounters,
}

impl FaultInjector {
    /// Builds an injector whose stream is derived from the kernel seed,
    /// with a private metrics registry.
    pub fn new(plan: FaultPlan, kernel_seed: u64) -> Self {
        FaultInjector::with_registry(plan, kernel_seed, &MetricsRegistry::new())
    }

    /// Builds an injector whose counters live in `registry` under the
    /// `faults.*` names.
    ///
    /// # Panics
    ///
    /// Panics if [`FaultPlan::validate`] rejects the plan — an out-of-range
    /// rate is a boot-time configuration error, not a runtime condition.
    pub fn with_registry(plan: FaultPlan, kernel_seed: u64, registry: &MetricsRegistry) -> Self {
        if let Err(msg) = plan.validate() {
            // lint:allow(k1): an invalid fault plan is a boot-time config
            // error surfaced before any LIP runs, not a kernel-path panic.
            panic!("{msg}");
        }
        FaultInjector {
            plan,
            rng: Rng::new(kernel_seed ^ FAULT_STREAM_SALT),
            counters: FaultCounters::register(registry),
        }
    }

    /// The configured plan.
    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    /// Injection counters so far (a snapshot of the `faults.*` counters).
    pub fn stats(&self) -> FaultStats {
        FaultStats {
            tool_failures: self.counters.tool_failures.get(),
            tool_hangs: self.counters.tool_hangs.get(),
            pred_faults: self.counters.pred_faults.get(),
            swap_in_failures: self.counters.swap_in_failures.get(),
            ipc_drops: self.counters.ipc_drops.get(),
            journal_write_failures: self.counters.journal_write_failures.get(),
            kernel_crashes: self.counters.kernel_crashes.get(),
        }
    }

    /// Decides the fate of one tool-call attempt. `None` = run normally.
    pub fn tool_attempt(&mut self) -> Option<ToolFaultKind> {
        if self.plan.tool_fault_rate == 0.0 {
            return None;
        }
        if self.rng.next_f64() >= self.plan.tool_fault_rate {
            return None;
        }
        // Second draw picks the flavour; gated so hang_fraction == 0 costs
        // one draw per *faulted* attempt only.
        let hang = self.plan.tool_hang_fraction > 0.0
            && self.rng.next_f64() < self.plan.tool_hang_fraction;
        if hang {
            self.counters.tool_hangs.inc();
            Some(ToolFaultKind::Hang)
        } else {
            self.counters.tool_failures.inc();
            Some(ToolFaultKind::Fail)
        }
    }

    /// Stall multiplier applied to hung attempts.
    pub fn stall_factor(&self) -> f64 {
        if self.plan.tool_stall_factor > 1.0 {
            self.plan.tool_stall_factor
        } else {
            10.0
        }
    }

    /// Decides whether one `pred` request in a batch faults.
    pub fn pred_request(&mut self) -> bool {
        if self.plan.pred_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.pred_fault_rate;
        if hit {
            self.counters.pred_faults.inc();
        }
        hit
    }

    /// Decides whether one KV swap-in fails.
    pub fn swap_in(&mut self) -> bool {
        if self.plan.swap_in_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.swap_in_fault_rate;
        if hit {
            self.counters.swap_in_failures.inc();
        }
        hit
    }

    /// Decides whether one KV journal write is torn mid-record.
    pub fn journal_write(&mut self) -> bool {
        if self.plan.journal_write_fault_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.journal_write_fault_rate;
        if hit {
            self.counters.journal_write_failures.inc();
        }
        hit
    }

    /// Decides whether the kernel crashes at syscall boundary `boundary`
    /// (1-based, counted across the whole run). The deterministic
    /// `crash_at_boundary` kill point fires without an RNG draw, so
    /// sweeping it over every boundary perturbs nothing else; the rate
    /// gate draws once per boundary like every other site.
    pub fn kernel_crash(&mut self, boundary: u64) -> bool {
        if self.plan.crash_at_boundary == Some(boundary) {
            self.counters.kernel_crashes.inc();
            return true;
        }
        if self.plan.kernel_crash_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.kernel_crash_rate;
        if hit {
            self.counters.kernel_crashes.inc();
        }
        hit
    }

    /// Decides whether one IPC message is dropped.
    pub fn ipc_send(&mut self) -> bool {
        if self.plan.ipc_drop_rate == 0.0 {
            return false;
        }
        let hit = self.rng.next_f64() < self.plan.ipc_drop_rate;
        if hit {
            self.counters.ipc_drops.inc();
        }
        hit
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_plan_never_draws_or_faults() {
        let mut inj = FaultInjector::new(FaultPlan::none(), 42);
        for b in 0..100 {
            assert!(inj.tool_attempt().is_none());
            assert!(!inj.pred_request());
            assert!(!inj.swap_in());
            assert!(!inj.ipc_send());
            assert!(!inj.journal_write());
            assert!(!inj.kernel_crash(b + 1));
        }
        assert_eq!(inj.stats(), FaultStats::default());
        // No draws consumed: the stream equals a fresh one.
        let mut fresh = Rng::new(42 ^ FAULT_STREAM_SALT);
        assert_eq!(inj.rng.next_u64(), fresh.next_u64());
    }

    #[test]
    fn deterministic_kill_point_fires_without_a_draw() {
        let plan = FaultPlan {
            crash_at_boundary: Some(3),
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 42);
        assert!(!inj.kernel_crash(1));
        assert!(!inj.kernel_crash(2));
        assert!(inj.kernel_crash(3));
        assert!(!inj.kernel_crash(4));
        assert_eq!(inj.stats().kernel_crashes, 1);
        let mut fresh = Rng::new(42 ^ FAULT_STREAM_SALT);
        assert_eq!(inj.rng.next_u64(), fresh.next_u64(), "no draws consumed");
    }

    #[test]
    fn crash_rate_is_respected_statistically() {
        let plan = FaultPlan {
            kernel_crash_rate: 0.2,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 11);
        let hits = (1..=10_000).filter(|&b| inj.kernel_crash(b)).count();
        assert!((1700..2300).contains(&hits), "hits={hits}");
        assert_eq!(inj.stats().kernel_crashes, hits as u64);
    }

    #[test]
    fn validate_accepts_boundary_rates() {
        let plan = FaultPlan {
            tool_fault_rate: 1.0,
            pred_fault_rate: 0.0,
            kernel_crash_rate: 0.5,
            crash_at_boundary: Some(1),
            ..FaultPlan::default()
        };
        assert!(plan.validate().is_ok());
    }

    #[test]
    fn validate_rejects_out_of_range_and_nan() {
        let negative = FaultPlan {
            swap_in_fault_rate: -0.1,
            ..FaultPlan::default()
        };
        assert!(negative.validate().unwrap_err().contains("swap_in_fault_rate"));
        let above_one = FaultPlan {
            kernel_crash_rate: 1.5,
            ..FaultPlan::default()
        };
        assert!(above_one.validate().unwrap_err().contains("kernel_crash_rate"));
        let nan = FaultPlan {
            ipc_drop_rate: f64::NAN,
            ..FaultPlan::default()
        };
        assert!(nan.validate().unwrap_err().contains("ipc_drop_rate"));
        let bad_stall = FaultPlan {
            tool_stall_factor: f64::INFINITY,
            ..FaultPlan::default()
        };
        assert!(bad_stall.validate().unwrap_err().contains("tool_stall_factor"));
        let zero_boundary = FaultPlan {
            crash_at_boundary: Some(0),
            ..FaultPlan::default()
        };
        assert!(zero_boundary.validate().is_err());
    }

    #[test]
    #[should_panic(expected = "not in [0, 1]")]
    fn injector_refuses_invalid_plan() {
        let _ = FaultInjector::new(
            FaultPlan {
                tool_fault_rate: 2.0,
                ..FaultPlan::default()
            },
            1,
        );
    }

    #[test]
    fn rates_are_respected_statistically() {
        let plan = FaultPlan {
            tool_fault_rate: 0.3,
            pred_fault_rate: 0.1,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 7);
        let mut tool_hits = 0;
        let mut pred_hits = 0;
        for _ in 0..10_000 {
            if inj.tool_attempt().is_some() {
                tool_hits += 1;
            }
            if inj.pred_request() {
                pred_hits += 1;
            }
        }
        assert!((2700..3300).contains(&tool_hits), "tool_hits={tool_hits}");
        assert!((800..1200).contains(&pred_hits), "pred_hits={pred_hits}");
        assert_eq!(inj.stats().tool_failures, tool_hits);
        assert_eq!(inj.stats().pred_faults, pred_hits);
    }

    #[test]
    fn same_seed_same_decisions() {
        let plan = FaultPlan {
            tool_fault_rate: 0.5,
            tool_hang_fraction: 0.4,
            swap_in_fault_rate: 0.2,
            ipc_drop_rate: 0.2,
            ..FaultPlan::default()
        };
        let mut a = FaultInjector::new(plan, 99);
        let mut b = FaultInjector::new(plan, 99);
        for _ in 0..1000 {
            assert_eq!(a.tool_attempt(), b.tool_attempt());
            assert_eq!(a.swap_in(), b.swap_in());
            assert_eq!(a.ipc_send(), b.ipc_send());
        }
        assert_eq!(a.stats(), b.stats());
        assert!(a.stats().tool_hangs > 0, "hang flavour exercised");
    }

    #[test]
    fn hang_fraction_splits_flavours() {
        let plan = FaultPlan {
            tool_fault_rate: 1.0,
            tool_hang_fraction: 1.0,
            ..FaultPlan::default()
        };
        let mut inj = FaultInjector::new(plan, 3);
        for _ in 0..10 {
            assert_eq!(inj.tool_attempt(), Some(ToolFaultKind::Hang));
        }
        assert_eq!(inj.stats().tool_hangs, 10);
        assert_eq!(inj.stats().tool_failures, 0);
    }
}
