//! Kernel-level identifiers, errors, limits and per-process records.

use symphony_kvfs::KvError;
use symphony_sim::SimTime;

/// Process identifier. Each LIP runs as one process owning its KV files.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pid(pub u64);

/// Thread identifier; a process has one main thread and may spawn more.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Tid(pub u64);

/// Errors surfaced to LIPs by system calls.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SysError {
    /// A KVFS operation failed.
    Kv(KvError),
    /// Unknown KV handle, thread or process.
    NotFound,
    /// `call_tool` named a tool that is not registered.
    NoSuchTool(String),
    /// A syscall argument was malformed (e.g. empty `pred` token list).
    BadArgument,
    /// The joined thread crashed or exited with an error.
    ThreadFailed,
    /// The tool reported an application-level failure.
    ToolFailed(String),
    /// A tool call exceeded its per-call timeout (all retries included).
    Timeout,
    /// The process ran past its wall-clock (virtual time) deadline.
    DeadlineExceeded,
    /// The tool's circuit breaker is open; the call was fast-failed.
    Unavailable,
    /// The kernel shed this request under overload (admission control).
    Busy,
    /// A transient injected/hardware fault hit the operation and retries
    /// (if any) were exhausted. The payload names the fault site.
    Fault(&'static str),
    /// A per-process resource limit was exceeded.
    LimitExceeded(&'static str),
    /// The kernel is shutting down (the process is being torn down).
    Shutdown,
    /// The process was cancelled from outside (e.g. a serving client tore
    /// the session down). Like a deadline hit, every subsequent syscall
    /// fails and blocked receivers are woken with this error.
    Cancelled,
    /// A kernel bookkeeping invariant did not hold (e.g. a live thread
    /// without a process record). Never expected in practice; surfaced as a
    /// typed error instead of a panic so one corrupted record cannot take
    /// down every in-flight program (lint rule `k1`). The payload names the
    /// violated invariant.
    Internal(&'static str),
}

impl From<KvError> for SysError {
    fn from(e: KvError) -> Self {
        SysError::Kv(e)
    }
}

impl core::fmt::Display for SysError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SysError::Kv(e) => write!(f, "kv: {e}"),
            SysError::NotFound => write!(f, "not found"),
            SysError::NoSuchTool(name) => write!(f, "no such tool: {name}"),
            SysError::BadArgument => write!(f, "bad argument"),
            SysError::ThreadFailed => write!(f, "joined thread failed"),
            SysError::ToolFailed(msg) => write!(f, "tool failed: {msg}"),
            SysError::Timeout => write!(f, "tool call timed out"),
            SysError::DeadlineExceeded => write!(f, "process deadline exceeded"),
            SysError::Unavailable => write!(f, "circuit breaker open"),
            SysError::Busy => write!(f, "overloaded, request shed"),
            SysError::Fault(site) => write!(f, "transient fault: {site}"),
            SysError::LimitExceeded(what) => write!(f, "limit exceeded: {what}"),
            SysError::Shutdown => write!(f, "kernel shutdown"),
            SysError::Cancelled => write!(f, "cancelled"),
            SysError::Internal(what) => write!(f, "kernel invariant violated: {what}"),
        }
    }
}

impl std::error::Error for SysError {}

/// How a thread (and ultimately a process) finished.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExitStatus {
    /// Returned `Ok(())`.
    Ok,
    /// Returned an error.
    Error(SysError),
    /// Panicked; the kernel reclaimed its resources.
    Crashed,
}

impl ExitStatus {
    /// Returns `true` for a clean exit.
    pub fn is_ok(&self) -> bool {
        matches!(self, ExitStatus::Ok)
    }
}

/// Per-process resource limits (§6 "Security implications": resource
/// accounting for user-supplied code). `None` means unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Limits {
    /// Maximum system calls across all threads.
    pub max_syscalls: Option<u64>,
    /// Maximum tokens run through `pred`.
    pub max_pred_tokens: Option<u64>,
    /// Maximum tool invocations.
    pub max_tool_calls: Option<u64>,
    /// Maximum live threads.
    pub max_threads: Option<u32>,
    /// KVFS page quota (enforced by the store).
    pub kv_quota_pages: Option<usize>,
    /// Per-tool-call timeout covering *one* attempt; a retried call charges
    /// `min(latency, tool_timeout)` per attempt. `None` waits forever.
    pub tool_timeout: Option<symphony_sim::SimDuration>,
    /// Process wall-clock (virtual time) deadline measured from spawn.
    /// Once past it, every further syscall fails with
    /// [`SysError::DeadlineExceeded`] and blocked receives are woken.
    pub deadline: Option<symphony_sim::SimDuration>,
}

/// Cumulative per-process accounting.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProcessUsage {
    /// System calls issued.
    pub syscalls: u64,
    /// `pred` invocations.
    pub pred_calls: u64,
    /// Tokens run through `pred`.
    pub pred_tokens: u64,
    /// Tokens emitted to the client.
    pub emitted_tokens: u64,
    /// Tool invocations.
    pub tool_calls: u64,
    /// Threads ever spawned (including the main thread).
    pub threads_spawned: u32,
}

/// The kernel's record of one process, kept after exit for the harness.
#[derive(Debug, Clone)]
pub struct ProcessRecord {
    /// Process ID.
    pub pid: Pid,
    /// Name given at spawn (for traces and lookup).
    pub name: String,
    /// Virtual arrival/spawn time.
    pub spawned_at: SimTime,
    /// Virtual exit time of the last thread (`None` while running).
    pub exited_at: Option<SimTime>,
    /// Exit status of the *main* thread.
    pub status: ExitStatus,
    /// Concatenated `emit`/`emit_tokens` output.
    pub output: String,
    /// Resource usage.
    pub usage: ProcessUsage,
}

impl ProcessRecord {
    /// End-to-end latency, if the process has exited.
    pub fn latency(&self) -> Option<symphony_sim::SimDuration> {
        self.exited_at.map(|t| t.duration_since(self.spawned_at))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sys_error_display() {
        assert_eq!(SysError::NotFound.to_string(), "not found");
        assert_eq!(
            SysError::Kv(KvError::NoGpuMemory).to_string(),
            "kv: out of GPU pages"
        );
        assert_eq!(
            SysError::LimitExceeded("syscalls").to_string(),
            "limit exceeded: syscalls"
        );
        assert_eq!(
            SysError::NoSuchTool("webcam".into()).to_string(),
            "no such tool: webcam"
        );
        assert_eq!(SysError::Timeout.to_string(), "tool call timed out");
        assert_eq!(
            SysError::DeadlineExceeded.to_string(),
            "process deadline exceeded"
        );
        assert_eq!(SysError::Unavailable.to_string(), "circuit breaker open");
        assert_eq!(SysError::Busy.to_string(), "overloaded, request shed");
        assert_eq!(
            SysError::Fault("gpu.pred").to_string(),
            "transient fault: gpu.pred"
        );
        assert_eq!(
            SysError::Internal("process record missing").to_string(),
            "kernel invariant violated: process record missing"
        );
    }

    #[test]
    fn exit_status_predicates() {
        assert!(ExitStatus::Ok.is_ok());
        assert!(!ExitStatus::Crashed.is_ok());
        assert!(!ExitStatus::Error(SysError::NotFound).is_ok());
    }

    #[test]
    fn record_latency() {
        let mut r = ProcessRecord {
            pid: Pid(1),
            name: "x".into(),
            spawned_at: SimTime::from_nanos(100),
            exited_at: None,
            status: ExitStatus::Ok,
            output: String::new(),
            usage: ProcessUsage::default(),
        };
        assert!(r.latency().is_none());
        r.exited_at = Some(SimTime::from_nanos(250));
        assert_eq!(r.latency().unwrap().as_nanos(), 150);
    }
}
