//! The system-call interface between LIP threads and the kernel.
//!
//! A LIP runs on a real OS thread holding a [`Ctx`]. Every syscall sends one
//! message up to the kernel and blocks on the private reply channel; the
//! kernel resumes exactly one thread at a time, so LIP execution is
//! deterministic. The wire types (`Syscall`/`SysReply`) are crate-private;
//! LIP code only sees the typed wrappers on [`Ctx`].

use std::ops::Range;

use crossbeam::channel::{Receiver, Sender};
use symphony_kvfs::{FileId, FileStat, KvEntry, Mode};
use symphony_model::{Dist, TokenId};
use symphony_sim::{SimDuration, SimTime};
use symphony_tokenizer::SpecialTokens;

use crate::types::{ExitStatus, Pid, SysError, Tid};

/// The type of a LIP body: the program the client "sends to the server".
pub type LipFn = Box<dyn FnOnce(&mut Ctx) -> Result<(), SysError> + Send + 'static>;

/// Payload used to unwind LIP threads when the kernel shuts down.
pub(crate) struct ShutdownSignal;

fn shutdown_unwind() -> ! {
    std::panic::panic_any(ShutdownSignal)
}

/// Messages from LIP threads to the kernel.
pub(crate) enum UpCall {
    /// A blocked thread requesting service.
    Syscall { tid: Tid, call: Syscall },
    /// A thread's body returned (or panicked).
    Exited { tid: Tid, status: ExitStatus },
}

/// The system calls (wire format).
pub(crate) enum Syscall {
    Pred { kv: FileId, tokens: Vec<(TokenId, u32)> },
    KvCreate,
    KvOpen { path: String },
    KvLink { kv: FileId, path: String },
    KvUnlink { path: String },
    KvFork { kv: FileId },
    KvRemove { kv: FileId },
    KvLen { kv: FileId },
    KvNextPos { kv: FileId },
    KvTruncate { kv: FileId, len: usize },
    KvExtract { kv: FileId, ranges: Vec<Range<usize>> },
    KvMerge { kvs: Vec<FileId> },
    KvRead { kv: FileId, start: usize, count: usize },
    KvPin { kv: FileId },
    KvUnpin { kv: FileId },
    KvLock { kv: FileId },
    KvUnlock { kv: FileId },
    KvChmod { kv: FileId, mode: Mode },
    KvStat { kv: FileId },
    KvSwapOut { kv: FileId },
    KvSwapIn { kv: FileId },
    Spawn { f: LipFn },
    Join { tid: Tid },
    CallTool { name: String, args: String },
    SendMsg { to: Pid, data: String },
    Recv,
    LookupProcess { name: String },
    Sleep { dur: SimDuration },
    Emit { text: String },
    EmitTokens { tokens: Vec<TokenId> },
    Tokenize { text: String },
    Detokenize { tokens: Vec<TokenId> },
    Now,
}

impl Syscall {
    /// The syscall's stable telemetry name (used as the `sys:<name>` span
    /// label on a thread's trace track).
    pub(crate) fn name(&self) -> &'static str {
        match self {
            Syscall::Pred { .. } => "pred",
            Syscall::KvCreate => "kv_create",
            Syscall::KvOpen { .. } => "kv_open",
            Syscall::KvLink { .. } => "kv_link",
            Syscall::KvUnlink { .. } => "kv_unlink",
            Syscall::KvFork { .. } => "kv_fork",
            Syscall::KvRemove { .. } => "kv_remove",
            Syscall::KvLen { .. } => "kv_len",
            Syscall::KvNextPos { .. } => "kv_next_pos",
            Syscall::KvTruncate { .. } => "kv_truncate",
            Syscall::KvExtract { .. } => "kv_extract",
            Syscall::KvMerge { .. } => "kv_merge",
            Syscall::KvRead { .. } => "kv_read",
            Syscall::KvPin { .. } => "kv_pin",
            Syscall::KvUnpin { .. } => "kv_unpin",
            Syscall::KvLock { .. } => "kv_lock",
            Syscall::KvUnlock { .. } => "kv_unlock",
            Syscall::KvChmod { .. } => "kv_chmod",
            Syscall::KvStat { .. } => "kv_stat",
            Syscall::KvSwapOut { .. } => "kv_swap_out",
            Syscall::KvSwapIn { .. } => "kv_swap_in",
            Syscall::Spawn { .. } => "spawn",
            Syscall::Join { .. } => "join",
            Syscall::CallTool { .. } => "call_tool",
            Syscall::SendMsg { .. } => "send_msg",
            Syscall::Recv => "recv",
            Syscall::LookupProcess { .. } => "lookup_process",
            Syscall::Sleep { .. } => "sleep",
            Syscall::Emit { .. } => "emit",
            Syscall::EmitTokens { .. } => "emit_tokens",
            Syscall::Tokenize { .. } => "tokenize",
            Syscall::Detokenize { .. } => "detokenize",
            Syscall::Now => "now",
        }
    }
}

/// Kernel replies (wire format).
pub(crate) enum SysReply {
    /// Initial "go" delivered to a freshly spawned thread.
    Start,
    Unit,
    Handle(FileId),
    Dists(Vec<Dist>),
    Entries(Vec<KvEntry>),
    Len(usize),
    Pos(u32),
    Tokens(Vec<TokenId>),
    Text(String),
    NewTid(Tid),
    Joined(ExitStatus),
    Msg { from: Pid, data: String },
    MaybePid(Option<Pid>),
    Stat(Box<FileStat>),
    Time(SimTime),
    Err(SysError),
}

/// An incoming IPC message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Message {
    /// Sending process.
    pub from: Pid,
    /// Payload.
    pub data: String,
}

/// A LIP thread's handle to the kernel.
///
/// All methods block the calling thread until the kernel services the call on
/// the virtual clock; from the LIP's perspective they are ordinary function
/// calls, exactly like POSIX syscalls.
pub struct Ctx {
    tid: Tid,
    pid: Pid,
    args: String,
    up: Sender<UpCall>,
    reply: Receiver<SysReply>,
    rng: symphony_sim::Rng,
    specials: SpecialTokens,
}

impl Ctx {
    pub(crate) fn new(
        tid: Tid,
        pid: Pid,
        args: String,
        up: Sender<UpCall>,
        reply: Receiver<SysReply>,
        rng: symphony_sim::Rng,
        specials: SpecialTokens,
    ) -> Self {
        Ctx {
            tid,
            pid,
            args,
            up,
            reply,
            rng,
            specials,
        }
    }

    /// Blocks until the kernel delivers the initial [`SysReply::Start`].
    pub(crate) fn wait_start(&self) {
        match self.reply.recv() {
            Ok(SysReply::Start) => {}
            _ => shutdown_unwind(),
        }
    }

    fn call(&self, call: Syscall) -> SysReply {
        if self
            .up
            .send(UpCall::Syscall {
                tid: self.tid,
                call,
            })
            .is_err()
        {
            shutdown_unwind();
        }
        match self.reply.recv() {
            Ok(r) => r,
            Err(_) => shutdown_unwind(),
        }
    }

    fn expect_unit(&self, call: Syscall) -> Result<(), SysError> {
        match self.call(call) {
            SysReply::Unit => Ok(()),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    fn expect_handle(&self, call: Syscall) -> Result<FileId, SysError> {
        match self.call(call) {
            SysReply::Handle(h) => Ok(h),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    // ---- identity -----------------------------------------------------------

    /// This thread's ID.
    pub fn tid(&self) -> Tid {
        self.tid
    }

    /// The owning process ID.
    pub fn pid(&self) -> Pid {
        self.pid
    }

    /// The argument string the client submitted with the program.
    pub fn args(&self) -> String {
        self.args.clone()
    }

    /// Tokenizer special tokens.
    pub fn specials(&self) -> SpecialTokens {
        self.specials
    }

    /// The end-of-sequence token.
    pub fn eos(&self) -> TokenId {
        self.specials.eos
    }

    // ---- randomness (thread-local, deterministic) -----------------------------

    /// Deterministic per-thread random bits (no kernel round trip).
    pub fn rng_u64(&mut self) -> u64 {
        self.rng.next_u64()
    }

    /// Deterministic uniform draw in `[0, 1)`.
    pub fn rng_f64(&mut self) -> f64 {
        self.rng.next_f64()
    }

    /// Samples a token from a distribution with this thread's RNG.
    pub fn sample(&mut self, dist: &Dist) -> TokenId {
        let u = self.rng.next_f64();
        dist.sample_with(u, self.specials.bos)
    }

    // ---- model computation (§4.1) ---------------------------------------------

    /// The `pred` system call: runs `tokens` through the model on top of the
    /// context cached in `kv`, returning one distribution per input token.
    /// The KV file gains one entry per token.
    pub fn pred(&self, kv: FileId, tokens: &[(TokenId, u32)]) -> Result<Vec<Dist>, SysError> {
        match self.call(Syscall::Pred {
            kv,
            tokens: tokens.to_vec(),
        }) {
            SysReply::Dists(d) => Ok(d),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// `pred` over a contiguous token run starting at `start_pos`.
    pub fn pred_positions(
        &self,
        kv: FileId,
        tokens: &[TokenId],
        start_pos: u32,
    ) -> Result<Vec<Dist>, SysError> {
        let pairs: Vec<(TokenId, u32)> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| (t, start_pos + i as u32))
            .collect();
        self.pred(kv, &pairs)
    }

    // ---- KVFS (§4.2) -----------------------------------------------------------

    /// Creates an empty private KV file.
    pub fn kv_create(&self) -> Result<FileId, SysError> {
        self.expect_handle(Syscall::KvCreate)
    }

    /// Opens a named KV file (e.g. a shared system prompt).
    pub fn kv_open(&self, path: &str) -> Result<FileId, SysError> {
        self.expect_handle(Syscall::KvOpen {
            path: path.to_string(),
        })
    }

    /// Publishes a KV file under a path.
    pub fn kv_link(&self, kv: FileId, path: &str) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvLink {
            kv,
            path: path.to_string(),
        })
    }

    /// Removes a path (the file survives).
    pub fn kv_unlink(&self, path: &str) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvUnlink {
            path: path.to_string(),
        })
    }

    /// Copy-on-write clone of a KV file.
    pub fn kv_fork(&self, kv: FileId) -> Result<FileId, SysError> {
        self.expect_handle(Syscall::KvFork { kv })
    }

    /// Deletes a KV file.
    pub fn kv_remove(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvRemove { kv })
    }

    /// Number of cached tokens in a file.
    pub fn kv_len(&self, kv: FileId) -> Result<usize, SysError> {
        match self.call(Syscall::KvLen { kv }) {
            SysReply::Len(n) => Ok(n),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Position following the file's last entry.
    pub fn kv_next_pos(&self, kv: FileId) -> Result<u32, SysError> {
        match self.call(Syscall::KvNextPos { kv }) {
            SysReply::Pos(p) => Ok(p),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Truncates a file to `len` tokens.
    pub fn kv_truncate(&self, kv: FileId, len: usize) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvTruncate { kv, len })
    }

    /// Builds a new file from entry ranges (context pruning).
    pub fn kv_extract(&self, kv: FileId, ranges: &[Range<usize>]) -> Result<FileId, SysError> {
        self.expect_handle(Syscall::KvExtract {
            kv,
            ranges: ranges.to_vec(),
        })
    }

    /// Concatenates files into a new one.
    pub fn kv_merge(&self, kvs: &[FileId]) -> Result<FileId, SysError> {
        self.expect_handle(Syscall::KvMerge { kvs: kvs.to_vec() })
    }

    /// Reads cached entries (token inspection).
    pub fn kv_read(
        &self,
        kv: FileId,
        start: usize,
        count: usize,
    ) -> Result<Vec<KvEntry>, SysError> {
        match self.call(Syscall::KvRead { kv, start, count }) {
            SysReply::Entries(e) => Ok(e),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Pins a file against eviction and swap.
    pub fn kv_pin(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvPin { kv })
    }

    /// Unpins a file.
    pub fn kv_unpin(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvUnpin { kv })
    }

    /// Takes the exclusive write lock.
    pub fn kv_lock(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvLock { kv })
    }

    /// Releases the exclusive write lock.
    pub fn kv_unlock(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvUnlock { kv })
    }

    /// Changes a file's permission mode.
    pub fn kv_chmod(&self, kv: FileId, mode: Mode) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvChmod { kv, mode })
    }

    /// Stats a file.
    pub fn kv_stat(&self, kv: FileId) -> Result<FileStat, SysError> {
        match self.call(Syscall::KvStat { kv }) {
            SysReply::Stat(s) => Ok(*s),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Explicitly swaps a file out to host memory.
    pub fn kv_swap_out(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvSwapOut { kv })
    }

    /// Swaps a file back into GPU memory.
    pub fn kv_swap_in(&self, kv: FileId) -> Result<(), SysError> {
        self.expect_unit(Syscall::KvSwapIn { kv })
    }

    // ---- threads and I/O (§4.3) ---------------------------------------------------

    /// Spawns a sibling thread in this process.
    pub fn spawn<F>(&self, f: F) -> Result<Tid, SysError>
    where
        F: FnOnce(&mut Ctx) -> Result<(), SysError> + Send + 'static,
    {
        match self.call(Syscall::Spawn { f: Box::new(f) }) {
            SysReply::NewTid(t) => Ok(t),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Blocks until `tid` exits; returns its status.
    pub fn join(&self, tid: Tid) -> Result<ExitStatus, SysError> {
        match self.call(Syscall::Join { tid }) {
            SysReply::Joined(s) => Ok(s),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Invokes a server-side tool; blocks this thread for the tool's
    /// (virtual) latency. While blocked, the kernel may offload this
    /// process's KV files to host memory.
    pub fn call_tool(&self, name: &str, args: &str) -> Result<String, SysError> {
        match self.call(Syscall::CallTool {
            name: name.to_string(),
            args: args.to_string(),
        }) {
            SysReply::Text(t) => Ok(t),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Sends an IPC message to another process.
    pub fn send_msg(&self, to: Pid, data: &str) -> Result<(), SysError> {
        self.expect_unit(Syscall::SendMsg {
            to,
            data: data.to_string(),
        })
    }

    /// Receives the next IPC message, blocking until one arrives.
    pub fn recv_msg(&self) -> Result<Message, SysError> {
        match self.call(Syscall::Recv) {
            SysReply::Msg { from, data } => Ok(Message { from, data }),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Finds a live process by its spawn name.
    pub fn lookup_process(&self, name: &str) -> Result<Option<Pid>, SysError> {
        match self.call(Syscall::LookupProcess {
            name: name.to_string(),
        }) {
            SysReply::MaybePid(p) => Ok(p),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Sleeps for a span of virtual time.
    pub fn sleep(&self, dur: SimDuration) -> Result<(), SysError> {
        self.expect_unit(Syscall::Sleep { dur })
    }

    // ---- client output and tokenisation ----------------------------------------

    /// Streams text to the client.
    pub fn emit(&self, text: &str) -> Result<(), SysError> {
        self.expect_unit(Syscall::Emit {
            text: text.to_string(),
        })
    }

    /// Streams tokens to the client (detokenised server-side); counts toward
    /// the process's generated-token metric.
    pub fn emit_tokens(&self, tokens: &[TokenId]) -> Result<(), SysError> {
        self.expect_unit(Syscall::EmitTokens {
            tokens: tokens.to_vec(),
        })
    }

    /// Tokenises text with the server's tokenizer.
    pub fn tokenize(&self, text: &str) -> Result<Vec<TokenId>, SysError> {
        match self.call(Syscall::Tokenize {
            text: text.to_string(),
        }) {
            SysReply::Tokens(t) => Ok(t),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Detokenises tokens with the server's tokenizer.
    pub fn detokenize(&self, tokens: &[TokenId]) -> Result<String, SysError> {
        match self.call(Syscall::Detokenize {
            tokens: tokens.to_vec(),
        }) {
            SysReply::Text(t) => Ok(t),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> Result<SimTime, SysError> {
        match self.call(Syscall::Now) {
            SysReply::Time(t) => Ok(t),
            SysReply::Err(e) => Err(e),
            _ => Err(SysError::BadArgument),
        }
    }
}

/// Entry point run on each LIP OS thread: gate on the kernel's start signal,
/// run the body, report the exit status.
pub(crate) fn thread_main(mut ctx: Ctx, f: LipFn) {
    ctx.wait_start();
    let tid = ctx.tid();
    let up = ctx.up.clone();
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(move || f(&mut ctx)));
    let status = match result {
        Ok(Ok(())) => ExitStatus::Ok,
        Ok(Err(e)) => ExitStatus::Error(e),
        Err(payload) => {
            if payload.downcast_ref::<ShutdownSignal>().is_some() {
                // Kernel teardown: exit silently without reporting.
                return;
            }
            ExitStatus::Crashed
        }
    };
    // The kernel may already be gone during shutdown; ignore send failure.
    let _ = up.send(UpCall::Exited { tid, status });
}
