//! Server-side tools (§2.2, §4.3).
//!
//! The paper argues that function calls which do not depend on the client's
//! environment (third-party APIs, small computations) should execute inside
//! the serving system, eliminating client round trips. A [`ToolRegistry`]
//! holds named tools; each invocation samples a latency from the tool's
//! distribution and runs its handler for the result.

use std::collections::BTreeMap;

use symphony_sim::{LogNormal, RetryPolicy, Rng, SimDuration};

use crate::types::SysError;

/// What a tool invocation produced.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ToolOutcome {
    /// Tool output delivered to the LIP.
    Ok(String),
    /// Application-level failure delivered as an error.
    Failed(String),
}

/// Handler signature: arguments in, outcome out.
pub type ToolHandler = Box<dyn Fn(&str) -> ToolOutcome>;

/// A registered tool: latency model plus handler.
pub struct ToolSpec {
    mean_latency: SimDuration,
    latency: Option<LogNormal>,
    handler: ToolHandler,
    retry: Option<RetryPolicy>,
}

impl ToolSpec {
    /// A tool with log-normal latency around `mean` (coefficient of
    /// variation 0.3) and the given handler.
    pub fn new<F>(mean: SimDuration, handler: F) -> Self
    where
        F: Fn(&str) -> ToolOutcome + 'static,
    {
        let latency = if mean > SimDuration::ZERO {
            Some(LogNormal::from_mean_cv(mean.as_secs_f64(), 0.3))
        } else {
            None
        };
        ToolSpec {
            mean_latency: mean,
            latency,
            handler: Box::new(handler),
            retry: None,
        }
    }

    /// A tool with a fixed (non-random) latency.
    pub fn fixed<F>(latency: SimDuration, handler: F) -> Self
    where
        F: Fn(&str) -> ToolOutcome + 'static,
    {
        ToolSpec {
            mean_latency: latency,
            latency: None,
            handler: Box::new(handler),
            retry: None,
        }
    }

    /// Attaches a per-tool retry policy, overriding the kernel-wide default.
    pub fn with_retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = Some(policy);
        self
    }

    /// The per-tool retry policy, if one was attached.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.retry
    }

    /// The configured mean latency.
    pub fn mean_latency(&self) -> SimDuration {
        self.mean_latency
    }

    fn sample_latency(&self, rng: &mut Rng) -> SimDuration {
        match &self.latency {
            Some(d) => SimDuration::from_secs_f64(d.sample(rng)),
            None => self.mean_latency,
        }
    }
}

impl core::fmt::Debug for ToolSpec {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.debug_struct("ToolSpec")
            .field("mean_latency", &self.mean_latency)
            .finish_non_exhaustive()
    }
}

/// The kernel's tool table.
#[derive(Debug, Default)]
pub struct ToolRegistry {
    tools: BTreeMap<String, ToolSpec>,
    invocations: u64,
}

impl ToolRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or replaces) a tool.
    pub fn register(&mut self, name: &str, spec: ToolSpec) {
        self.tools.insert(name.to_string(), spec);
    }

    /// Returns `true` if `name` is registered.
    pub fn contains(&self, name: &str) -> bool {
        self.tools.contains_key(name)
    }

    /// Total invocations served.
    pub fn invocations(&self) -> u64 {
        self.invocations
    }

    /// The retry policy for `name`, if the tool exists and has one attached.
    pub fn retry_policy(&self, name: &str) -> Option<RetryPolicy> {
        self.tools.get(name).and_then(|s| s.retry_policy())
    }

    /// Invokes a tool: returns the sampled latency and the outcome, or
    /// [`SysError::NoSuchTool`] if the tool does not exist. An unknown name
    /// never perturbs the RNG, so registering an extra tool elsewhere does
    /// not shift an unrelated process's latency draws.
    pub fn invoke(
        &mut self,
        name: &str,
        args: &str,
        rng: &mut Rng,
    ) -> Result<(SimDuration, ToolOutcome), SysError> {
        let spec = self
            .tools
            .get(name)
            .ok_or_else(|| SysError::NoSuchTool(name.to_string()))?;
        self.invocations += 1;
        let latency = spec.sample_latency(rng);
        let outcome = (spec.handler)(args);
        Ok((latency, outcome))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_latency_is_exact() {
        let mut reg = ToolRegistry::new();
        reg.register(
            "echo",
            ToolSpec::fixed(SimDuration::from_millis(5), |args| {
                ToolOutcome::Ok(format!("echo:{args}"))
            }),
        );
        let mut rng = Rng::new(1);
        let (lat, out) = reg.invoke("echo", "hi", &mut rng).unwrap();
        assert_eq!(lat, SimDuration::from_millis(5));
        assert_eq!(out, ToolOutcome::Ok("echo:hi".into()));
        assert_eq!(reg.invocations(), 1);
    }

    #[test]
    fn sampled_latency_varies_around_mean() {
        let mut reg = ToolRegistry::new();
        reg.register(
            "web",
            ToolSpec::new(SimDuration::from_millis(50), |_| ToolOutcome::Ok(String::new())),
        );
        let mut rng = Rng::new(2);
        let mut total = 0.0;
        let mut distinct = std::collections::HashSet::new();
        for _ in 0..2000 {
            let (lat, _) = reg.invoke("web", "", &mut rng).unwrap();
            total += lat.as_secs_f64();
            distinct.insert(lat.as_nanos());
        }
        let mean = total / 2000.0;
        assert!((mean - 0.05).abs() < 0.005, "mean={mean}");
        assert!(distinct.len() > 1000, "latency should vary");
    }

    #[test]
    fn unknown_tool_is_typed_error() {
        let mut reg = ToolRegistry::new();
        assert_eq!(
            reg.invoke("nope", "", &mut Rng::new(1)),
            Err(SysError::NoSuchTool("nope".into()))
        );
        assert!(!reg.contains("nope"));
        assert_eq!(reg.invocations(), 0, "failed lookups are not invocations");
    }

    #[test]
    fn retry_policy_attaches_per_tool() {
        let mut reg = ToolRegistry::new();
        reg.register(
            "api",
            ToolSpec::fixed(SimDuration::from_millis(1), |_| ToolOutcome::Ok(String::new()))
                .with_retry(RetryPolicy::exponential(3, SimDuration::from_millis(2))),
        );
        reg.register(
            "plain",
            ToolSpec::fixed(SimDuration::ZERO, |_| ToolOutcome::Ok(String::new())),
        );
        assert_eq!(reg.retry_policy("api").unwrap().max_attempts, 3);
        assert!(reg.retry_policy("plain").is_none());
        assert!(reg.retry_policy("missing").is_none());
    }

    #[test]
    fn failures_are_outcomes_not_panics() {
        let mut reg = ToolRegistry::new();
        reg.register(
            "flaky",
            ToolSpec::fixed(SimDuration::ZERO, |_| ToolOutcome::Failed("503".into())),
        );
        let (_, out) = reg.invoke("flaky", "", &mut Rng::new(1)).unwrap();
        assert_eq!(out, ToolOutcome::Failed("503".into()));
    }
}
