//! The batch inference scheduler (§4.4).
//!
//! `pred` system calls park their threads in the *inference pool*; this
//! scheduler decides **when** to close a pool snapshot into a GPU batch.
//! "Executing the batch prematurely can result in underutilized GPU
//! resources ... delaying it excessively can increase wait times": the
//! [`BatchPolicy`] spans that trade-off, including the paper's adaptive
//! policy that sizes the wait from the observed `pred` arrival rate
//! (a Poisson-process view of syscall arrivals).

use std::collections::VecDeque;

use symphony_sim::{IdSlab, SimDuration, SimTime};

/// When to launch a pooled batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Launch whenever the GPU is idle and the pool is non-empty.
    Immediate,
    /// Wait until `max_batch` calls pooled or `max_wait` elapsed since the
    /// oldest pooled call.
    FixedWindow {
        /// Longest time the oldest call may wait.
        max_wait: SimDuration,
        /// Launch as soon as this many calls are pooled.
        max_batch: usize,
    },
    /// Estimate the `pred` arrival rate with an EWMA over inter-arrival
    /// gaps and wait just long enough to plausibly reach `target_batch`,
    /// capped by `max_wait`.
    Adaptive {
        /// Batch size worth waiting for.
        target_batch: usize,
        /// Hard cap on the oldest call's wait.
        max_wait: SimDuration,
    },
}

/// Scheduler verdict for the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Close the pool into a batch now.
    LaunchNow,
    /// Re-evaluate at this time (the kernel arms a timer).
    WaitUntil(SimTime),
    /// Nothing to do (empty pool or busy GPU).
    Idle,
}

/// EWMA weight for inter-arrival gaps.
const GAP_ALPHA: f64 = 0.2;

/// Floor for the estimated inter-arrival gap, in seconds. Simultaneous
/// arrivals produce a zero gap; without the floor `estimated_rate` would
/// report an infinite rate and the adaptive fill-time computation would
/// degenerate. One virtual nanosecond.
const MIN_GAP_SECS: f64 = 1e-9;

/// The inference pool plus launch policy.
#[derive(Debug)]
pub struct InferScheduler<T> {
    policy: BatchPolicy,
    max_batch: usize,
    pool: VecDeque<(SimTime, T)>,
    last_arrival: Option<SimTime>,
    ewma_gap: Option<f64>,
}

impl<T> InferScheduler<T> {
    /// Creates a scheduler with a policy and a global batch-size cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(policy: BatchPolicy, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        InferScheduler {
            policy,
            max_batch,
            pool: VecDeque::new(),
            last_arrival: None,
            ewma_gap: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Pending `pred` calls.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Returns `true` when no calls are pooled.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Current arrival-rate estimate in calls/second.
    ///
    /// Cold start is explicit: `None` until two arrivals have produced a
    /// first inter-arrival gap, and the gap is floored at one virtual
    /// nanosecond so a burst of simultaneous arrivals reports a large but
    /// *finite* rate instead of dividing by zero. The adaptive policy maps
    /// `None` to [`Decision::LaunchNow`] (see [`InferScheduler::decide`]);
    /// it never guesses a wait from an estimate this method won't stand
    /// behind.
    pub fn estimated_rate(&self) -> Option<f64> {
        self.ewma_gap.map(|g| 1.0 / g.max(MIN_GAP_SECS))
    }

    /// Records a `pred` arrival.
    pub fn on_arrival(&mut self, now: SimTime, entry: T) {
        if let Some(last) = self.last_arrival {
            let gap = now.duration_since(last).as_secs_f64();
            self.ewma_gap = Some(match self.ewma_gap {
                Some(e) => e * (1.0 - GAP_ALPHA) + gap * GAP_ALPHA,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
        self.pool.push_back((now, entry));
    }

    /// Decides what to do given the GPU's state. Idempotent: safe to call
    /// after every kernel state change and on stale timers.
    pub fn decide(&self, now: SimTime, gpu_idle: bool) -> Decision {
        if !gpu_idle {
            return Decision::Idle;
        }
        let Some(oldest) = self.pool.front().map(|e| e.0) else {
            return Decision::Idle;
        };
        match self.policy {
            BatchPolicy::Immediate => Decision::LaunchNow,
            BatchPolicy::FixedWindow {
                max_wait,
                max_batch,
            } => {
                if self.pool.len() >= max_batch.min(self.max_batch) {
                    return Decision::LaunchNow;
                }
                let deadline = oldest + max_wait;
                if now >= deadline {
                    Decision::LaunchNow
                } else {
                    Decision::WaitUntil(deadline)
                }
            }
            BatchPolicy::Adaptive {
                target_batch,
                max_wait,
            } => {
                let target = target_batch.min(self.max_batch);
                if self.pool.len() >= target {
                    return Decision::LaunchNow;
                }
                // Expected time to fill the rest of the batch at the
                // observed rate. Cold start: until the estimator has a gap
                // (`estimated_rate` would be `None`), launch immediately
                // rather than guess a wait. The raw (unfloored) gap is used
                // below so that a burst of simultaneous arrivals computes a
                // zero fill time and launches now instead of arming a
                // nanosecond timer.
                let Some(gap) = self.ewma_gap else {
                    return Decision::LaunchNow;
                };
                // If not even one more call is expected within the wait cap,
                // waiting cannot grow the batch: be work-conserving.
                if SimDuration::from_secs_f64(gap) >= max_wait {
                    return Decision::LaunchNow;
                }
                let need = (target - self.pool.len()) as f64;
                let fill = SimDuration::from_secs_f64(need * gap);
                let deadline = oldest + fill.min(max_wait);
                if now >= deadline {
                    Decision::LaunchNow
                } else {
                    Decision::WaitUntil(deadline)
                }
            }
        }
    }

    /// Removes up to the batch-size cap of oldest entries.
    pub fn take_batch(&mut self) -> Vec<T> {
        let n = self.pool.len().min(self.max_batch);
        self.pool.drain(..n).map(|(_, e)| e).collect()
    }
}

/// How the GPU loop forms batches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecMode {
    /// Run-to-completion batches: a pool snapshot closes into a batch
    /// (per [`BatchPolicy`]) and runs until every request in it finishes.
    Static,
    /// Iteration-level continuous batching: sequences are admitted and
    /// retired at token-iteration granularity, long prefills are split
    /// into chunks, and sequences are preempted via KVFS swap when GPU
    /// pages run out.
    Continuous(ContinuousConfig),
}

/// Parameters of the continuous-batching executor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ContinuousConfig {
    /// Maximum tokens one request contributes to a single iteration.
    /// `None` runs each request's whole remaining prompt in one iteration
    /// (continuous batching without chunked prefill). Smaller chunks bound
    /// inter-token latency for co-scheduled decoders at the price of
    /// re-streaming the model weights once per extra iteration.
    pub chunk_tokens: Option<usize>,
    /// Admission order for waiting `pred` calls.
    pub discipline: QueueDiscipline,
}

impl Default for ContinuousConfig {
    fn default() -> Self {
        ContinuousConfig {
            chunk_tokens: Some(256),
            discipline: QueueDiscipline::Fifo,
        }
    }
}

/// Admission order for the continuous executor's wait queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QueueDiscipline {
    /// First-come first-served, program-oblivious.
    Fifo,
    /// Program-aware non-clairvoyant multi-level feedback queue: programs
    /// with little critical-path service so far are admitted first.
    Mlfq(MlfqConfig),
}

/// MLFQ shape: `levels` queues with a geometric service ladder. A program
/// starts at level 0 and demotes one level each time its accumulated
/// critical-path service crosses the next threshold (`quantum_tokens`,
/// then twice that, then four times, ...). Demotion is never reversed:
/// the policy is non-clairvoyant — it approximates shortest-remaining-
/// first using only the service a program has already consumed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MlfqConfig {
    /// Number of priority levels (≥ 1).
    pub levels: usize,
    /// Critical-path tokens a program may consume before its first
    /// demotion.
    pub quantum_tokens: u64,
}

impl Default for MlfqConfig {
    fn default() -> Self {
        MlfqConfig {
            levels: 4,
            quantum_tokens: 512,
        }
    }
}

/// The continuous executor's wait queue: FIFO or program-aware MLFQ.
///
/// Entries are tagged with the owning program and whether the `pred` is on
/// the program's *critical path* (issued by its main thread) or
/// speculative/background (issued by a spawned thread). Only critical-path
/// tokens accrue service — a program is not punished for background
/// speculation — but speculative entries queue one level below the
/// program's current level, so they never starve another program's
/// blocking work.
/// Optionally, an admission-time *static cost hint* (the verifier's upper
/// bound on critical-path pred tokens) seeds a program's ladder position
/// before it has consumed anything: a program known to be cheap keeps top
/// priority for its whole (short) life, while a program whose cost is
/// statically unbounded starts at the bottom instead of riding level 0 at
/// the expense of genuinely short work. Hints only ever *add* to observed
/// service — the discipline stays non-clairvoyant about anything the
/// verifier could not bound.
#[derive(Debug)]
pub struct ProgramQueue<T> {
    discipline: QueueDiscipline,
    levels: Vec<VecDeque<T>>,
    /// Per-program ladder state, slab-indexed by program id. The critical
    /// level is cached and recomputed only when service or hints change, so
    /// the dispatch path (`level_for`/`push`/`pop`) does no map walking.
    programs: IdSlab<ProgState>,
}

/// Cached MLFQ ladder state for one program.
#[derive(Debug, Default, Clone, Copy)]
struct ProgState {
    /// Accumulated critical-path service (tokens).
    service: u64,
    /// Static service estimate added to observed service when picking a
    /// level; `None` when no hint was installed.
    hint: Option<u64>,
    /// Ladder level implied by `service + hint` (critical-path entries).
    level: usize,
}

impl<T> ProgramQueue<T> {
    /// Creates an empty queue for a discipline.
    pub fn new(discipline: QueueDiscipline) -> Self {
        let n = match discipline {
            QueueDiscipline::Fifo => 1,
            // +1: speculative entries of bottom-level programs still get
            // their own (lower) level.
            QueueDiscipline::Mlfq(cfg) => cfg.levels.max(1) + 1,
        };
        ProgramQueue {
            discipline,
            levels: (0..n).map(|_| VecDeque::new()).collect(),
            programs: IdSlab::new(),
        }
    }

    /// Walks the geometric ladder for a total service figure. Runs only when
    /// a program's service or hint changes; dispatch reads the cached result.
    fn ladder_level(&self, total_service: u64) -> usize {
        match self.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::Mlfq(cfg) => {
                let mut level = 0usize;
                let mut bound = cfg.quantum_tokens.max(1);
                while total_service >= bound && level + 1 < cfg.levels.max(1) {
                    level += 1;
                    bound = bound.saturating_mul(2);
                }
                level
            }
        }
    }

    /// Recomputes and caches the ladder level after a state change.
    fn refresh_level(&mut self, pid: u64) {
        let Some(p) = self.programs.get(pid) else {
            return;
        };
        let total = p.service.saturating_add(p.hint.unwrap_or(0));
        let level = self.ladder_level(total);
        if let Some(p) = self.programs.get_mut(pid) {
            p.level = level;
        }
    }

    /// Queued entries across all levels.
    pub fn len(&self) -> usize {
        self.levels.iter().map(VecDeque::len).sum()
    }

    /// Returns `true` when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.levels.iter().all(VecDeque::is_empty)
    }

    /// The level an entry from `pid` would queue at right now. O(1): reads
    /// the level cached at the last `charge`/`set_static_hint` for the
    /// program.
    pub fn level_for(&self, pid: u64, critical: bool) -> usize {
        match self.discipline {
            QueueDiscipline::Fifo => 0,
            QueueDiscipline::Mlfq(_) => {
                let level = self.programs.get(pid).map(|p| p.level).unwrap_or(0);
                // Speculative/background preds yield to critical-path work.
                if critical {
                    level
                } else {
                    (level + 1).min(self.levels.len() - 1)
                }
            }
        }
    }

    /// Enqueues at the back of the program's current level.
    pub fn push(&mut self, pid: u64, critical: bool, entry: T) {
        let level = self.level_for(pid, critical);
        self.levels[level].push_back(entry);
    }

    /// Re-enqueues at the *front* of the program's current level: a
    /// preempted sequence resumes before later arrivals of equal priority.
    pub fn push_front(&mut self, pid: u64, critical: bool, entry: T) {
        let level = self.level_for(pid, critical);
        self.levels[level].push_front(entry);
    }

    /// Dequeues from the lowest-numbered non-empty level.
    pub fn pop(&mut self) -> Option<T> {
        self.levels.iter_mut().find_map(VecDeque::pop_front)
    }

    /// Records executed service. Only critical-path tokens move a program
    /// down the ladder.
    pub fn charge(&mut self, pid: u64, critical: bool, tokens: u64) {
        if critical {
            if self.programs.get(pid).is_none() {
                self.programs.insert(pid, ProgState::default());
            }
            if let Some(p) = self.programs.get_mut(pid) {
                p.service += tokens;
            }
            self.refresh_level(pid);
        }
    }

    /// Accumulated critical-path service for a program.
    pub fn service_of(&self, pid: u64) -> u64 {
        self.programs.get(pid).map(|p| p.service).unwrap_or(0)
    }

    /// Installs an admission-time cost hint for `pid`. `Some(tokens)` is
    /// the verifier's upper bound on critical-path pred tokens; `None`
    /// means the bound is statically unbounded and seeds the bottom of
    /// the ladder so the program cannot crowd genuinely short work out of
    /// level 0. Under FIFO this is recorded but has no effect.
    pub fn set_static_hint(&mut self, pid: u64, est_tokens: Option<u64>) {
        let hint = match (est_tokens, self.discipline) {
            (Some(t), _) => t,
            (None, QueueDiscipline::Mlfq(cfg)) => {
                // Enough synthetic service to bottom out `level_for`'s
                // geometric ladder from the very first enqueue.
                let shift = (cfg.levels.max(1) as u32 - 1).min(63);
                cfg.quantum_tokens.max(1).saturating_mul(1u64 << shift)
            }
            (None, QueueDiscipline::Fifo) => 0,
        };
        if self.programs.get(pid).is_none() {
            self.programs.insert(pid, ProgState::default());
        }
        if let Some(p) = self.programs.get_mut(pid) {
            p.hint = Some(hint);
        }
        self.refresh_level(pid);
    }

    /// The static cost hint currently installed for a program, if any.
    pub fn static_hint_of(&self, pid: u64) -> Option<u64> {
        self.programs.get(pid).and_then(|p| p.hint)
    }

    /// Drops the service record (and any static hint) of a finished
    /// program.
    pub fn forget(&mut self, pid: u64) {
        self.programs.remove(pid);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn immediate_launches_when_idle_and_nonempty() {
        let mut s = InferScheduler::new(BatchPolicy::Immediate, 8);
        assert_eq!(s.decide(at(0), true), Decision::Idle);
        s.on_arrival(at(1), "a");
        assert_eq!(s.decide(at(1), true), Decision::LaunchNow);
        assert_eq!(s.decide(at(1), false), Decision::Idle, "GPU busy");
    }

    #[test]
    fn fixed_window_waits_then_fires() {
        let mut s = InferScheduler::new(
            BatchPolicy::FixedWindow {
                max_wait: SimDuration::from_millis(10),
                max_batch: 4,
            },
            8,
        );
        s.on_arrival(at(5), 1);
        assert_eq!(s.decide(at(5), true), Decision::WaitUntil(at(15)));
        assert_eq!(s.decide(at(15), true), Decision::LaunchNow);
    }

    #[test]
    fn fixed_window_fires_on_full_batch() {
        let mut s = InferScheduler::new(
            BatchPolicy::FixedWindow {
                max_wait: SimDuration::from_secs(1),
                max_batch: 3,
            },
            8,
        );
        for i in 0..3 {
            s.on_arrival(at(i), i);
        }
        assert_eq!(s.decide(at(2), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_launches_without_rate_estimate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 8,
                max_wait: SimDuration::from_millis(50),
            },
            8,
        );
        s.on_arrival(at(0), ());
        assert_eq!(s.decide(at(0), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_waits_proportionally_to_rate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 4,
                max_wait: SimDuration::from_millis(100),
            },
            8,
        );
        // Arrivals every 2 ms -> gap estimate 2 ms.
        s.on_arrival(at(0), ());
        s.on_arrival(at(2), ());
        match s.decide(at(2), true) {
            Decision::WaitUntil(t) => {
                // Needs 2 more at ~2 ms each: deadline ≈ oldest + 4 ms.
                assert!(t > at(2) && t <= at(0) + SimDuration::from_millis(10), "t={t}");
            }
            other => panic!("expected WaitUntil, got {other:?}"),
        }
        // Target reached -> launch.
        s.on_arrival(at(3), ());
        s.on_arrival(at(4), ());
        assert_eq!(s.decide(at(4), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_is_work_conserving_at_low_rate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 64,
                max_wait: SimDuration::from_millis(5),
            },
            64,
        );
        // Slow arrivals: 1 per 100 ms — no further call can land within the
        // 5 ms window, so waiting would be pure latency tax.
        s.on_arrival(at(0), ());
        s.on_arrival(at(100), ());
        assert_eq!(s.decide(at(100), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_waits_when_rate_justifies_it() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 64,
                max_wait: SimDuration::from_millis(5),
            },
            64,
        );
        // Fast arrivals: 1 per ms — the window can accumulate ~5 calls.
        s.on_arrival(at(0), ());
        s.on_arrival(at(1), ());
        match s.decide(at(1), true) {
            Decision::WaitUntil(t) => assert_eq!(t, at(0) + SimDuration::from_millis(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn take_batch_respects_cap_and_order() {
        let mut s = InferScheduler::new(BatchPolicy::Immediate, 3);
        for i in 0..5 {
            s.on_arrival(at(i), i);
        }
        assert_eq!(s.take_batch(), vec![0, 1, 2]);
        assert_eq!(s.pool_len(), 2);
        assert_eq!(s.take_batch(), vec![3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn rate_estimate_cold_start_is_none_until_first_gap() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 8,
                max_wait: SimDuration::from_millis(50),
            },
            8,
        );
        // Zero arrivals: no estimate, nothing to decide.
        assert_eq!(s.estimated_rate(), None);
        assert_eq!(s.decide(at(0), true), Decision::Idle);
        // One arrival: still no gap, so still no estimate — the adaptive
        // policy's explicit fallback is to launch, not to guess a wait.
        s.on_arrival(at(0), ());
        assert_eq!(s.estimated_rate(), None);
        assert_eq!(s.decide(at(0), true), Decision::LaunchNow);
        // Two arrivals: one gap, estimate commits.
        s.on_arrival(at(10), ());
        let rate = s.estimated_rate().expect("estimate after first gap");
        assert!((rate - 100.0).abs() < 1.0, "rate={rate}");
    }

    #[test]
    fn rate_estimate_simultaneous_arrivals_stay_finite() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 8,
                max_wait: SimDuration::from_millis(50),
            },
            8,
        );
        // A burst at one instant: gap 0 must clamp, not divide by zero.
        s.on_arrival(at(3), ());
        s.on_arrival(at(3), ());
        let rate = s.estimated_rate().expect("estimate exists");
        assert!(rate.is_finite(), "rate={rate}");
        // And with an (apparently) infinite rate the fill time is ~zero:
        // launch immediately, don't wait on a degenerate deadline.
        assert_eq!(s.decide(at(3), true), Decision::LaunchNow);
    }

    #[test]
    fn rate_estimate_converges() {
        let mut s: InferScheduler<()> = InferScheduler::new(BatchPolicy::Immediate, 8);
        assert_eq!(s.estimated_rate(), None);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            s.on_arrival(t, ());
            s.take_batch();
            t += SimDuration::from_millis(10);
        }
        let rate = s.estimated_rate().unwrap();
        assert!((rate - 100.0).abs() < 5.0, "rate={rate}");
    }

    #[test]
    fn fifo_queue_preserves_arrival_order() {
        let mut q = ProgramQueue::new(QueueDiscipline::Fifo);
        q.push(1, true, "a");
        q.push(2, false, "b");
        q.push(1, true, "c");
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop(), Some("a"));
        assert_eq!(q.pop(), Some("b"));
        assert_eq!(q.pop(), Some("c"));
        assert!(q.is_empty());
    }

    #[test]
    fn mlfq_demotes_on_service_ladder() {
        let cfg = MlfqConfig {
            levels: 3,
            quantum_tokens: 100,
        };
        let mut q: ProgramQueue<u32> = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        assert_eq!(q.level_for(1, true), 0);
        q.charge(1, true, 99);
        assert_eq!(q.level_for(1, true), 0, "under quantum");
        q.charge(1, true, 1);
        assert_eq!(q.level_for(1, true), 1, "first demotion at 100");
        q.charge(1, true, 100);
        assert_eq!(q.level_for(1, true), 2, "second demotion at 200");
        q.charge(1, true, 10_000);
        assert_eq!(q.level_for(1, true), 2, "bottoms out at levels-1");
    }

    #[test]
    fn mlfq_prioritises_low_service_programs() {
        let cfg = MlfqConfig {
            levels: 4,
            quantum_tokens: 10,
        };
        let mut q = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        q.charge(1, true, 1000); // long-running program
        q.push(1, true, "old");
        q.push(2, true, "new"); // fresh program, zero service
        assert_eq!(q.pop(), Some("new"), "fresh program admitted first");
        assert_eq!(q.pop(), Some("old"));
    }

    #[test]
    fn mlfq_speculative_preds_yield_and_do_not_accrue_service() {
        let cfg = MlfqConfig {
            levels: 4,
            quantum_tokens: 10,
        };
        let mut q = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        // Speculative work queues one level down...
        assert_eq!(q.level_for(1, false), q.level_for(1, true) + 1);
        q.push(1, false, "spec");
        q.push(2, true, "crit");
        assert_eq!(q.pop(), Some("crit"), "critical path first");
        // ...and charging it does not demote the program.
        q.charge(1, false, 10_000);
        assert_eq!(q.service_of(1), 0);
        assert_eq!(q.level_for(1, true), 0);
    }

    #[test]
    fn mlfq_push_front_resumes_before_equal_priority() {
        let cfg = MlfqConfig::default();
        let mut q = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        q.push(1, true, "waiting");
        q.push_front(2, true, "preempted");
        assert_eq!(q.pop(), Some("preempted"));
        assert_eq!(q.pop(), Some("waiting"));
    }

    #[test]
    fn program_queue_forget_resets_service() {
        let mut q: ProgramQueue<()> =
            ProgramQueue::new(QueueDiscipline::Mlfq(MlfqConfig::default()));
        q.charge(7, true, 99_999);
        assert!(q.service_of(7) > 0);
        q.forget(7);
        assert_eq!(q.service_of(7), 0);
        assert_eq!(q.level_for(7, true), 0);
    }

    #[test]
    fn mlfq_cheap_static_hint_keeps_top_priority() {
        let cfg = MlfqConfig {
            levels: 4,
            quantum_tokens: 100,
        };
        let mut q: ProgramQueue<u32> = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        q.set_static_hint(1, Some(5));
        assert_eq!(q.static_hint_of(1), Some(5));
        assert_eq!(q.level_for(1, true), 0, "known-cheap stays at level 0");
        // Hints add to observed service: 95 observed + 5 hinted = quantum.
        q.charge(1, true, 95);
        assert_eq!(q.level_for(1, true), 1, "demotes once hint+service crosses");
    }

    #[test]
    fn mlfq_unbounded_static_hint_seeds_bottom_of_ladder() {
        let cfg = MlfqConfig {
            levels: 4,
            quantum_tokens: 100,
        };
        let mut q: ProgramQueue<u32> = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        q.set_static_hint(1, None);
        assert_eq!(
            q.level_for(1, true),
            cfg.levels - 1,
            "statically unbounded program starts at the bottom"
        );
        // Short work still beats it without having to wait for demotion.
        q.push(1, true, 10);
        q.push(2, true, 20);
        assert_eq!(q.pop(), Some(20));
        assert_eq!(q.pop(), Some(10));
    }

    #[test]
    fn program_queue_forget_clears_static_hint() {
        let mut q: ProgramQueue<()> =
            ProgramQueue::new(QueueDiscipline::Mlfq(MlfqConfig::default()));
        q.set_static_hint(3, None);
        assert!(q.level_for(3, true) > 0);
        q.forget(3);
        assert_eq!(q.static_hint_of(3), None);
        assert_eq!(q.level_for(3, true), 0);
    }

    #[test]
    fn mlfq_cached_levels_match_fresh_ladder_walk() {
        // The slab caches each program's ladder level at mutation time; this
        // pins the cache against a from-scratch ladder walk over every
        // (service, hint) state a randomized op sequence produces.
        let cfg = MlfqConfig {
            levels: 5,
            quantum_tokens: 64,
        };
        let fresh_level = |service: u64, hint: u64| -> usize {
            let total = service.saturating_add(hint);
            let mut level = 0usize;
            let mut bound = cfg.quantum_tokens.max(1);
            while total >= bound && level + 1 < cfg.levels {
                level += 1;
                bound = bound.saturating_mul(2);
            }
            level
        };
        let mut q: ProgramQueue<u64> = ProgramQueue::new(QueueDiscipline::Mlfq(cfg));
        let mut reference: std::collections::BTreeMap<u64, (u64, u64)> =
            std::collections::BTreeMap::new();
        let mut x = 0x2545F491_4F6C_DD1Du64;
        for _ in 0..4000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pid = x % 17;
            match (x >> 8) % 4 {
                0 => {
                    let tokens = (x >> 16) % 200;
                    q.charge(pid, true, tokens);
                    reference.entry(pid).or_default().0 += tokens;
                }
                1 => {
                    let hint = if (x >> 16) % 3 == 0 {
                        None
                    } else {
                        Some((x >> 16) % 500)
                    };
                    q.set_static_hint(pid, hint);
                    let eff = hint.unwrap_or_else(|| {
                        cfg.quantum_tokens * (1u64 << (cfg.levels as u32 - 1))
                    });
                    reference.entry(pid).or_default().1 = eff;
                }
                2 => {
                    q.forget(pid);
                    reference.remove(&pid);
                }
                _ => {}
            }
            for check in 0..17u64 {
                let (service, hint) = reference.get(&check).copied().unwrap_or((0, 0));
                assert_eq!(
                    q.level_for(check, true),
                    fresh_level(service, hint),
                    "cached level drifted for pid {check} (service={service} hint={hint})"
                );
            }
        }
    }

    #[test]
    fn fifo_ignores_static_hints() {
        let mut q: ProgramQueue<u32> = ProgramQueue::new(QueueDiscipline::Fifo);
        q.set_static_hint(1, None);
        assert_eq!(q.level_for(1, true), 0);
    }
}
