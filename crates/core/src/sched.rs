//! The batch inference scheduler (§4.4).
//!
//! `pred` system calls park their threads in the *inference pool*; this
//! scheduler decides **when** to close a pool snapshot into a GPU batch.
//! "Executing the batch prematurely can result in underutilized GPU
//! resources ... delaying it excessively can increase wait times": the
//! [`BatchPolicy`] spans that trade-off, including the paper's adaptive
//! policy that sizes the wait from the observed `pred` arrival rate
//! (a Poisson-process view of syscall arrivals).

use std::collections::VecDeque;

use symphony_sim::{SimDuration, SimTime};

/// When to launch a pooled batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchPolicy {
    /// Launch whenever the GPU is idle and the pool is non-empty.
    Immediate,
    /// Wait until `max_batch` calls pooled or `max_wait` elapsed since the
    /// oldest pooled call.
    FixedWindow {
        /// Longest time the oldest call may wait.
        max_wait: SimDuration,
        /// Launch as soon as this many calls are pooled.
        max_batch: usize,
    },
    /// Estimate the `pred` arrival rate with an EWMA over inter-arrival
    /// gaps and wait just long enough to plausibly reach `target_batch`,
    /// capped by `max_wait`.
    Adaptive {
        /// Batch size worth waiting for.
        target_batch: usize,
        /// Hard cap on the oldest call's wait.
        max_wait: SimDuration,
    },
}

/// Scheduler verdict for the current state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Decision {
    /// Close the pool into a batch now.
    LaunchNow,
    /// Re-evaluate at this time (the kernel arms a timer).
    WaitUntil(SimTime),
    /// Nothing to do (empty pool or busy GPU).
    Idle,
}

/// EWMA weight for inter-arrival gaps.
const GAP_ALPHA: f64 = 0.2;

/// The inference pool plus launch policy.
#[derive(Debug)]
pub struct InferScheduler<T> {
    policy: BatchPolicy,
    max_batch: usize,
    pool: VecDeque<(SimTime, T)>,
    last_arrival: Option<SimTime>,
    ewma_gap: Option<f64>,
}

impl<T> InferScheduler<T> {
    /// Creates a scheduler with a policy and a global batch-size cap.
    ///
    /// # Panics
    ///
    /// Panics if `max_batch == 0`.
    pub fn new(policy: BatchPolicy, max_batch: usize) -> Self {
        assert!(max_batch > 0, "max_batch must be positive");
        InferScheduler {
            policy,
            max_batch,
            pool: VecDeque::new(),
            last_arrival: None,
            ewma_gap: None,
        }
    }

    /// The configured policy.
    pub fn policy(&self) -> BatchPolicy {
        self.policy
    }

    /// Pending `pred` calls.
    pub fn pool_len(&self) -> usize {
        self.pool.len()
    }

    /// Returns `true` when no calls are pooled.
    pub fn is_empty(&self) -> bool {
        self.pool.is_empty()
    }

    /// Current arrival-rate estimate in calls/second (`None` before two
    /// arrivals).
    pub fn estimated_rate(&self) -> Option<f64> {
        self.ewma_gap.map(|g| 1.0 / g.max(1e-9))
    }

    /// Records a `pred` arrival.
    pub fn on_arrival(&mut self, now: SimTime, entry: T) {
        if let Some(last) = self.last_arrival {
            let gap = now.duration_since(last).as_secs_f64();
            self.ewma_gap = Some(match self.ewma_gap {
                Some(e) => e * (1.0 - GAP_ALPHA) + gap * GAP_ALPHA,
                None => gap,
            });
        }
        self.last_arrival = Some(now);
        self.pool.push_back((now, entry));
    }

    /// Decides what to do given the GPU's state. Idempotent: safe to call
    /// after every kernel state change and on stale timers.
    pub fn decide(&self, now: SimTime, gpu_idle: bool) -> Decision {
        if !gpu_idle || self.pool.is_empty() {
            return Decision::Idle;
        }
        let oldest = self.pool.front().expect("non-empty").0;
        match self.policy {
            BatchPolicy::Immediate => Decision::LaunchNow,
            BatchPolicy::FixedWindow {
                max_wait,
                max_batch,
            } => {
                if self.pool.len() >= max_batch.min(self.max_batch) {
                    return Decision::LaunchNow;
                }
                let deadline = oldest + max_wait;
                if now >= deadline {
                    Decision::LaunchNow
                } else {
                    Decision::WaitUntil(deadline)
                }
            }
            BatchPolicy::Adaptive {
                target_batch,
                max_wait,
            } => {
                let target = target_batch.min(self.max_batch);
                if self.pool.len() >= target {
                    return Decision::LaunchNow;
                }
                // Expected time to fill the rest of the batch at the
                // observed rate; with no estimate yet, launch immediately
                // rather than guess.
                let Some(gap) = self.ewma_gap else {
                    return Decision::LaunchNow;
                };
                // If not even one more call is expected within the wait cap,
                // waiting cannot grow the batch: be work-conserving.
                if SimDuration::from_secs_f64(gap) >= max_wait {
                    return Decision::LaunchNow;
                }
                let need = (target - self.pool.len()) as f64;
                let fill = SimDuration::from_secs_f64(need * gap);
                let deadline = oldest + fill.min(max_wait);
                if now >= deadline {
                    Decision::LaunchNow
                } else {
                    Decision::WaitUntil(deadline)
                }
            }
        }
    }

    /// Removes up to the batch-size cap of oldest entries.
    pub fn take_batch(&mut self) -> Vec<T> {
        let n = self.pool.len().min(self.max_batch);
        self.pool.drain(..n).map(|(_, e)| e).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn immediate_launches_when_idle_and_nonempty() {
        let mut s = InferScheduler::new(BatchPolicy::Immediate, 8);
        assert_eq!(s.decide(at(0), true), Decision::Idle);
        s.on_arrival(at(1), "a");
        assert_eq!(s.decide(at(1), true), Decision::LaunchNow);
        assert_eq!(s.decide(at(1), false), Decision::Idle, "GPU busy");
    }

    #[test]
    fn fixed_window_waits_then_fires() {
        let mut s = InferScheduler::new(
            BatchPolicy::FixedWindow {
                max_wait: SimDuration::from_millis(10),
                max_batch: 4,
            },
            8,
        );
        s.on_arrival(at(5), 1);
        assert_eq!(s.decide(at(5), true), Decision::WaitUntil(at(15)));
        assert_eq!(s.decide(at(15), true), Decision::LaunchNow);
    }

    #[test]
    fn fixed_window_fires_on_full_batch() {
        let mut s = InferScheduler::new(
            BatchPolicy::FixedWindow {
                max_wait: SimDuration::from_secs(1),
                max_batch: 3,
            },
            8,
        );
        for i in 0..3 {
            s.on_arrival(at(i), i);
        }
        assert_eq!(s.decide(at(2), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_launches_without_rate_estimate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 8,
                max_wait: SimDuration::from_millis(50),
            },
            8,
        );
        s.on_arrival(at(0), ());
        assert_eq!(s.decide(at(0), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_waits_proportionally_to_rate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 4,
                max_wait: SimDuration::from_millis(100),
            },
            8,
        );
        // Arrivals every 2 ms -> gap estimate 2 ms.
        s.on_arrival(at(0), ());
        s.on_arrival(at(2), ());
        match s.decide(at(2), true) {
            Decision::WaitUntil(t) => {
                // Needs 2 more at ~2 ms each: deadline ≈ oldest + 4 ms.
                assert!(t > at(2) && t <= at(0) + SimDuration::from_millis(10), "t={t}");
            }
            other => panic!("expected WaitUntil, got {other:?}"),
        }
        // Target reached -> launch.
        s.on_arrival(at(3), ());
        s.on_arrival(at(4), ());
        assert_eq!(s.decide(at(4), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_is_work_conserving_at_low_rate() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 64,
                max_wait: SimDuration::from_millis(5),
            },
            64,
        );
        // Slow arrivals: 1 per 100 ms — no further call can land within the
        // 5 ms window, so waiting would be pure latency tax.
        s.on_arrival(at(0), ());
        s.on_arrival(at(100), ());
        assert_eq!(s.decide(at(100), true), Decision::LaunchNow);
    }

    #[test]
    fn adaptive_waits_when_rate_justifies_it() {
        let mut s = InferScheduler::new(
            BatchPolicy::Adaptive {
                target_batch: 64,
                max_wait: SimDuration::from_millis(5),
            },
            64,
        );
        // Fast arrivals: 1 per ms — the window can accumulate ~5 calls.
        s.on_arrival(at(0), ());
        s.on_arrival(at(1), ());
        match s.decide(at(1), true) {
            Decision::WaitUntil(t) => assert_eq!(t, at(0) + SimDuration::from_millis(5)),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn take_batch_respects_cap_and_order() {
        let mut s = InferScheduler::new(BatchPolicy::Immediate, 3);
        for i in 0..5 {
            s.on_arrival(at(i), i);
        }
        assert_eq!(s.take_batch(), vec![0, 1, 2]);
        assert_eq!(s.pool_len(), 2);
        assert_eq!(s.take_batch(), vec![3, 4]);
        assert!(s.is_empty());
    }

    #[test]
    fn rate_estimate_converges() {
        let mut s: InferScheduler<()> = InferScheduler::new(BatchPolicy::Immediate, 8);
        assert_eq!(s.estimated_rate(), None);
        let mut t = SimTime::ZERO;
        for _ in 0..100 {
            s.on_arrival(t, ());
            s.take_batch();
            t += SimDuration::from_millis(10);
        }
        let rate = s.estimated_rate().unwrap();
        assert!((rate - 100.0).abs() < 5.0, "rate={rate}");
    }
}
