//! Symphony — an operating system for LLM Inference Programs (LIPs).
//!
//! This crate is the reproduction's core contribution, implementing §3–§4 of
//! *Serve Programs, Not Prompts* (HotOS '25): the unit of service is a
//! *program*, not a prompt. A LIP is ordinary code that drives generation
//! through fine-grained system calls:
//!
//! - **`pred` as a system call** (§4.1): one model forward pass over explicit
//!   `(token, position)` pairs against a KV *file*, returning the full
//!   next-token distribution for every input token. The autoregressive loop,
//!   constrained decoding, speculative decoding — all live in the LIP.
//! - **KV cache as files** (§4.2): LIPs create, fork (copy-on-write), extract,
//!   merge, link, lock, pin and swap KV files through KVFS syscalls.
//! - **Generations as threads** (§4.3): LIPs spawn threads for parallel
//!   generation (Tree-of-Thought), call tools server-side, and talk to other
//!   LIPs over IPC. While a thread waits on I/O, the kernel can offload its
//!   process's KV files to host memory and restore them on completion.
//! - **Two-level scheduling** (§4.4): a thread scheduler resumes LIP threads
//!   deterministically; a batch inference scheduler aggregates `pred` calls
//!   into GPU batches under a pluggable policy (immediate, fixed window, or
//!   adaptive Poisson-rate).
//!
//! # Execution model
//!
//! LIPs are real OS threads, but the kernel resumes them **one at a time** on
//! a discrete-event virtual clock and waits for each thread's next syscall
//! before touching another, so whole serving runs are deterministic given a
//! seed. LIP compute is *charged* (per-syscall virtual cost), not measured.
//!
//! # Examples
//!
//! A miniature text-completion LIP (the paper's Figure 2 without the fork):
//!
//! ```
//! use symphony::{Kernel, KernelConfig, SysError};
//!
//! let mut kernel = Kernel::new(KernelConfig::for_tests());
//! let pid = kernel.spawn_process("quickstart", "the system", |ctx| {
//!     let prompt = ctx.tokenize(&ctx.args())?;
//!     let kv = ctx.kv_create()?;
//!     let mut dist = ctx
//!         .pred_positions(kv, &prompt, 0)?
//!         .pop()
//!         .ok_or(SysError::BadArgument)?;
//!     let mut pos = prompt.len() as u32;
//!     for _ in 0..8 {
//!         let tok = dist.argmax();
//!         if tok == ctx.eos() {
//!             break;
//!         }
//!         ctx.emit_tokens(&[tok])?;
//!         dist = ctx.pred(kv, &[(tok, pos)])?.remove(0);
//!         pos += 1;
//!     }
//!     ctx.kv_remove(kv)?;
//!     Ok(())
//! });
//! kernel.run();
//! assert!(kernel.record(pid).unwrap().status.is_ok());
//! ```

pub mod faults;
pub mod kernel;
mod lip_pool;
pub mod resilience;
pub mod sampling;
pub mod sched;
pub mod syscall;
pub mod tools;
pub mod types;
pub mod wal;

pub use faults::{FaultInjector, FaultPlan, FaultStats, ToolFaultKind};
pub use kernel::{Kernel, KernelConfig, ProgramImage, SessionEvent, SessionSink};
pub use resilience::{AdmissionPolicy, BreakerPolicy, BreakerStateView, ResilienceStats};
pub use sched::{
    BatchPolicy, ContinuousConfig, ExecMode, MlfqConfig, ProgramQueue, QueueDiscipline,
};
pub use syscall::Ctx;
pub use tools::{ToolOutcome, ToolRegistry, ToolSpec};
pub use types::{ExitStatus, Limits, Pid, ProcessRecord, ProcessUsage, SysError, Tid};
pub use wal::{RecoveryReport, WalConfig, WalError, DEFAULT_CHECKPOINT_EVERY};

// Re-export the substrate types LIPs interact with.
pub use symphony_kvfs::{
    FileId, FileStat, KvEntry, KvError, KvStats, Mode, OwnerId, Residency, RestoreReport,
};
pub use symphony_model::{CtxFingerprint, Dist, ModelConfig, TokenId};
pub use symphony_sim::{RetryPolicy, SimDuration, SimTime};

// Re-export the telemetry substrate so embedders can inspect traces and
// metrics without depending on `symphony-telemetry` directly.
pub use symphony_telemetry as telemetry;
pub use symphony_telemetry::{
    analyze, build_forest, collapsed_stacks, render_report, Collector, EdgeKind, EventBus,
    EventKind, LatencyBreakdown, MetricValue, MetricsRegistry, MetricsSnapshot, Phase, SwapDir,
    TimedEvent, TraceForest, PHASES,
};
