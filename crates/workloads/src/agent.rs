//! Tool-calling agent traces (§2.2): a fixed plan of tool invocations
//! interleaved with generation, used to compare server-side execution
//! against client-side round trips.

use symphony_sim::{Rng, SimDuration};

/// One agent task: how many tool calls it makes and how much it generates
/// between them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AgentTrace {
    /// Tool names invoked, in order.
    pub calls: Vec<String>,
    /// Tokens generated before each call and after the last (length =
    /// `calls.len() + 1`).
    pub gen_segments: Vec<usize>,
    /// Prompt length in tokens.
    pub prompt_tokens: usize,
}

impl AgentTrace {
    /// Total generated tokens across all segments.
    pub fn total_generated(&self) -> usize {
        self.gen_segments.iter().sum()
    }
}

/// Generator of agent traces.
#[derive(Debug)]
pub struct AgentWorkload {
    rng: Rng,
    tools: Vec<String>,
    calls_per_task: usize,
    tokens_per_segment: usize,
    prompt_tokens: usize,
    /// Modeled client↔server network round-trip time (used by harnesses to
    /// charge baseline function-calling round trips).
    pub client_rtt: SimDuration,
}

impl AgentWorkload {
    /// Creates a workload drawing uniformly from `tools`.
    pub fn new(
        tools: &[&str],
        calls_per_task: usize,
        tokens_per_segment: usize,
        prompt_tokens: usize,
        client_rtt: SimDuration,
        seed: u64,
    ) -> Self {
        assert!(!tools.is_empty());
        AgentWorkload {
            rng: Rng::new(seed),
            tools: tools.iter().map(|s| s.to_string()).collect(),
            calls_per_task,
            tokens_per_segment,
            prompt_tokens,
            client_rtt,
        }
    }

    /// Draws one trace.
    pub fn next_trace(&mut self) -> AgentTrace {
        let calls = (0..self.calls_per_task)
            .map(|_| self.tools[self.rng.gen_index(self.tools.len())].clone())
            .collect();
        let gen_segments = (0..=self.calls_per_task)
            .map(|_| {
                let jitter = self.rng.gen_range(0, (self.tokens_per_segment as u64 / 2).max(1));
                self.tokens_per_segment / 2 + jitter as usize + 1
            })
            .collect();
        AgentTrace {
            calls,
            gen_segments,
            prompt_tokens: self.prompt_tokens,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape() {
        let mut w = AgentWorkload::new(
            &["search", "calc"],
            3,
            20,
            100,
            SimDuration::from_millis(40),
            1,
        );
        let t = w.next_trace();
        assert_eq!(t.calls.len(), 3);
        assert_eq!(t.gen_segments.len(), 4);
        assert!(t.calls.iter().all(|c| c == "search" || c == "calc"));
        assert!(t.total_generated() >= 4);
        assert_eq!(t.prompt_tokens, 100);
    }

    #[test]
    fn deterministic() {
        let mk = || {
            AgentWorkload::new(&["a", "b"], 2, 10, 50, SimDuration::ZERO, 9).next_trace()
        };
        assert_eq!(mk(), mk());
    }
}
