//! Tree-of-Thought shapes (§4.3): branching factors and depths for parallel
//! generation experiments.

use symphony_sim::Rng;

/// Shape of one Tree-of-Thought task.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TotShape {
    /// Branches explored per expansion.
    pub branching: usize,
    /// Expansion depth.
    pub depth: usize,
    /// Tokens generated per branch hypothesis.
    pub tokens_per_branch: usize,
    /// Prefix (problem statement) length in tokens.
    pub prefix_tokens: usize,
}

impl TotShape {
    /// Total hypotheses generated across the whole tree.
    pub fn total_branches(&self) -> usize {
        // b + b^2 + ... + b^depth.
        let mut total = 0usize;
        let mut level = 1usize;
        for _ in 0..self.depth {
            level = level.saturating_mul(self.branching);
            total = total.saturating_add(level);
        }
        total
    }
}

/// Generator of ToT task shapes.
#[derive(Debug)]
pub struct TotWorkload {
    rng: Rng,
    base: TotShape,
}

impl TotWorkload {
    /// Creates a workload around a base shape; draws jitter the branch
    /// counts by ±1.
    pub fn new(base: TotShape, seed: u64) -> Self {
        assert!(base.branching >= 1 && base.depth >= 1);
        TotWorkload {
            rng: Rng::new(seed),
            base,
        }
    }

    /// Draws one task shape.
    pub fn next_shape(&mut self) -> TotShape {
        let jitter = (self.rng.gen_range(0, 3) as i64 - 1).max(-(self.base.branching as i64 - 1));
        TotShape {
            branching: (self.base.branching as i64 + jitter) as usize,
            ..self.base
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn total_branch_arithmetic() {
        let s = TotShape {
            branching: 3,
            depth: 2,
            tokens_per_branch: 20,
            prefix_tokens: 100,
        };
        assert_eq!(s.total_branches(), 3 + 9);
        let linear = TotShape { branching: 1, depth: 4, ..s };
        assert_eq!(linear.total_branches(), 4);
    }

    #[test]
    fn shapes_jitter_but_stay_positive() {
        let mut w = TotWorkload::new(
            TotShape {
                branching: 3,
                depth: 2,
                tokens_per_branch: 10,
                prefix_tokens: 50,
            },
            1,
        );
        for _ in 0..100 {
            let s = w.next_shape();
            assert!((2..=4).contains(&s.branching));
            assert_eq!(s.depth, 2);
        }
    }
}
