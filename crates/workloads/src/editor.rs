//! The code-editor keystroke workload from the paper's §2 running example:
//! "As the user types, each keystroke ideally triggers an update."

use symphony_sim::{Exponential, Rng, SimDuration};
use symphony_tokenizer::CorpusGen;

/// A keystroke session: an initial buffer plus a stream of appended chunks
/// (each triggering an autocompletion request).
#[derive(Debug, Clone, PartialEq)]
pub struct EditorTrace {
    /// The file contents already in the buffer when the session starts.
    pub initial_buffer: String,
    /// Appended text chunks, one per completion trigger.
    pub appends: Vec<String>,
    /// Gap before each append (typing time).
    pub gaps: Vec<SimDuration>,
}

/// Generator of editor sessions.
#[derive(Debug)]
pub struct EditorWorkload {
    rng: Rng,
    initial_words: usize,
    keystrokes: usize,
    typing_gap: Exponential,
}

impl EditorWorkload {
    /// Creates a workload: sessions start with `initial_words` words in the
    /// buffer and trigger `keystrokes` completions with exponential typing
    /// gaps around `gap_mean`.
    pub fn new(initial_words: usize, keystrokes: usize, gap_mean: SimDuration, seed: u64) -> Self {
        EditorWorkload {
            rng: Rng::new(seed),
            initial_words,
            keystrokes,
            typing_gap: Exponential::new(1.0 / gap_mean.as_secs_f64()),
        }
    }

    /// Draws one session.
    pub fn next_trace(&mut self) -> EditorTrace {
        let mut gen = CorpusGen::new(self.rng.next_u64());
        let initial_buffer = gen.paragraph(self.initial_words);
        let mut appends = Vec::with_capacity(self.keystrokes);
        let mut gaps = Vec::with_capacity(self.keystrokes);
        for _ in 0..self.keystrokes {
            // A "keystroke" appends a word or two (word-completion granularity).
            appends.push(format!(" {}", gen.word()));
            gaps.push(SimDuration::from_secs_f64(
                self.typing_gap.sample(&mut self.rng),
            ));
        }
        EditorTrace {
            initial_buffer,
            appends,
            gaps,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_shape() {
        let mut w = EditorWorkload::new(200, 30, SimDuration::from_millis(300), 1);
        let t = w.next_trace();
        assert_eq!(t.appends.len(), 30);
        assert_eq!(t.gaps.len(), 30);
        assert!(t.initial_buffer.split_whitespace().count() >= 180);
        assert!(t.appends.iter().all(|a| a.starts_with(' ')));
    }

    #[test]
    fn deterministic() {
        let mk = || EditorWorkload::new(50, 5, SimDuration::from_millis(100), 3).next_trace();
        assert_eq!(mk(), mk());
    }
}
