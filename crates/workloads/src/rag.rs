//! The Figure 3 RAG workload.
//!
//! "The application inputs a topic, fetches the relevant document, and
//! generates an answer. There are 100 documents, each containing 3,000
//! tokens." Topics are drawn from a rank-popularity law whose skew is the
//! paper's *Pareto index* (small index ⇒ a few topics dominate); arrivals
//! are Poisson.

use symphony_sim::{PoissonProcess, Rng, SimTime, Zipf};
use symphony_tokenizer::{Bpe, CorpusGen, TokenId};

/// The document corpus behind the RAG application.
#[derive(Debug, Clone)]
pub struct RagCorpus {
    /// `docs[topic]` is the pre-tokenised document for that topic.
    docs: Vec<Vec<TokenId>>,
}

impl RagCorpus {
    /// Generates `num_docs` documents of `tokens_per_doc` tokens each,
    /// deterministically from `seed`.
    pub fn generate(bpe: &Bpe, num_docs: usize, tokens_per_doc: usize, seed: u64) -> Self {
        let docs = (0..num_docs)
            .map(|i| {
                let mut g = CorpusGen::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                bpe.encode(&g.document_with_tokens(bpe, tokens_per_doc))
            })
            .collect();
        RagCorpus { docs }
    }

    /// Number of documents/topics.
    pub fn len(&self) -> usize {
        self.docs.len()
    }

    /// Returns `true` if the corpus has no documents.
    pub fn is_empty(&self) -> bool {
        self.docs.is_empty()
    }

    /// The tokenised document for a topic.
    pub fn doc(&self, topic: usize) -> &[TokenId] {
        &self.docs[topic]
    }
}

/// One RAG request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RagRequest {
    /// Arrival time.
    pub at: SimTime,
    /// Topic rank (0 = most popular under the drawn popularity order).
    pub topic: usize,
    /// The user's question text.
    pub query: String,
}

/// Generator of Poisson-arriving, Zipf-topic RAG requests.
#[derive(Debug)]
pub struct RagWorkload {
    popularity: Zipf,
    arrivals: PoissonProcess,
    rng: Rng,
    next_at: SimTime,
    issued: u64,
}

impl RagWorkload {
    /// Creates a workload over `num_topics` topics.
    ///
    /// `pareto_index` follows the paper's axis: *small* values concentrate
    /// requests on few topics. `rate` is the arrival rate in requests/sec.
    pub fn new(num_topics: usize, pareto_index: f64, rate: f64, seed: u64) -> Self {
        RagWorkload {
            popularity: Zipf::from_pareto_index(num_topics, pareto_index),
            arrivals: PoissonProcess::new(rate),
            rng: Rng::new(seed),
            next_at: SimTime::ZERO,
            issued: 0,
        }
    }

    /// Probability mass of the `k` most popular topics — the best hit rate
    /// any cache of `k` documents can reach.
    pub fn top_mass(&self, k: usize) -> f64 {
        self.popularity.top_mass(k)
    }

    /// Draws the next request.
    pub fn next_request(&mut self) -> RagRequest {
        self.next_at += self.arrivals.next_gap(&mut self.rng);
        let topic = self.popularity.sample(&mut self.rng);
        self.issued += 1;
        RagRequest {
            at: self.next_at,
            topic,
            query: format!("explain the design of topic {topic} in detail"),
        }
    }

    /// Draws a fixed number of requests.
    pub fn take(&mut self, n: usize) -> Vec<RagRequest> {
        (0..n).map(|_| self.next_request()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_deterministic_and_sized() {
        let bpe = Bpe::default_tokenizer();
        let a = RagCorpus::generate(bpe, 5, 200, 1);
        let b = RagCorpus::generate(bpe, 5, 200, 1);
        assert_eq!(a.len(), 5);
        for i in 0..5 {
            assert_eq!(a.doc(i), b.doc(i));
            let n = a.doc(i).len();
            assert!((150..=200).contains(&n), "doc {i} has {n} tokens");
        }
        // Different seeds give different docs.
        let c = RagCorpus::generate(bpe, 5, 200, 2);
        assert_ne!(a.doc(0), c.doc(0));
    }

    #[test]
    fn arrivals_are_monotone_and_rate_matched() {
        let mut w = RagWorkload::new(100, 1.0, 50.0, 3);
        let reqs = w.take(2000);
        for pair in reqs.windows(2) {
            assert!(pair[0].at <= pair[1].at);
        }
        let span = reqs.last().unwrap().at.as_secs_f64();
        let rate = 2000.0 / span;
        assert!((rate - 50.0).abs() < 5.0, "empirical rate {rate}");
    }

    #[test]
    fn small_pareto_index_concentrates_topics() {
        let mut heavy = RagWorkload::new(100, 0.5, 10.0, 4);
        let mut flat = RagWorkload::new(100, 4.0, 10.0, 4);
        let count_top20 = |reqs: &[RagRequest]| {
            reqs.iter().filter(|r| r.topic < 20).count() as f64 / reqs.len() as f64
        };
        let h = count_top20(&heavy.take(5000));
        let f = count_top20(&flat.take(5000));
        assert!(h > 0.85, "heavy skew should hit top-20 often: {h}");
        assert!(f < h, "flat popularity spreads out: {f} vs {h}");
        assert!((heavy.top_mass(20) - h).abs() < 0.05);
    }

    #[test]
    fn topics_stay_in_range() {
        let mut w = RagWorkload::new(10, 1.0, 10.0, 5);
        for r in w.take(1000) {
            assert!(r.topic < 10);
            assert!(r.query.contains(&r.topic.to_string()));
        }
    }
}
