//! Multi-round chat sessions (§2.1's motivation for KV retention).

use symphony_sim::{Exponential, Rng, SimDuration};
use symphony_tokenizer::CorpusGen;

/// One chat session: a sequence of user turns with think-time gaps.
#[derive(Debug, Clone, PartialEq)]
pub struct ChatSession {
    /// User messages, one per round.
    pub turns: Vec<String>,
    /// Gap before each turn (think time).
    pub gaps: Vec<SimDuration>,
}

/// Generator of chat sessions.
#[derive(Debug)]
pub struct ChatWorkload {
    rng: Rng,
    rounds_mean: f64,
    think_time: Exponential,
    words_per_turn: usize,
}

impl ChatWorkload {
    /// Creates a workload with geometric round counts around `rounds_mean`
    /// and exponential think times around `think_mean`.
    pub fn new(rounds_mean: f64, think_mean: SimDuration, words_per_turn: usize, seed: u64) -> Self {
        assert!(rounds_mean >= 1.0, "sessions need at least one round");
        ChatWorkload {
            rng: Rng::new(seed),
            rounds_mean,
            think_time: Exponential::new(1.0 / think_mean.as_secs_f64()),
            words_per_turn,
        }
    }

    /// Draws one session.
    pub fn next_session(&mut self) -> ChatSession {
        let mut turns = Vec::new();
        let mut gaps = Vec::new();
        let continue_p = 1.0 - 1.0 / self.rounds_mean;
        let mut gen = CorpusGen::new(self.rng.next_u64());
        loop {
            gaps.push(SimDuration::from_secs_f64(
                self.think_time.sample(&mut self.rng),
            ));
            turns.push(gen.paragraph(self.words_per_turn));
            if !self.rng.gen_bool(continue_p) {
                break;
            }
        }
        ChatSession { turns, gaps }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sessions_have_geometric_rounds() {
        let mut w = ChatWorkload::new(4.0, SimDuration::from_secs(5), 20, 1);
        let mut total = 0usize;
        for _ in 0..500 {
            let s = w.next_session();
            assert!(!s.turns.is_empty());
            assert_eq!(s.turns.len(), s.gaps.len());
            total += s.turns.len();
        }
        let mean = total as f64 / 500.0;
        assert!((3.0..5.0).contains(&mean), "mean rounds {mean}");
    }

    #[test]
    fn deterministic() {
        let a = ChatWorkload::new(3.0, SimDuration::from_secs(1), 10, 7).next_session();
        let b = ChatWorkload::new(3.0, SimDuration::from_secs(1), 10, 7).next_session();
        assert_eq!(a, b);
    }
}
