//! Workload generators for the experiments.
//!
//! Each generator produces a deterministic stream of *logical requests* (no
//! serving-system types), so the same workload can drive Symphony, the
//! vLLM-like baseline and the TGI-like baseline identically.
//!
//! - [`rag`]: the paper's Figure 3 scenario — topics drawn from a Pareto/Zipf
//!   popularity law over a fixed document corpus, Poisson arrivals.
//! - [`chat`]: multi-round conversations (motivates KV retention, §2.1).
//! - [`tot`]: Tree-of-Thought branching shapes (§4.3).
//! - [`agent`]: tool-calling agents (client vs. server execution, §2.2).
//! - [`editor`]: a code editor's keystroke stream (the §2 running example).

pub mod agent;
pub mod chat;
pub mod editor;
pub mod rag;
pub mod tot;

pub use agent::{AgentTrace, AgentWorkload};
pub use chat::{ChatSession, ChatWorkload};
pub use editor::{EditorTrace, EditorWorkload};
pub use rag::{RagCorpus, RagRequest, RagWorkload};
pub use tot::{TotShape, TotWorkload};
