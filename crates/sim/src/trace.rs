//! Structured run traces for determinism checks and debugging.
//!
//! A [`Trace`] is an append-only log of `(time, component, message)` entries.
//! Integration tests run a whole serving simulation twice with the same seed
//! and assert that the two trace fingerprints match — which pins down every
//! scheduling, batching and sampling decision in the stack.

use crate::time::SimTime;

/// One trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEntry {
    /// Virtual time of the event.
    pub at: SimTime,
    /// Emitting component, e.g. `"kernel"` or `"infer_sched"`.
    pub component: &'static str,
    /// Human-readable detail; also part of the fingerprint.
    pub message: String,
}

/// An append-only event log with a stable 64-bit fingerprint.
#[derive(Debug, Default)]
pub struct Trace {
    entries: Vec<TraceEntry>,
    enabled: bool,
}

impl Trace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: true,
        }
    }

    /// Creates a disabled trace: records nothing, fingerprint stays at seed.
    ///
    /// Benchmarks use this to avoid accumulating entries on long runs.
    pub fn disabled() -> Self {
        Trace {
            entries: Vec::new(),
            enabled: false,
        }
    }

    /// Returns `true` if recording is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Appends an entry (no-op when disabled).
    pub fn record(&mut self, at: SimTime, component: &'static str, message: String) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                component,
                message,
            });
        }
    }

    /// Appends an entry, building the message lazily: `message()` only runs
    /// when recording is enabled. Hot paths use this so a disabled trace
    /// costs a branch instead of a `format!` allocation per event.
    pub fn record_with<F: FnOnce() -> String>(
        &mut self,
        at: SimTime,
        component: &'static str,
        message: F,
    ) {
        if self.enabled {
            self.entries.push(TraceEntry {
                at,
                component,
                message: message(),
            });
        }
    }

    /// All recorded entries.
    pub fn entries(&self) -> &[TraceEntry] {
        &self.entries
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// A stable FNV-1a fingerprint over all entries.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |bytes: &[u8]| {
            for &b in bytes {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
        };
        for e in &self.entries {
            mix(&e.at.as_nanos().to_le_bytes());
            mix(e.component.as_bytes());
            mix(e.message.as_bytes());
            mix(&[0xFF]);
        }
        h
    }

    /// Renders the trace as one line per entry (for debugging test failures).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for e in &self.entries {
            out.push_str(&format!("[{}] {}: {}\n", e.at, e.component, e.message));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_traces_same_fingerprint() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        for t in [a.fingerprint(), b.fingerprint()] {
            let _ = t;
        }
        for tr in [&mut a, &mut b] {
            tr.record(SimTime::from_nanos(1), "kernel", "spawn pid=1".into());
            tr.record(SimTime::from_nanos(2), "gpu", "batch size=4".into());
        }
        assert_eq!(a.fingerprint(), b.fingerprint());
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn different_traces_differ() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(SimTime::from_nanos(1), "kernel", "x".into());
        b.record(SimTime::from_nanos(1), "kernel", "y".into());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn time_matters() {
        let mut a = Trace::new();
        let mut b = Trace::new();
        a.record(SimTime::from_nanos(1), "kernel", "x".into());
        b.record(SimTime::from_nanos(2), "kernel", "x".into());
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn disabled_records_nothing() {
        let mut t = Trace::disabled();
        t.record(SimTime::ZERO, "kernel", "ignored".into());
        assert!(t.is_empty());
        assert!(!t.is_enabled());
        assert_eq!(t.fingerprint(), Trace::disabled().fingerprint());
    }

    #[test]
    fn render_contains_entries() {
        let mut t = Trace::new();
        t.record(SimTime::from_nanos(1_000), "io", "tool=search".into());
        let s = t.render();
        assert!(s.contains("io"));
        assert!(s.contains("tool=search"));
    }
}
