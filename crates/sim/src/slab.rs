//! A deterministic slab keyed by monotonically-issued u64 ids.
//!
//! The kernel's hot tables (threads, processes, pending batches, per-program
//! scheduler state) are keyed by ids drawn from monotone counters. A
//! `BTreeMap` pays pointer-chasing and rebalancing on every lookup; this slab
//! stores entries in a dense ring indexed by `id - base`, so lookup is one
//! bounds check and one offset. Removal punches a hole; the ring's ends are
//! trimmed as holes reach them, which keeps memory bounded for FIFO-ish
//! lifecycles (batch ids) as well as grow-only ones (process records).
//!
//! Iteration order is ascending id — identical to the `BTreeMap` order it
//! replaces, so replacing one with the other cannot perturb a deterministic
//! event schedule.

use std::collections::VecDeque;

/// Dense map from monotone u64 ids to values, with ascending iteration.
#[derive(Debug)]
pub struct IdSlab<T> {
    /// Id of `slots[0]`. Meaningless while `slots` is empty.
    base: u64,
    slots: VecDeque<Option<T>>,
    live: usize,
}

impl<T> Default for IdSlab<T> {
    fn default() -> Self {
        IdSlab::new()
    }
}

impl<T> IdSlab<T> {
    /// Creates an empty slab.
    pub fn new() -> Self {
        IdSlab {
            base: 0,
            slots: VecDeque::new(),
            live: 0,
        }
    }

    /// Number of live entries.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Returns `true` when no entries are live.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    fn index(&self, id: u64) -> Option<usize> {
        if self.slots.is_empty() || id < self.base {
            return None;
        }
        let off = (id - self.base) as usize;
        (off < self.slots.len()).then_some(off)
    }

    /// Inserts a value, returning the previous one if the id was live.
    pub fn insert(&mut self, id: u64, value: T) -> Option<T> {
        if self.slots.is_empty() {
            self.base = id;
            self.slots.push_back(Some(value));
            self.live = 1;
            return None;
        }
        if id < self.base {
            // Ids are issued monotonically, so front-growth only happens on
            // out-of-order re-admission (recovery); it stays correct anyway.
            for _ in id..self.base - 1 {
                self.slots.push_front(None);
            }
            self.slots.push_front(Some(value));
            self.base = id;
            self.live += 1;
            return None;
        }
        let off = (id - self.base) as usize;
        if off >= self.slots.len() {
            self.slots.resize_with(off + 1, || None);
        }
        let prev = self.slots[off].replace(value);
        if prev.is_none() {
            self.live += 1;
        }
        prev
    }

    /// Borrows the value for `id`, if live.
    pub fn get(&self, id: u64) -> Option<&T> {
        self.index(id).and_then(|i| self.slots[i].as_ref())
    }

    /// Mutably borrows the value for `id`, if live.
    pub fn get_mut(&mut self, id: u64) -> Option<&mut T> {
        self.index(id).and_then(|i| self.slots[i].as_mut())
    }

    /// Returns `true` when `id` is live.
    pub fn contains_key(&self, id: u64) -> bool {
        self.get(id).is_some()
    }

    /// Removes and returns the value for `id`, trimming emptied ends so the
    /// ring tracks the live id span.
    pub fn remove(&mut self, id: u64) -> Option<T> {
        let i = self.index(id)?;
        let prev = self.slots[i].take();
        if prev.is_some() {
            self.live -= 1;
            while matches!(self.slots.front(), Some(None)) {
                self.slots.pop_front();
                self.base += 1;
            }
            while matches!(self.slots.back(), Some(None)) {
                self.slots.pop_back();
            }
        }
        prev
    }

    /// Iterates `(id, &value)` in ascending id order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, &T)> {
        let base = self.base;
        self.slots
            .iter()
            .enumerate()
            .filter_map(move |(i, s)| s.as_ref().map(|v| (base + i as u64, v)))
    }

    /// Iterates `(id, &mut value)` in ascending id order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (u64, &mut T)> {
        let base = self.base;
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(move |(i, s)| s.as_mut().map(|v| (base + i as u64, v)))
    }

    /// Iterates values in ascending id order.
    pub fn values(&self) -> impl Iterator<Item = &T> {
        self.slots.iter().filter_map(Option::as_ref)
    }

    /// Iterates values mutably in ascending id order.
    pub fn values_mut(&mut self) -> impl Iterator<Item = &mut T> {
        self.slots.iter_mut().filter_map(Option::as_mut)
    }

    /// Iterates live ids in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Removes all entries, yielding `(id, value)` in ascending id order.
    pub fn drain(&mut self) -> impl Iterator<Item = (u64, T)> + '_ {
        let base = self.base;
        self.live = 0;
        self.slots
            .drain(..)
            .enumerate()
            .filter_map(move |(i, s)| s.map(|v| (base + i as u64, v)))
    }
}

impl<T> std::ops::Index<u64> for IdSlab<T> {
    type Output = T;
    fn index(&self, id: u64) -> &T {
        self.get(id).expect("no entry for id")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_round_trip() {
        let mut s = IdSlab::new();
        assert!(s.is_empty());
        assert_eq!(s.insert(1, "a"), None);
        assert_eq!(s.insert(2, "b"), None);
        assert_eq!(s.insert(1, "a2"), Some("a"));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1), Some(&"a2"));
        assert_eq!(s.get(0), None);
        assert_eq!(s.get(99), None);
        assert_eq!(s.remove(1), Some("a2"));
        assert_eq!(s.remove(1), None);
        assert_eq!(s.len(), 1);
        assert!(s.contains_key(2));
    }

    #[test]
    fn iteration_is_ascending_like_btreemap() {
        let mut s = IdSlab::new();
        for id in [5u64, 3, 9, 4] {
            s.insert(id, id * 10);
        }
        let got: Vec<_> = s.iter().collect();
        assert_eq!(got, vec![(3, &30), (4, &40), (5, &50), (9, &90)]);
        assert_eq!(s.keys().collect::<Vec<_>>(), vec![3, 4, 5, 9]);
    }

    #[test]
    fn fifo_removal_keeps_ring_bounded() {
        let mut s = IdSlab::new();
        for wave in 0u64..100 {
            s.insert(wave, wave);
            if wave > 0 {
                s.remove(wave - 1);
            }
            assert!(s.slots.len() <= 2, "ring grew to {}", s.slots.len());
        }
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(99), Some(&99));
    }

    #[test]
    fn interior_holes_then_end_trim() {
        let mut s = IdSlab::new();
        for id in 0u64..10 {
            s.insert(id, id);
        }
        s.remove(5);
        assert_eq!(s.len(), 9);
        // Removing the ends trims through interior holes lazily.
        for id in (6..10).rev() {
            s.remove(id);
        }
        assert_eq!(s.slots.len(), 5, "tail trimmed through the hole");
        for id in 0..5 {
            s.remove(id);
        }
        assert!(s.is_empty());
        assert!(s.slots.is_empty());
    }

    #[test]
    fn drain_yields_ascending_pairs() {
        let mut s = IdSlab::new();
        s.insert(2, 'b');
        s.insert(1, 'a');
        s.insert(4, 'd');
        let got: Vec<_> = s.drain().collect();
        assert_eq!(got, vec![(1, 'a'), (2, 'b'), (4, 'd')]);
        assert!(s.is_empty());
    }
}
