//! The event queue driving virtual time.
//!
//! A simulation is a loop over [`EventQueue::pop`]: each pop advances the
//! clock to the event's timestamp and hands the payload back to the caller.
//! Ties are broken by insertion order (FIFO), which keeps runs deterministic
//! even when many events share a timestamp.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// A pending event: ordering key is `(time, seq)` with the *earliest* first.
struct Entry<E> {
    time: SimTime,
    seq: u64,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want the earliest event on top.
        (other.time, other.seq).cmp(&(self.time, self.seq))
    }
}

/// A virtual-time event queue with a built-in clock.
///
/// The clock only moves forward, and only via [`EventQueue::pop`]. Scheduling
/// an event in the past is a logic error and panics.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    now: SimTime,
    next_seq: u64,
    popped: u64,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Creates an empty queue with the clock at [`SimTime::ZERO`].
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            now: SimTime::ZERO,
            next_seq: 0,
            popped: 0,
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.popped
    }

    /// Schedules `payload` at absolute time `at`.
    ///
    /// # Panics
    ///
    /// Panics if `at` is earlier than the current clock.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        assert!(
            at >= self.now,
            "cannot schedule into the past: at={at} now={}",
            self.now
        );
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Entry {
            time: at,
            seq,
            payload,
        });
    }

    /// Advances the clock to `t` without processing an event. Recovery uses
    /// this to restore a journalled clock before re-scheduling work; normal
    /// simulation should only advance time through [`EventQueue::pop`].
    ///
    /// # Panics
    ///
    /// Panics if `t` is earlier than the current clock or earlier than a
    /// pending event (which would then be popped "in the past").
    pub fn advance_to(&mut self, t: SimTime) {
        assert!(
            t >= self.now,
            "cannot advance backwards: to={t} now={}",
            self.now
        );
        if let Some(head) = self.peek_time() {
            assert!(
                t <= head,
                "cannot advance past a pending event: to={t} head={head}"
            );
        }
        self.now = t;
    }

    /// Timestamp of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.time)
    }

    /// Pops the earliest event, advancing the clock to its timestamp.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        let entry = self.heap.pop()?;
        debug_assert!(entry.time >= self.now);
        self.now = entry.time;
        self.popped += 1;
        Some((entry.time, entry.payload))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(30), "c");
        q.schedule(SimTime::from_nanos(10), "a");
        q.schedule(SimTime::from_nanos(20), "b");
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
        assert_eq!(q.events_processed(), 3);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_nanos(5);
        for i in 0..10 {
            q.schedule(t, i);
        }
        let order: Vec<_> = std::iter::from_fn(|| q.pop()).map(|(_, e)| e).collect();
        assert_eq!(order, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(100), ());
        q.schedule(SimTime::from_nanos(100), ());
        q.schedule(SimTime::from_nanos(200), ());
        assert_eq!(q.now(), SimTime::ZERO);
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(100));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(100));
        q.pop();
        assert_eq!(q.now(), SimTime::from_nanos(200));
    }

    #[test]
    fn schedule_relative_to_now_after_pops() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(50), 1);
        q.pop();
        q.schedule(q.now() + SimDuration::from_nanos(25), 2);
        let (t, e) = q.pop().unwrap();
        assert_eq!((t.as_nanos(), e), (75, 2));
    }

    #[test]
    #[should_panic(expected = "cannot schedule into the past")]
    fn scheduling_in_the_past_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.pop();
        q.schedule(SimTime::from_nanos(5), ());
    }

    #[test]
    fn advance_to_moves_clock_without_popping() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_nanos(40));
        assert_eq!(q.now(), SimTime::from_nanos(40));
        assert_eq!(q.events_processed(), 0);
        q.schedule(SimTime::from_nanos(50), ());
        q.advance_to(SimTime::from_nanos(50));
        let (t, _) = q.pop().unwrap();
        assert_eq!(t, SimTime::from_nanos(50));
    }

    #[test]
    #[should_panic(expected = "cannot advance past a pending event")]
    fn advance_past_pending_event_panics() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(10), ());
        q.advance_to(SimTime::from_nanos(11));
    }

    #[test]
    #[should_panic(expected = "cannot advance backwards")]
    fn advance_backwards_panics() {
        let mut q: EventQueue<()> = EventQueue::new();
        q.advance_to(SimTime::from_nanos(10));
        q.advance_to(SimTime::from_nanos(5));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_nanos(42), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_nanos(42)));
        assert_eq!(q.now(), SimTime::ZERO);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }
}
