//! Discrete-event simulation substrate for the Symphony reproduction.
//!
//! Every serving system in this workspace — the Symphony kernel as well as the
//! vLLM-like and TGI-like baselines — runs on *virtual time* provided by this
//! crate. This mirrors the paper's own methodology ("We conduct simulated
//! experiments", §5) and buys two properties the experiments rely on:
//!
//! - **Determinism.** Given a seed, a whole serving run (arrivals, batch
//!   timings, tool-call latencies) replays bit-identically, which the
//!   integration tests assert.
//! - **Scale.** Load sweeps far beyond wall-clock limits execute in
//!   milliseconds because GPU batches are *timed analytically*, not executed.
//!
//! The crate deliberately has no dependency on the rest of the workspace.
//!
//! # Examples
//!
//! ```
//! use symphony_sim::{EventQueue, SimTime, SimDuration};
//!
//! let mut q: EventQueue<&'static str> = EventQueue::new();
//! q.schedule(SimTime::ZERO + SimDuration::from_micros(5), "second");
//! q.schedule(SimTime::ZERO, "first");
//! assert_eq!(q.pop().unwrap().1, "first");
//! assert_eq!(q.pop().unwrap().1, "second");
//! assert_eq!(q.now(), SimTime::from_nanos(5_000));
//! ```

pub mod dist;
pub mod events;
pub mod frame;
pub mod retry;
pub mod rng;
pub mod slab;
pub mod stats;
pub mod time;
pub mod trace;

pub use dist::{Categorical, Exponential, LogNormal, Pareto, PoissonProcess, Zipf};
pub use events::EventQueue;
pub use retry::RetryPolicy;
pub use rng::Rng;
pub use slab::IdSlab;
pub use stats::{Histogram, OnlineStats, Series};
pub use time::{SimDuration, SimTime};
pub use trace::{Trace, TraceEntry};
