//! The shared frame codec: `[tag u8][len u32][payload][crc u32]`.
//!
//! One framing discipline runs through every byte stream in Symphony — the
//! KVFS journal (`SYMJ`), the kernel write-ahead log (`SYMW`) and the RPC
//! wire protocol (`SYMR`) all append and walk frames through this module,
//! so the checksum, the length prefix and the torn-tail rules can never
//! drift apart between them. Each consumer brings its own magic header and
//! tag space; the codec is agnostic to both.
//!
//! * the CRC is FNV-1a (32-bit) over tag + payload;
//! * all integers are little-endian;
//! * a *torn* tail is any trailing byte run that does not form a complete,
//!   checksummed frame — readers keep the longest valid prefix;
//! * a clean cut at a frame boundary is indistinguishable from a finished
//!   log, and is deliberately *not* reported as torn.

/// 32-bit FNV-1a over `bytes` (offset basis `0x811c9dc5`, prime
/// `0x01000193`). Not cryptographic: it detects torn and bit-flipped
/// frames, not an adversary.
pub fn fnv1a(bytes: &[u8]) -> u32 {
    let mut hash: u32 = 0x811c_9dc5;
    for &b in bytes {
        hash ^= u32::from(b);
        hash = hash.wrapping_mul(0x0100_0193);
    }
    hash
}

/// Per-frame overhead in bytes: tag (1) + length (4) + CRC (4).
pub const FRAME_OVERHEAD: usize = 9;

/// Appends one raw frame — `[tag u8][len u32][payload][crc u32]`, CRC over
/// tag + payload — to `out`.
pub fn append_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    out.push(tag);
    push_u32(out, payload.len() as u32);
    out.extend_from_slice(payload);
    push_u32(out, frame_crc(tag, payload));
}

/// The CRC a valid frame with this tag and payload must carry.
pub fn frame_crc(tag: u8, payload: &[u8]) -> u32 {
    let mut crc_input = Vec::with_capacity(payload.len() + 1);
    crc_input.push(tag);
    crc_input.extend_from_slice(payload);
    fnv1a(&crc_input)
}

/// Walks raw frames from the start of `bytes`, returning the longest valid
/// `(tag, payload)` prefix and whether a torn tail followed it (leftover
/// bytes that do not form a complete, checksummed frame). There is no
/// header and no terminator at this layer: an append-only log that is
/// still being written is simply "torn" at its live tail.
pub fn read_frames(bytes: &[u8]) -> (Vec<(u8, Vec<u8>)>, bool) {
    let mut c = Cursor::new(bytes);
    let mut frames = Vec::new();
    loop {
        let mark = c.pos();
        match next_frame(&mut c) {
            Some((tag, payload)) => frames.push((tag, payload.to_vec())),
            None => return (frames, mark != bytes.len()),
        }
    }
}

/// Reads one `[tag][len][payload][crc]` frame, verifying the checksum.
/// `None` on a short or corrupt frame (the cursor may be mid-frame).
pub fn next_frame<'a>(c: &mut Cursor<'a>) -> Option<(u8, &'a [u8])> {
    let tag = c.u8()?;
    let len = c.u32()?;
    let payload = c.take(len as usize)?;
    let stored = c.u32()?;
    (stored == frame_crc(tag, payload)).then_some((tag, payload))
}

/// Appends a little-endian `u32`.
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Appends a `u32` byte length followed by the UTF-8 bytes.
pub fn push_str(out: &mut Vec<u8>, s: &str) {
    push_u32(out, s.len() as u32);
    out.extend_from_slice(s.as_bytes());
}

/// Appends a presence byte followed by the value (0 when absent).
pub fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    out.push(u8::from(v.is_some()));
    push_u64(out, v.unwrap_or(0));
}

/// Sequential byte reader returning `None` past the end (a torn frame).
pub struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    /// Starts a cursor at the beginning of `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        Cursor { bytes, pos: 0 }
    }

    /// Current read offset from the start of the underlying slice.
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Takes the next `n` bytes, or `None` if fewer remain.
    pub fn take(&mut self, n: usize) -> Option<&'a [u8]> {
        let end = self.pos.checked_add(n)?;
        if end > self.bytes.len() {
            return None;
        }
        let out = &self.bytes[self.pos..end];
        self.pos = end;
        Some(out)
    }

    /// Reads one byte.
    pub fn u8(&mut self) -> Option<u8> {
        self.take(1).map(|b| b[0])
    }

    /// Reads a little-endian `u32`.
    pub fn u32(&mut self) -> Option<u32> {
        self.take(4)
            .map(|b| u32::from_le_bytes(b.try_into().unwrap_or([0; 4])))
    }

    /// Reads a little-endian `u64`.
    pub fn u64(&mut self) -> Option<u64> {
        self.take(8)
            .map(|b| u64::from_le_bytes(b.try_into().unwrap_or([0; 8])))
    }

    /// Reads a length-prefixed UTF-8 string (see [`push_str`]).
    pub fn str(&mut self) -> Option<String> {
        let n = self.u32()? as usize;
        String::from_utf8(self.take(n)?.to_vec()).ok()
    }

    /// Reads a presence-byte-prefixed `u64` (see [`push_opt_u64`]).
    pub fn opt_u64(&mut self) -> Option<Option<u64>> {
        let has = self.u8()? != 0;
        let v = self.u64()?;
        Some(has.then_some(v))
    }

    /// Whether every byte has been consumed.
    pub fn done(&self) -> bool {
        self.pos == self.bytes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_frames() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 7, b"hello");
        append_frame(&mut buf, 9, b"");
        let (frames, torn) = read_frames(&buf);
        assert!(!torn);
        assert_eq!(frames, vec![(7, b"hello".to_vec()), (9, Vec::new())]);
    }

    #[test]
    fn truncation_at_every_byte_keeps_valid_prefix() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 1, b"abc");
        append_frame(&mut buf, 2, b"defg");
        let first_len = FRAME_OVERHEAD + 3;
        for cut in 0..=buf.len() {
            let (frames, torn) = read_frames(&buf[..cut]);
            if cut < first_len {
                assert!(frames.is_empty());
                assert_eq!(torn, cut != 0, "cut={cut}");
            } else if cut < buf.len() {
                assert_eq!(frames.len(), 1, "cut={cut}");
                assert_eq!(torn, cut != first_len, "cut={cut}");
            } else {
                assert_eq!(frames.len(), 2);
                assert!(!torn);
            }
        }
    }

    #[test]
    fn corrupt_crc_truncates_frame_stream() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 1, b"abc");
        append_frame(&mut buf, 2, b"def");
        let flip = FRAME_OVERHEAD + 3 + 2; // inside the second frame's header
        buf[flip] ^= 0xff;
        let (frames, torn) = read_frames(&buf);
        assert_eq!(frames.len(), 1);
        assert!(torn);
    }

    #[test]
    fn scalar_helpers_round_trip() {
        let mut buf = Vec::new();
        push_u32(&mut buf, 0xdead_beef);
        push_u64(&mut buf, u64::MAX - 1);
        push_str(&mut buf, "héllo");
        push_opt_u64(&mut buf, Some(42));
        push_opt_u64(&mut buf, None);
        let mut c = Cursor::new(&buf);
        assert_eq!(c.u32(), Some(0xdead_beef));
        assert_eq!(c.u64(), Some(u64::MAX - 1));
        assert_eq!(c.str().as_deref(), Some("héllo"));
        assert_eq!(c.opt_u64(), Some(Some(42)));
        assert_eq!(c.opt_u64(), Some(None));
        assert!(c.done());
    }

    #[test]
    fn fnv1a_matches_reference_vectors() {
        // Published FNV-1a 32-bit test vectors.
        assert_eq!(fnv1a(b""), 0x811c_9dc5);
        assert_eq!(fnv1a(b"a"), 0xe40c_292c);
        assert_eq!(fnv1a(b"foobar"), 0xbf9c_f968);
    }
}
