//! Probability distributions used by the workload generators and schedulers.
//!
//! The Figure 3 experiment needs Poisson request arrivals and Pareto/Zipf
//! topic popularity; tool-call latencies use log-normal delays. Everything
//! draws from the crate's own deterministic [`Rng`].

use crate::rng::Rng;
use crate::time::SimDuration;

/// Exponential distribution with rate `lambda` (mean `1/lambda`).
#[derive(Debug, Clone, Copy)]
pub struct Exponential {
    lambda: f64,
}

impl Exponential {
    /// Creates an exponential distribution with the given rate (events/sec).
    ///
    /// # Panics
    ///
    /// Panics if `lambda` is not finite and positive.
    pub fn new(lambda: f64) -> Self {
        assert!(lambda.is_finite() && lambda > 0.0, "lambda must be positive");
        Exponential { lambda }
    }

    /// Samples a value in seconds.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        -rng.next_f64_open().ln() / self.lambda
    }
}

/// A homogeneous Poisson arrival process with rate `lambda` (arrivals/sec).
#[derive(Debug, Clone, Copy)]
pub struct PoissonProcess {
    interarrival: Exponential,
}

impl PoissonProcess {
    /// Creates a process with the given arrival rate in events per second.
    pub fn new(lambda: f64) -> Self {
        PoissonProcess {
            interarrival: Exponential::new(lambda),
        }
    }

    /// Samples the gap to the next arrival.
    pub fn next_gap(&self, rng: &mut Rng) -> SimDuration {
        SimDuration::from_secs_f64(self.interarrival.sample(rng))
    }
}

/// Pareto (type I) distribution with shape `alpha` and scale `xm > 0`.
///
/// Smaller `alpha` means a heavier tail. The paper sweeps the "Pareto index"
/// of topic popularity; see [`Zipf`] for the rank-popularity form used there.
#[derive(Debug, Clone, Copy)]
pub struct Pareto {
    alpha: f64,
    xm: f64,
}

impl Pareto {
    /// Creates a Pareto distribution.
    ///
    /// # Panics
    ///
    /// Panics unless `alpha > 0` and `xm > 0`.
    pub fn new(alpha: f64, xm: f64) -> Self {
        assert!(alpha > 0.0 && xm > 0.0, "alpha and xm must be positive");
        Pareto { alpha, xm }
    }

    /// Samples a value (always `>= xm`).
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        self.xm / rng.next_f64_open().powf(1.0 / self.alpha)
    }
}

/// Zipf-like rank popularity over `n` items derived from a Pareto tail.
///
/// Item `i` (0-based rank) receives weight `(i + 1)^-s`. The Figure 3 sweep
/// uses `s` as the "Pareto index": small `s` flattens popularity, large `s`
/// concentrates requests on the top-ranked topics. We expose the same
/// convention as the paper's narrative: *small index ⇒ few topics dominate*
/// is obtained by mapping the paper's index through [`Zipf::from_pareto_index`],
/// which inverts the axis (see that constructor's docs).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a Zipf distribution over `n` ranks with exponent `s >= 0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative/non-finite.
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one item");
        assert!(s.is_finite() && s >= 0.0, "exponent must be non-negative");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += ((i + 1) as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Zipf { cdf }
    }

    /// Maps the paper's Pareto index `alpha` onto a Zipf exponent.
    ///
    /// A Pareto-distributed popularity with shape `alpha` induces a rank-size
    /// law with Zipf exponent `s = 1/alpha`: heavy tails (small `alpha`)
    /// concentrate mass on top ranks (large `s`). This keeps the experiment
    /// axis identical to the paper ("Symphony outperforms ... when the Pareto
    /// index is small").
    pub fn from_pareto_index(n: usize, alpha: f64) -> Self {
        assert!(alpha > 0.0, "Pareto index must be positive");
        Zipf::new(n, 1.0 / alpha)
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if there are no ranks (never; kept for API symmetry).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a 0-based rank.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        // First index whose cumulative mass exceeds u.
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }

    /// Probability mass of the 0-based rank `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn mass(&self, i: usize) -> f64 {
        if i == 0 {
            self.cdf[0]
        } else {
            self.cdf[i] - self.cdf[i - 1]
        }
    }

    /// Total mass of the top `k` ranks (clamped to the rank count).
    pub fn top_mass(&self, k: usize) -> f64 {
        if k == 0 {
            0.0
        } else {
            self.cdf[k.min(self.cdf.len()) - 1]
        }
    }
}

/// Log-normal distribution parameterised by the mean and sigma of `ln X`.
#[derive(Debug, Clone, Copy)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with location `mu` and shape `sigma > 0` of `ln X`.
    ///
    /// # Panics
    ///
    /// Panics unless `sigma > 0`.
    pub fn new(mu: f64, sigma: f64) -> Self {
        assert!(sigma > 0.0, "sigma must be positive");
        LogNormal { mu, sigma }
    }

    /// Creates a log-normal from its own mean and an approximate coefficient
    /// of variation, convenient for "tool latency ~50ms ± spread" configs.
    ///
    /// # Panics
    ///
    /// Panics unless `mean > 0` and `cv > 0`.
    pub fn from_mean_cv(mean: f64, cv: f64) -> Self {
        assert!(mean > 0.0 && cv > 0.0, "mean and cv must be positive");
        let sigma2 = (1.0 + cv * cv).ln();
        let mu = mean.ln() - sigma2 / 2.0;
        LogNormal::new(mu, sigma2.sqrt())
    }

    /// Samples a value.
    pub fn sample(&self, rng: &mut Rng) -> f64 {
        (self.mu + self.sigma * rng.next_gaussian()).exp()
    }
}

/// Categorical distribution over arbitrary weights.
#[derive(Debug, Clone)]
pub struct Categorical {
    cdf: Vec<f64>,
}

impl Categorical {
    /// Creates a categorical distribution from non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, any weight is negative or non-finite,
    /// or all weights are zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "weights must be non-empty");
        let mut cdf = Vec::with_capacity(weights.len());
        let mut acc = 0.0;
        for &w in weights {
            assert!(w.is_finite() && w >= 0.0, "weights must be non-negative");
            acc += w;
            cdf.push(acc);
        }
        assert!(acc > 0.0, "total weight must be positive");
        for v in &mut cdf {
            *v /= acc;
        }
        Categorical { cdf }
    }

    /// Samples a 0-based category index.
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.next_f64();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).unwrap()) {
            Ok(i) => (i + 1).min(self.cdf.len() - 1),
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exponential_mean() {
        let d = Exponential::new(4.0);
        let mut rng = Rng::new(1);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean={mean}");
    }

    #[test]
    fn poisson_gap_mean_matches_rate() {
        let p = PoissonProcess::new(100.0);
        let mut rng = Rng::new(2);
        let n = 50_000;
        let total: f64 = (0..n).map(|_| p.next_gap(&mut rng).as_secs_f64()).sum();
        let mean = total / n as f64;
        assert!((mean - 0.01).abs() < 0.001, "mean gap={mean}");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let d = Pareto::new(2.0, 3.0);
        let mut rng = Rng::new(3);
        let n = 100_000;
        let mut min = f64::MAX;
        let mut mean = 0.0;
        for _ in 0..n {
            let x = d.sample(&mut rng);
            min = min.min(x);
            mean += x / n as f64;
        }
        assert!(min >= 3.0);
        // Analytical mean alpha*xm/(alpha-1) = 6.
        assert!((mean - 6.0).abs() < 0.3, "mean={mean}");
    }

    #[test]
    fn zipf_rank_order_and_masses() {
        let z = Zipf::new(10, 1.0);
        assert!(z.mass(0) > z.mass(1));
        assert!(z.mass(1) > z.mass(5));
        let total: f64 = (0..10).map(|i| z.mass(i)).sum();
        assert!((total - 1.0).abs() < 1e-12);
        assert!((z.top_mass(10) - 1.0).abs() < 1e-12);
        assert_eq!(z.top_mass(0), 0.0);
    }

    #[test]
    fn zipf_uniform_when_exponent_zero() {
        let z = Zipf::new(5, 0.0);
        for i in 0..5 {
            assert!((z.mass(i) - 0.2).abs() < 1e-12);
        }
    }

    #[test]
    fn zipf_sampling_matches_mass() {
        let z = Zipf::new(20, 1.2);
        let mut rng = Rng::new(4);
        let n = 200_000;
        let mut counts = vec![0usize; 20];
        for _ in 0..n {
            counts[z.sample(&mut rng)] += 1;
        }
        for i in 0..20 {
            let emp = counts[i] as f64 / n as f64;
            assert!(
                (emp - z.mass(i)).abs() < 0.01,
                "rank {i}: empirical {emp} vs mass {}",
                z.mass(i)
            );
        }
    }

    #[test]
    fn pareto_index_mapping_inverts_axis() {
        // Small Pareto index -> heavy concentration on the top ranks.
        let heavy = Zipf::from_pareto_index(100, 0.5);
        let flat = Zipf::from_pareto_index(100, 4.0);
        assert!(heavy.top_mass(20) > flat.top_mass(20));
        assert!(heavy.top_mass(20) > 0.8);
    }

    #[test]
    fn lognormal_mean_cv() {
        let d = LogNormal::from_mean_cv(0.05, 0.5);
        let mut rng = Rng::new(5);
        let n = 200_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 0.05).abs() < 0.002, "mean={mean}");
    }

    #[test]
    fn categorical_frequencies() {
        let c = Categorical::new(&[1.0, 3.0, 0.0, 6.0]);
        let mut rng = Rng::new(6);
        let n = 100_000;
        let mut counts = [0usize; 4];
        for _ in 0..n {
            counts[c.sample(&mut rng)] += 1;
        }
        assert_eq!(counts[2], 0, "zero-weight category must never be drawn");
        assert!((counts[0] as f64 / n as f64 - 0.1).abs() < 0.01);
        assert!((counts[1] as f64 / n as f64 - 0.3).abs() < 0.01);
        assert!((counts[3] as f64 / n as f64 - 0.6).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "total weight")]
    fn categorical_rejects_all_zero() {
        Categorical::new(&[0.0, 0.0]);
    }
}
