//! Statistics collection for experiments.
//!
//! Three collectors with different memory/fidelity trade-offs:
//!
//! - [`OnlineStats`] — O(1) memory Welford mean/variance.
//! - [`Series`] — retains every sample for exact percentiles; the experiment
//!   harness uses it for latency distributions (sample counts are modest).
//! - [`Histogram`] — log-spaced buckets for unbounded streams.

use serde::{Deserialize, Serialize};

/// Streaming mean/variance via Welford's algorithm.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    /// Creates an empty collector.
    pub fn new() -> Self {
        OnlineStats {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (0 with fewer than two samples).
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Standard deviation.
    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest sample (`None` when empty).
    pub fn min(&self) -> Option<f64> {
        (self.count > 0).then_some(self.min)
    }

    /// Largest sample (`None` when empty).
    pub fn max(&self) -> Option<f64> {
        (self.count > 0).then_some(self.max)
    }

    /// Merges another collector into this one.
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// A sample series retaining every value; supports exact percentiles.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Series {
    samples: Vec<f64>,
}

impl Series {
    /// Creates an empty series.
    pub fn new() -> Self {
        Series { samples: Vec::new() }
    }

    /// Adds a sample.
    pub fn add(&mut self, x: f64) {
        self.samples.push(x);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Returns `true` when no samples have been added.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// Sample mean (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<f64>() / self.samples.len() as f64
        }
    }

    /// Sum of all samples.
    pub fn sum(&self) -> f64 {
        self.samples.iter().sum()
    }

    /// Exact percentile by nearest-rank (`q` in `[0, 1]`); `None` when empty.
    ///
    /// Clones and sorts the samples on every call; use [`Series::percentiles`]
    /// when several quantiles of the same series are needed.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        self.percentiles(std::slice::from_ref(&q)).pop().flatten()
    }

    /// Exact nearest-rank percentiles for several `q`s at once, sorting the
    /// samples a single time. Returns one entry per requested quantile;
    /// every entry is `None` when the series is empty.
    pub fn percentiles(&self, qs: &[f64]) -> Vec<Option<f64>> {
        if self.samples.is_empty() {
            return vec![None; qs.len()];
        }
        let mut sorted = self.samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample"));
        qs.iter()
            .map(|&q| {
                let rank = ((q.clamp(0.0, 1.0) * sorted.len() as f64).ceil() as usize)
                    .clamp(1, sorted.len());
                Some(sorted[rank - 1])
            })
            .collect()
    }

    /// Median (p50).
    pub fn median(&self) -> Option<f64> {
        self.percentile(0.5)
    }

    /// Largest sample.
    pub fn max(&self) -> Option<f64> {
        self.samples
            .iter()
            .copied()
            .fold(None, |acc, x| Some(acc.map_or(x, |a: f64| a.max(x))))
    }

    /// Raw access to the samples.
    pub fn samples(&self) -> &[f64] {
        &self.samples
    }
}

/// Log-spaced histogram for positive values.
///
/// Bucket `i` covers `[base * ratio^i, base * ratio^(i+1))`; values below
/// `base` land in bucket 0 and values beyond the last bucket saturate into it.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Histogram {
    base: f64,
    ratio: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Creates a histogram.
    ///
    /// # Panics
    ///
    /// Panics unless `base > 0`, `ratio > 1`, and `buckets > 0`.
    pub fn new(base: f64, ratio: f64, buckets: usize) -> Self {
        assert!(base > 0.0 && ratio > 1.0 && buckets > 0, "bad histogram shape");
        Histogram {
            base,
            ratio,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// A default latency histogram: 1µs to ~1000s in 5% steps (in seconds).
    pub fn latency_seconds() -> Self {
        Histogram::new(1e-6, 1.05, 430)
    }

    /// Records a value.
    pub fn add(&mut self, x: f64) {
        let idx = if x <= self.base {
            0
        } else {
            // The log-division estimate can land one bucket off at exact
            // bucket edges (`ln(ratio^k)/ln(ratio)` computes to k ± ulp and
            // truncation turns k - ulp into k-1), so correct it against the
            // exact edges: bucket i must satisfy ratio^i <= x/base < ratio^(i+1).
            let mut i = ((x / self.base).ln() / self.ratio.ln()) as usize;
            if self.base * self.ratio.powi(i as i32 + 1) <= x {
                i += 1;
            } else if self.base * self.ratio.powi(i as i32) > x {
                i = i.saturating_sub(1);
            }
            i
        };
        let idx = idx.min(self.counts.len() - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Total recorded values.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Approximate percentile (`q` in `[0, 1]`): upper edge of the bucket
    /// where the rank lands. `None` when empty.
    pub fn percentile(&self, q: f64) -> Option<f64> {
        if self.total == 0 {
            return None;
        }
        let rank = (q.clamp(0.0, 1.0) * self.total as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(self.base * self.ratio.powi(i as i32 + 1));
            }
        }
        Some(self.base * self.ratio.powi(self.counts.len() as i32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn online_stats_basic() {
        let mut s = OnlineStats::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert_eq!(s.min(), Some(2.0));
        assert_eq!(s.max(), Some(9.0));
    }

    #[test]
    fn online_stats_empty() {
        let s = OnlineStats::new();
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), None);
        assert_eq!(s.max(), None);
    }

    #[test]
    fn online_stats_merge_matches_combined() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn series_percentiles_exact() {
        let mut s = Series::new();
        for i in 1..=100 {
            s.add(i as f64);
        }
        assert_eq!(s.percentile(0.5), Some(50.0));
        assert_eq!(s.percentile(0.99), Some(99.0));
        assert_eq!(s.percentile(1.0), Some(100.0));
        assert_eq!(s.percentile(0.0), Some(1.0));
        assert_eq!(s.median(), Some(50.0));
        assert_eq!(s.max(), Some(100.0));
        assert!((s.mean() - 50.5).abs() < 1e-12);
    }

    #[test]
    fn series_empty() {
        let s = Series::new();
        assert!(s.is_empty());
        assert_eq!(s.percentile(0.5), None);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn histogram_percentile_brackets_truth() {
        let mut h = Histogram::latency_seconds();
        // 1000 samples uniform on [1ms, 2ms].
        for i in 0..1000 {
            h.add(0.001 + 0.001 * (i as f64 / 1000.0));
        }
        let p50 = h.percentile(0.5).unwrap();
        assert!((0.0013..0.0018).contains(&p50), "p50={p50}");
        assert_eq!(h.total(), 1000);
        assert_eq!(Histogram::new(1.0, 2.0, 4).percentile(0.5), None);
    }

    #[test]
    fn histogram_bucket_edges_are_exact() {
        // Regression: a sample sitting exactly on a bucket edge
        // `base * ratio^k` belongs to bucket k ([base·r^k, base·r^(k+1))),
        // but the raw log-truncation index could come out as k-1. A single
        // sample at the edge must therefore report the bucket-k upper edge
        // as every percentile.
        for k in 1..60 {
            let mut h = Histogram::new(1.0, 2.0, 64);
            let edge = 2.0f64.powi(k);
            h.add(edge);
            let expect = 2.0f64.powi(k + 1);
            let got = h.percentile(1.0).unwrap();
            assert_eq!(got, expect, "k={k}: got {got}, expected {expect}");
        }
        // Non-power-of-two ratios too (the latency histogram's 1.05 steps).
        let h0 = Histogram::latency_seconds();
        for k in [1, 7, 100, 250, 400] {
            let mut h = h0.clone();
            let edge = 1e-6 * 1.05f64.powi(k);
            h.add(edge);
            let got = h.percentile(1.0).unwrap();
            let expect = 1e-6 * 1.05f64.powi(k + 1);
            assert!(
                (got - expect).abs() < 1e-12 * expect.abs(),
                "k={k}: got {got}, expected {expect}"
            );
        }
        // Just below the edge still lands in bucket k-1.
        let mut h = Histogram::new(1.0, 2.0, 64);
        h.add(8.0 * (1.0 - 1e-12));
        assert_eq!(h.percentile(1.0).unwrap(), 8.0);
    }

    #[test]
    fn series_batch_percentiles_match_per_call() {
        let mut s = Series::new();
        for i in (1..=500).rev() {
            s.add(i as f64 * 0.5);
        }
        let qs = [0.0, 0.25, 0.5, 0.9, 0.99, 1.0];
        let batch = s.percentiles(&qs);
        for (q, got) in qs.iter().zip(&batch) {
            assert_eq!(*got, s.percentile(*q), "q={q}");
        }
        assert_eq!(Series::new().percentiles(&qs), vec![None; qs.len()]);
    }

    #[test]
    fn histogram_saturates_extremes() {
        let mut h = Histogram::new(1.0, 2.0, 4);
        h.add(0.001);
        h.add(1e12);
        assert_eq!(h.total(), 2);
        assert!(h.percentile(1.0).unwrap() <= 16.0 + 1e-9);
    }
}
