//! Deterministic pseudo-random number generation.
//!
//! The simulator implements its own xoshiro256** generator rather than using
//! an external crate so that streams are stable across platforms and
//! dependency upgrades — experiment outputs in `EXPERIMENTS.md` must be
//! regenerable bit-for-bit. Substreams created with [`Rng::fork`] are
//! independent, which lets each simulated component (arrivals, tool latency,
//! sampling) own its stream and keeps runs comparable when one component
//! changes.

/// A deterministic xoshiro256** PRNG with splitmix64 seeding.
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

/// Advances a splitmix64 state and returns the next output.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent substream keyed by `stream`.
    ///
    /// Forking with distinct keys yields streams that do not overlap in
    /// practice; the key is mixed through splitmix64 together with fresh
    /// output of the parent, so `fork(0)` and `fork(1)` differ even when
    /// called at the same parent state.
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mut sm = self.next_u64() ^ stream.wrapping_mul(0xA076_1D64_78BD_642F);
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Returns the next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        // Use the top 53 bits for a uniform double in [0, 1).
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `(0, 1]`, suitable for `ln()`.
    pub fn next_f64_open(&mut self) -> f64 {
        1.0 - self.next_f64()
    }

    /// Returns a uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn gen_range(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "gen_range: empty range [{lo}, {hi})");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the retry loop rejects the biased
        // region, which is vanishingly small for the span sizes we use.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let lowbits = m as u64;
            if lowbits >= span.wrapping_neg() % span {
                return lo + (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` index in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn gen_index(&mut self, n: usize) -> usize {
        self.gen_range(0, n as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffles a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.gen_index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Returns a standard normal variate (Box–Muller).
    pub fn next_gaussian(&mut self) -> f64 {
        let u1 = self.next_f64_open();
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.fork(3);
        let mut c2 = parent2.fork(3);
        for _ in 0..32 {
            assert_eq!(c1.next_u64(), c2.next_u64());
        }
        let mut parent3 = Rng::new(7);
        let mut d0 = parent3.fork(0);
        // Distinct keys at the same parent state must give distinct streams.
        let mut parent4 = Rng::new(7);
        let mut d1 = parent4.fork(1);
        assert_ne!(d0.next_u64(), d1.next_u64());
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = Rng::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
            let y = r.next_f64_open();
            assert!(y > 0.0 && y <= 1.0);
        }
    }

    #[test]
    fn gen_range_bounds_and_coverage() {
        let mut r = Rng::new(11);
        let mut seen = [false; 10];
        for _ in 0..1_000 {
            let x = r.gen_range(5, 15);
            assert!((5..15).contains(&x));
            seen[(x - 5) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values in range should appear");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn gen_range_rejects_empty() {
        Rng::new(0).gen_range(3, 3);
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut r = Rng::new(13);
        let hits = (0..100_000).filter(|_| r.gen_bool(0.25)).count();
        let frac = hits as f64 / 100_000.0;
        assert!((frac - 0.25).abs() < 0.01, "frac={frac}");
    }

    #[test]
    fn gaussian_moments() {
        let mut r = Rng::new(17);
        let n = 200_000;
        let (mut sum, mut sumsq) = (0.0, 0.0);
        for _ in 0..n {
            let x = r.next_gaussian();
            sum += x;
            sumsq += x * x;
        }
        let mean = sum / n as f64;
        let var = sumsq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = Rng::new(19);
        let mut xs: Vec<u32> = (0..100).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(xs, (0..100).collect::<Vec<_>>(), "shuffle should move elements");
    }
}
