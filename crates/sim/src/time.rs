//! Virtual time: instants and durations with nanosecond resolution.
//!
//! Virtual time is a monotone 64-bit nanosecond counter. Nanoseconds give
//! enough headroom (~584 years) while keeping all arithmetic in integers, so
//! event ordering never depends on floating-point rounding.

use core::fmt;
use core::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// An instant on the simulation clock, in nanoseconds since the run started.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, in nanoseconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates an instant from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the instant as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration elapsed since `earlier`.
    ///
    /// # Panics
    ///
    /// Panics if `earlier` is later than `self`; callers compare instants
    /// produced by the same monotone clock, so this indicates a logic bug.
    pub fn duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(earlier.0)
                .expect("duration_since: earlier instant is in the future"),
        )
    }

    /// Returns the duration since `earlier`, or zero if `earlier` is later.
    pub fn saturating_duration_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }
}

impl SimDuration {
    /// The empty duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// A duration longer than any simulation will run.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a duration from raw nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Creates a duration from fractional seconds, saturating at the
    /// representable range and clamping negatives and NaN to zero.
    pub fn from_secs_f64(s: f64) -> Self {
        if s.is_nan() || s <= 0.0 {
            return SimDuration(0);
        }
        let ns = s * 1e9;
        if ns >= u64::MAX as f64 {
            SimDuration(u64::MAX)
        } else {
            SimDuration(ns as u64)
        }
    }

    /// Returns the raw nanosecond count.
    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    /// Returns the duration as fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Returns the duration as fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    /// Returns the larger of two durations.
    pub fn max(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.max(other.0))
    }

    /// Returns the smaller of two durations.
    pub fn min(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.min(other.0))
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;

    fn sub(self, rhs: SimTime) -> SimDuration {
        self.duration_since(rhs)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;

    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        *self = *self + rhs;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;

    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(rhs))
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;

    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs_f64(self.as_secs_f64() * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;

    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.0;
        if ns < 1_000 {
            write!(f, "{ns}ns")
        } else if ns < 1_000_000 {
            write!(f, "{:.2}us", ns as f64 / 1e3)
        } else if ns < 1_000_000_000 {
            write!(f, "{:.2}ms", ns as f64 / 1e6)
        } else {
            write!(f, "{:.3}s", ns as f64 / 1e9)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimDuration::from_millis(3).as_nanos(), 3_000_000);
        assert_eq!(SimDuration::from_secs(3).as_nanos(), 3_000_000_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::ZERO + SimDuration::from_millis(5);
        assert_eq!(t.as_nanos(), 5_000_000);
        assert_eq!((t - SimTime::ZERO).as_millis_f64(), 5.0);
        assert_eq!(
            SimDuration::from_millis(4) + SimDuration::from_millis(6),
            SimDuration::from_millis(10)
        );
        assert_eq!(SimDuration::from_millis(10) / 4, SimDuration::from_micros(2_500));
        assert_eq!(SimDuration::from_millis(2) * 3, SimDuration::from_millis(6));
    }

    #[test]
    fn from_secs_f64_clamps() {
        assert_eq!(SimDuration::from_secs_f64(-1.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(f64::NAN), SimDuration::ZERO);
        assert_eq!(SimDuration::from_secs_f64(1e30), SimDuration::MAX);
        assert_eq!(SimDuration::from_secs_f64(0.5).as_nanos(), 500_000_000);
    }

    #[test]
    fn saturating_duration_since_clamps_to_zero() {
        let a = SimTime::from_nanos(10);
        let b = SimTime::from_nanos(20);
        assert_eq!(a.saturating_duration_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_duration_since(a), SimDuration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "duration_since")]
    fn duration_since_panics_on_reversed_order() {
        let _ = SimTime::from_nanos(1).duration_since(SimTime::from_nanos(2));
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimDuration::from_nanos(12).to_string(), "12ns");
        assert_eq!(SimDuration::from_micros(12).to_string(), "12.00us");
        assert_eq!(SimDuration::from_millis(12).to_string(), "12.00ms");
        assert_eq!(SimDuration::from_secs(12).to_string(), "12.000s");
    }
}
