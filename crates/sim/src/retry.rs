//! Retry policies with exponential backoff and deterministic jitter.
//!
//! Lives in the simulation substrate because a policy is pure arithmetic
//! over [`SimDuration`] plus draws from the seeded [`Rng`]: given the same
//! policy, attempt index and RNG state, the backoff schedule is always the
//! same — which is what lets the kernel charge retries to the virtual clock
//! and still replay runs bit-identically.

use crate::rng::Rng;
use crate::time::SimDuration;

/// Largest effective jitter amplitude: just under 1, so the scale factor
/// `1 + jitter·u`, `u ∈ [-1, 1]`, stays strictly positive.
const JITTER_MAX: f64 = 1.0 - 1e-9;

/// How failed attempts of an operation are retried.
///
/// The delay before retry `k` (1-based count of failures so far) is
/// `base_backoff * multiplier^(k-1)`, capped at `max_backoff`, then scaled
/// by a jitter factor drawn uniformly from `[1 - jitter, 1 + jitter]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts including the first (`1` = no retries).
    pub max_attempts: u32,
    /// Delay before the first retry.
    pub base_backoff: SimDuration,
    /// Growth factor per subsequent retry.
    pub multiplier: f64,
    /// Upper bound on any single backoff delay (pre-jitter).
    pub max_backoff: SimDuration,
    /// Jitter amplitude as a fraction of the delay, in `[0, 1]`. Zero means
    /// no RNG draw is made and the schedule is a pure function of the
    /// attempt index.
    pub jitter: f64,
}

impl RetryPolicy {
    /// A single attempt: never retry.
    pub fn none() -> Self {
        RetryPolicy {
            max_attempts: 1,
            base_backoff: SimDuration::ZERO,
            multiplier: 1.0,
            max_backoff: SimDuration::ZERO,
            jitter: 0.0,
        }
    }

    /// Exponential policy: `max_attempts` total attempts, doubling from
    /// `base_backoff` up to `64 * base_backoff`, with ±10% jitter.
    pub fn exponential(max_attempts: u32, base_backoff: SimDuration) -> Self {
        RetryPolicy {
            max_attempts: max_attempts.max(1),
            base_backoff,
            multiplier: 2.0,
            max_backoff: base_backoff * 64,
            jitter: 0.1,
        }
    }

    /// Removes jitter, making the schedule deterministic without RNG draws
    /// (useful for tests asserting exact virtual-time accounting).
    pub fn without_jitter(mut self) -> Self {
        self.jitter = 0.0;
        self
    }

    /// Whether another attempt is allowed after `failures` failed attempts.
    pub fn should_retry(&self, failures: u32) -> bool {
        failures < self.max_attempts
    }

    /// The backoff delay after the `failures`-th failed attempt (1-based).
    /// Draws at most one jitter sample from `rng` (none when `jitter == 0`).
    pub fn backoff_after(&self, failures: u32, rng: &mut Rng) -> SimDuration {
        debug_assert!(failures >= 1, "backoff is between attempts");
        let exp = failures.saturating_sub(1).min(63);
        let raw = self.base_backoff * self.multiplier.powi(exp as i32);
        let capped = raw.min(self.max_backoff);
        if self.jitter == 0.0 {
            return capped;
        }
        // Clamp the amplitude into [0, 1): a policy built with jitter >= 1
        // could otherwise draw scale <= 0 and zero the backoff entirely,
        // turning exponential backoff into an immediate-retry hot loop.
        let jitter = self.jitter.clamp(0.0, JITTER_MAX);
        let scale = 1.0 + jitter * (2.0 * rng.next_f64() - 1.0);
        // Keep the delay strictly positive whenever the unjittered delay
        // was: a near-zero scale must not truncate below one nanosecond.
        (capped * scale).max(SimDuration::from_nanos(1).min(capped))
    }

    /// Sum of all backoff delays a fully exhausted call would incur, without
    /// jitter (a lower/upper bound helper for tests and capacity planning).
    pub fn total_backoff_unjittered(&self) -> SimDuration {
        let mut total = SimDuration::ZERO;
        for k in 1..self.max_attempts {
            let raw = self.base_backoff * self.multiplier.powi((k - 1).min(63) as i32);
            total += raw.min(self.max_backoff);
        }
        total
    }
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy::none()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_never_retries() {
        let p = RetryPolicy::none();
        assert!(!p.should_retry(1));
        assert_eq!(p.total_backoff_unjittered(), SimDuration::ZERO);
    }

    #[test]
    fn exponential_schedule_without_jitter() {
        let p = RetryPolicy::exponential(4, SimDuration::from_millis(10)).without_jitter();
        let mut rng = Rng::new(1);
        assert_eq!(p.backoff_after(1, &mut rng), SimDuration::from_millis(10));
        assert_eq!(p.backoff_after(2, &mut rng), SimDuration::from_millis(20));
        assert_eq!(p.backoff_after(3, &mut rng), SimDuration::from_millis(40));
        assert_eq!(
            p.total_backoff_unjittered(),
            SimDuration::from_millis(70)
        );
        assert!(p.should_retry(3));
        assert!(!p.should_retry(4));
    }

    #[test]
    fn backoff_caps_at_max() {
        let mut p = RetryPolicy::exponential(10, SimDuration::from_millis(10)).without_jitter();
        p.max_backoff = SimDuration::from_millis(25);
        let mut rng = Rng::new(1);
        assert_eq!(p.backoff_after(5, &mut rng), SimDuration::from_millis(25));
    }

    #[test]
    fn jitter_is_bounded_and_deterministic() {
        let p = RetryPolicy::exponential(5, SimDuration::from_millis(100));
        let mut a = Rng::new(9);
        let mut b = Rng::new(9);
        for k in 1..5 {
            let da = p.backoff_after(k, &mut a);
            let db = p.backoff_after(k, &mut b);
            assert_eq!(da, db, "same seed, same schedule");
            let nominal = SimDuration::from_millis(100) * 2.0f64.powi(k as i32 - 1);
            let lo = nominal.as_secs_f64() * 0.9;
            let hi = nominal.as_secs_f64() * 1.1;
            assert!(
                (lo..=hi).contains(&da.as_secs_f64()),
                "jittered backoff {da} outside ±10% of {nominal}"
            );
        }
    }

    #[test]
    fn oversized_jitter_never_zeroes_backoff() {
        // Regression: jitter >= 1 could draw scale <= 0, and the old
        // `scale.max(0.0)` then silently produced a zero backoff.
        for jitter in [1.0, 1.5, 10.0] {
            let mut p = RetryPolicy::exponential(5, SimDuration::from_millis(10));
            p.jitter = jitter;
            let mut rng = Rng::new(11);
            for k in 1..5 {
                for _ in 0..200 {
                    let d = p.backoff_after(k, &mut rng);
                    assert!(
                        d > SimDuration::ZERO,
                        "jitter={jitter} k={k}: backoff collapsed to zero"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_jitter_draws_nothing_from_rng() {
        let p = RetryPolicy::exponential(3, SimDuration::from_millis(5)).without_jitter();
        let mut rng = Rng::new(4);
        let before = rng.next_u64();
        let mut rng = Rng::new(4);
        let _ = p.backoff_after(1, &mut rng);
        let _ = p.backoff_after(2, &mut rng);
        assert_eq!(rng.next_u64(), before, "jitter-free policy must not consume RNG");
    }
}
