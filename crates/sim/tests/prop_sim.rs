//! Property tests for the simulation substrate.

use proptest::prelude::*;
use symphony_sim::{EventQueue, Rng, Series, SimTime, Zipf};

proptest! {
    /// Events pop in (time, insertion) order regardless of insert order.
    #[test]
    fn event_queue_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1000, 1..100)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_nanos(t), (t, i));
        }
        let mut last: Option<(u64, usize)> = None;
        while let Some((at, (t, i))) = q.pop() {
            prop_assert_eq!(at.as_nanos(), t);
            if let Some((lt, li)) = last {
                prop_assert!(t > lt || (t == lt && i > li), "stable order violated");
            }
            prop_assert!(q.now() == at);
            last = Some((t, i));
        }
        prop_assert_eq!(q.events_processed(), times.len() as u64);
    }

    /// The RNG's substreams are reproducible and order-independent of other
    /// streams' consumption.
    #[test]
    fn rng_fork_isolation(seed in any::<u64>(), key in any::<u64>(), drains in 0usize..50) {
        let mut a = Rng::new(seed);
        let mut b = Rng::new(seed);
        let mut fa = a.fork(key);
        let mut fb = b.fork(key);
        // Drain the parent b arbitrarily; the fork must be unaffected.
        for _ in 0..drains {
            b.next_u64();
        }
        for _ in 0..16 {
            prop_assert_eq!(fa.next_u64(), fb.next_u64());
        }
    }

    /// gen_range stays in bounds for arbitrary non-empty ranges.
    #[test]
    fn gen_range_in_bounds(seed in any::<u64>(), lo in 0u64..1000, span in 1u64..1000) {
        let mut r = Rng::new(seed);
        for _ in 0..50 {
            let x = r.gen_range(lo, lo + span);
            prop_assert!((lo..lo + span).contains(&x));
        }
    }

    /// Zipf masses are a proper decreasing probability vector and top_mass
    /// is its prefix sum.
    #[test]
    fn zipf_mass_properties(n in 1usize..200, s in 0.0f64..3.0) {
        let z = Zipf::new(n, s);
        let total: f64 = (0..n).map(|i| z.mass(i)).sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        for i in 1..n {
            prop_assert!(z.mass(i) <= z.mass(i - 1) + 1e-12);
        }
        let k = n / 2 + 1;
        let prefix: f64 = (0..k.min(n)).map(|i| z.mass(i)).sum();
        prop_assert!((z.top_mass(k) - prefix).abs() < 1e-9);
    }

    /// Exact percentiles from `Series` bracket the sample extremes and are
    /// monotone in q.
    #[test]
    fn series_percentiles_monotone(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut s = Series::new();
        for &x in &xs {
            s.add(x);
        }
        let p0 = s.percentile(0.0).unwrap();
        let p50 = s.percentile(0.5).unwrap();
        let p100 = s.percentile(1.0).unwrap();
        prop_assert!(p0 <= p50 && p50 <= p100);
        let min = xs.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = xs.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert_eq!(p0, min);
        prop_assert_eq!(p100, max);
    }
}
