//! `symphony-client` — SYMR load generator.
//!
//! ```text
//! symphony-client --loopback [--workload agent|rag] [--sessions N] [--conns N]
//!                 [--tenants N] [--rtt-ms R] [--seed S] [--drop N] [--slow N]
//!                 [--verify-determinism]
//! symphony-client --connect ADDR [--workload agent|rag] [--sessions N]
//! ```
//!
//! `--loopback` replays the workload against an in-process [`ServerCore`]
//! on the virtual clock — deterministic, RTT simulated through the wire
//! protocol's `not_before_ns`/`at_ns` fields — and reports client-observed
//! TTFT and per-program latency. `--verify-determinism` runs the replay
//! twice and fails unless the streamed bytes and the report match exactly.
//!
//! `--connect` drives a running `symphony-serve` over real TCP and
//! measures the same metrics on the wall clock.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use symphony_rpc::{ClientMsg, FrameReader, ServerMsg, SessionStatus, WIRE_VERSION};
use symphony_serve::replay::{agent_source, rag_source, short_source, RAG_DOCS};
use symphony_serve::{run_replay, ReplaySpec, ServeConfig, WorkloadKind};
use symphony_sim::SimDuration;

fn usage() -> ! {
    eprintln!(
        "usage: symphony-client --loopback [--workload agent|rag] [--sessions N] [--conns N]\n\
         \x20                [--tenants N] [--rtt-ms R] [--seed S] [--drop N] [--slow N]\n\
         \x20                [--verify-determinism]\n\
         \x20      symphony-client --connect ADDR [--workload agent|rag] [--sessions N]"
    );
    std::process::exit(2);
}

fn main() {
    let mut loopback = false;
    let mut connect = None;
    let mut verify = false;
    let mut spec = ReplaySpec::default();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        let num = |argv: &mut dyn Iterator<Item = String>| -> u64 {
            argv.next()
                .and_then(|v| v.parse().ok())
                .unwrap_or_else(|| usage())
        };
        match a.as_str() {
            "--loopback" => loopback = true,
            "--connect" => connect = argv.next(),
            "--verify-determinism" => verify = true,
            "--workload" => {
                spec.workload = match argv.next().as_deref() {
                    Some("agent") => WorkloadKind::Agent,
                    Some("rag") => WorkloadKind::Rag,
                    Some("mixed-cost") => WorkloadKind::MixedCost,
                    _ => usage(),
                }
            }
            "--sessions" => spec.sessions = num(&mut argv) as usize,
            "--conns" => spec.conns = (num(&mut argv) as usize).max(1),
            "--tenants" => spec.tenants = num(&mut argv).max(1),
            "--rtt-ms" => spec.rtt = SimDuration::from_millis(num(&mut argv)),
            "--seed" => spec.seed = num(&mut argv),
            "--drop" => spec.drop_conns = num(&mut argv) as usize,
            "--slow" => spec.slow_conns = num(&mut argv) as usize,
            _ => usage(),
        }
    }
    match (loopback, connect) {
        (true, None) => run_loopback(&spec, verify),
        (false, Some(addr)) => run_tcp(&addr, &spec),
        _ => usage(),
    }
}

fn run_loopback(spec: &ReplaySpec, verify: bool) {
    let report = run_replay(spec, ServeConfig::default());
    print!("{}", report.render());
    if verify {
        let again = run_replay(spec, ServeConfig::default());
        if report.streamed != again.streamed || report.render() != again.render() {
            eprintln!("determinism: FAILED (same seed, different bytes)");
            std::process::exit(1);
        }
        println!("determinism: ok (two same-seed replays byte-identical)");
    }
    if report.completed() == 0 {
        eprintln!("loopback: no program completed");
        std::process::exit(1);
    }
}

fn run_tcp(addr: &str, spec: &ReplaySpec) {
    match tcp_session(addr, spec) {
        Ok(summary) => print!("{summary}"),
        Err(e) => {
            eprintln!("symphony-client: {e}");
            std::process::exit(1);
        }
    }
}

fn tcp_session(addr: &str, spec: &ReplaySpec) -> Result<String, String> {
    let mut sock = TcpStream::connect(addr).map_err(|e| format!("connect {addr}: {e}"))?;
    sock.set_read_timeout(Some(Duration::from_secs(60)))
        .map_err(|e| e.to_string())?;
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    // lint:allow(d1): --connect measures a live TCP server, so latencies are genuinely wall-clock; the deterministic path is --loopback, which never touches Instant
    let start = Instant::now();

    let mut wire = Vec::new();
    ClientMsg::Hello {
        version: WIRE_VERSION,
        tenant: 1,
    }
    .encode(&mut wire);
    for s in 1..=spec.sessions as u64 {
        let source = match spec.workload {
            WorkloadKind::Agent => agent_source(2, 8),
            WorkloadKind::Rag => rag_source(12),
            WorkloadKind::MixedCost => short_source(6),
        };
        let args = match spec.workload {
            WorkloadKind::Agent => format!("task {s}"),
            WorkloadKind::Rag => format!("{}|question {s}", (s as usize - 1) % RAG_DOCS),
            WorkloadKind::MixedCost => format!("q {s}"),
        };
        ClientMsg::Submit {
            session: s,
            not_before_ns: 0,
            fuel: 0,
            name: format!("tcp-{s}"),
            args,
            source,
        }
        .encode(&mut wire);
    }
    ClientMsg::Bye.encode(&mut wire);
    sock.write_all(&wire).map_err(|e| format!("write: {e}"))?;

    let mut ttft: Vec<f64> = Vec::new();
    let mut latency: Vec<f64> = Vec::new();
    let mut first_seen = vec![false; spec.sessions + 1];
    let mut completed = 0usize;
    let mut streamed_tokens = 0u64;
    loop {
        while let Some((tag, payload)) = reader.next_frame().map_err(|e| e.to_string())? {
            let msg = ServerMsg::decode(tag, &payload).map_err(|e| e.to_string())?;
            let t_ms = start.elapsed().as_secs_f64() * 1e3;
            match msg {
                ServerMsg::Stream {
                    session, tokens, ..
                } => {
                    streamed_tokens += tokens;
                    if let Some(seen) = first_seen.get_mut(session as usize) {
                        if !*seen {
                            *seen = true;
                            ttft.push(t_ms);
                        }
                    }
                }
                ServerMsg::Done { status, .. } => {
                    latency.push(t_ms);
                    if status == SessionStatus::Ok {
                        completed += 1;
                    }
                }
                ServerMsg::Error { code, detail, .. } => {
                    eprintln!("symphony-client: server error {code}: {detail}");
                }
                ServerMsg::ByeOk => {
                    let p = |v: &mut Vec<f64>, p: f64| -> f64 {
                        if v.is_empty() {
                            return f64::NAN;
                        }
                        v.sort_by(|a, b| a.total_cmp(b));
                        let idx = ((p / 100.0) * (v.len() - 1) as f64).round() as usize;
                        v[idx]
                    };
                    return Ok(format!(
                        "programs: {} submitted, {completed} completed, {streamed_tokens} streamed tokens\n\
                         client-observed ttft:    p50 {:.2} ms  p99 {:.2} ms\n\
                         client-observed latency: p50 {:.2} ms  p99 {:.2} ms\n",
                        spec.sessions,
                        p(&mut ttft, 50.0),
                        p(&mut ttft, 99.0),
                        p(&mut latency, 50.0),
                        p(&mut latency, 99.0),
                    ));
                }
                _ => {}
            }
        }
        let n = sock.read(&mut buf).map_err(|e| format!("read: {e}"))?;
        if n == 0 {
            return Err("server hung up before BYE_OK".into());
        }
        reader.feed(&buf[..n]);
    }
}
