//! `symphony-serve` — the SYMR front door on a real TCP socket.
//!
//! ```text
//! symphony-serve --listen 127.0.0.1:7777 [--quota N] [--max-sessions N]
//! symphony-serve --selftest
//! ```
//!
//! The socket shell is deliberately thin: a single-threaded non-blocking
//! accept/read/pump/write loop around [`ServerCore`], so every protocol
//! decision is the same code the deterministic loopback tests exercise.
//! `--selftest` starts a listener on an ephemeral port, runs a real TCP
//! client against it in-process (HELLO → submissions → quota shed →
//! cancel → BYE) and exits 0 only if streaming, the typed quota error and
//! the clean shutdown all check out — CI's serve-smoke job runs exactly
//! this.

use std::collections::BTreeMap;
use std::io::{ErrorKind, Read, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use symphony::KernelConfig;
use symphony_rpc::{ClientMsg, ErrCode, FrameReader, ServerMsg, WIRE_VERSION};
use symphony_serve::replay::{agent_source, standard_kernel};
use symphony_serve::{ServeConfig, ServerCore};

fn usage() -> ! {
    eprintln!("usage: symphony-serve --listen ADDR [--quota N] [--max-sessions N] | --selftest");
    std::process::exit(2);
}

fn main() {
    let mut listen = None;
    let mut selftest = false;
    let mut cfg = ServeConfig::default();
    let mut argv = std::env::args().skip(1);
    while let Some(a) = argv.next() {
        match a.as_str() {
            "--listen" => listen = argv.next(),
            "--selftest" => selftest = true,
            "--quota" => {
                cfg.tenant_session_quota = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            "--max-sessions" => {
                cfg.max_live_sessions = argv
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage());
            }
            _ => usage(),
        }
    }
    if selftest {
        run_selftest(cfg);
        return;
    }
    let Some(addr) = listen else { usage() };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("symphony-serve: bind {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "symphony-serve: listening on {}",
        listener.local_addr().map(|a| a.to_string()).unwrap_or(addr)
    );
    serve_loop(listener, cfg, &AtomicBool::new(false));
}

/// The accept/read/pump/write loop. Runs until `stop` flips and no
/// connection remains (the selftest uses that; the CLI runs forever).
fn serve_loop(listener: TcpListener, cfg: ServeConfig, stop: &AtomicBool) {
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("symphony-serve: nonblocking: {e}");
        std::process::exit(1);
    }
    let mut core = ServerCore::new(standard_kernel(KernelConfig::for_tests()), cfg);
    let mut socks: BTreeMap<u64, TcpStream> = BTreeMap::new();
    let mut buf = [0u8; 16 * 1024];
    loop {
        let mut idle = true;
        match listener.accept() {
            Ok((sock, peer)) => {
                if sock.set_nonblocking(true).is_ok() {
                    let conn = core.open_conn();
                    eprintln!("symphony-serve: conn {conn} from {peer}");
                    socks.insert(conn, sock);
                    idle = false;
                }
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock => {}
            Err(e) => eprintln!("symphony-serve: accept: {e}"),
        }
        let conns: Vec<u64> = socks.keys().copied().collect();
        for conn in conns {
            // lint:allow(k1): key came from the map one line up
            let sock = socks.get_mut(&conn).expect("socket exists");
            loop {
                match sock.read(&mut buf) {
                    Ok(0) => {
                        core.drop_conn(conn);
                        break;
                    }
                    Ok(n) => {
                        core.feed(conn, &buf[..n]);
                        idle = false;
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                    Err(_) => {
                        core.drop_conn(conn);
                        break;
                    }
                }
            }
        }
        core.pump();
        socks.retain(|&conn, sock| {
            let out = core.take_output(conn);
            if !out.is_empty() {
                idle = false;
                // A blocked write on a non-blocking socket would need a
                // real pending-buffer; at smoke-test scale a short spin
                // suffices, and a persistently dead peer is a drop.
                let mut off = 0;
                while off < out.len() {
                    match sock.write(&out[off..]) {
                        Ok(n) => off += n,
                        Err(e) if e.kind() == ErrorKind::WouldBlock => {
                            std::thread::sleep(Duration::from_millis(1));
                        }
                        Err(_) => {
                            core.drop_conn(conn);
                            return false;
                        }
                    }
                }
            }
            if core.is_closed(conn) && core.pending_output(conn) == 0 {
                return false; // server-initiated close: reply flushed, hang up
            }
            true
        });
        if stop.load(Ordering::SeqCst) && socks.is_empty() {
            return;
        }
        if idle {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// In-process end-to-end check over a real socket pair.
fn run_selftest(mut cfg: ServeConfig) {
    cfg.tenant_session_quota = 2;
    // lint:allow(k1): selftest binds an ephemeral loopback port
    let listener = TcpListener::bind("127.0.0.1:0").expect("bind ephemeral");
    let addr = listener.local_addr().expect("local addr");
    let stop = Arc::new(AtomicBool::new(false));
    let stop2 = Arc::clone(&stop);
    let server = std::thread::spawn(move || serve_loop(listener, cfg, &stop2));

    let result = selftest_client(&addr.to_string());
    stop.store(true, Ordering::SeqCst);
    match result {
        Ok(summary) => {
            // lint:allow(k1): selftest thread panics are the failure signal
            server.join().expect("server thread");
            println!("{summary}");
            println!("selftest: ok");
        }
        Err(e) => {
            eprintln!("selftest: FAILED: {e}");
            std::process::exit(1);
        }
    }
}

fn selftest_client(addr: &str) -> Result<String, String> {
    let mut sock = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    sock.set_read_timeout(Some(Duration::from_secs(30)))
        .map_err(|e| e.to_string())?;
    let mut reader = FrameReader::new();
    let mut buf = [0u8; 16 * 1024];
    let mut recv = |sock: &mut TcpStream, reader: &mut FrameReader| -> Result<ServerMsg, String> {
        loop {
            if let Some((tag, payload)) = reader.next_frame().map_err(|e| e.to_string())? {
                return ServerMsg::decode(tag, &payload).map_err(|e| e.to_string());
            }
            let n = sock.read(&mut buf).map_err(|e| format!("read: {e}"))?;
            if n == 0 {
                return Err("server hung up".into());
            }
            reader.feed(&buf[..n]);
        }
    };
    let send = |sock: &mut TcpStream, msg: &ClientMsg| -> Result<(), String> {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        sock.write_all(&wire).map_err(|e| format!("write: {e}"))
    };

    send(
        &mut sock,
        &ClientMsg::Hello {
            version: WIRE_VERSION,
            tenant: 1,
        },
    )?;
    match recv(&mut sock, &mut reader)? {
        ServerMsg::HelloOk { .. } => {}
        other => return Err(format!("expected HELLO_OK, got {other:?}")),
    }

    // Three submissions against a quota of 2: the third must shed with a
    // typed QuotaExceeded, the first two must stream and complete.
    for session in 1..=3u64 {
        send(
            &mut sock,
            &ClientMsg::Submit {
                session,
                not_before_ns: 0,
                fuel: 0,
                name: format!("selftest-{session}"),
                args: format!("task {session}"),
                source: agent_source(1, 8),
            },
        )?;
    }
    let mut accepted = 0;
    let mut quota_shed = false;
    let mut streamed_tokens = 0u64;
    let mut done = 0;
    while done < 2 || accepted + 1 < 3 {
        match recv(&mut sock, &mut reader)? {
            ServerMsg::Accepted { .. } => accepted += 1,
            ServerMsg::Error {
                code: ErrCode::QuotaExceeded,
                session,
                ..
            } => {
                if session != 3 {
                    return Err(format!("quota shed hit session {session}, expected 3"));
                }
                quota_shed = true;
            }
            ServerMsg::Stream { tokens, text, .. } => {
                streamed_tokens += tokens.max(if text.is_empty() { 0 } else { 1 })
            }
            ServerMsg::Done { .. } => done += 1,
            other => return Err(format!("unexpected frame {other:?}")),
        }
    }
    if !quota_shed {
        return Err("no QuotaExceeded for the over-quota submission".into());
    }
    if streamed_tokens == 0 {
        return Err("no streamed tokens observed".into());
    }

    send(&mut sock, &ClientMsg::Bye)?;
    match recv(&mut sock, &mut reader)? {
        ServerMsg::ByeOk => {}
        other => return Err(format!("expected BYE_OK, got {other:?}")),
    }
    Ok(format!(
        "selftest: {accepted} accepted, {done} done, {streamed_tokens} streamed tokens, quota shed observed"
    ))
}
