//! The serving core: SYMR connections multiplexed onto one kernel.
//!
//! [`ServerCore`] is transport-agnostic and fully deterministic: bytes go
//! in through [`ServerCore::feed`], virtual time advances in
//! [`ServerCore::pump`], bytes come out through
//! [`ServerCore::take_output`]. The TCP binary and the in-memory loopback
//! replay harness are both thin shells around this one type, so every
//! protocol decision — admission, quota, backpressure, cancellation — is
//! exercised identically under tests and on a real socket.
//!
//! Admission happens at the door, per the paper's control-plane argument:
//! a submission is checked against the tenant quota and the global
//! session cap *before* a kernel process exists, so an overloaded server
//! sheds with a typed [`ErrCode::QuotaExceeded`]/[`ErrCode::ServerBusy`]
//! frame instead of queueing unbounded work. Slow clients are bounded the
//! same way: a connection whose output buffer exceeds
//! [`ServeConfig::conn_outbuf_cap`] is shed with [`ErrCode::SlowClient`]
//! and its sessions cancelled, so one undrained socket cannot hold kernel
//! memory hostage.

use std::collections::{BTreeMap, BTreeSet, VecDeque};
use std::sync::{Arc, Mutex};

use symphony::telemetry::EventKind;
use symphony::{ExitStatus, Kernel, Pid, SessionEvent, SimTime, SysError};
use symphony_lipscript::{parse::parse, run_lip, verify::verify, InterpLimits};
use symphony_rpc::{
    ClientMsg, ErrCode, FrameReader, ServerMsg, SessionStatus, CONN_SCOPE, DEFAULT_MAX_FRAME,
    WIRE_VERSION,
};

/// Tuning knobs for the front door.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Identity string echoed in HELLO_OK.
    pub server_name: String,
    /// Per-frame payload cap handed to the [`FrameReader`].
    pub max_frame: u32,
    /// Largest accepted LipScript source, in bytes.
    pub max_source_bytes: usize,
    /// Interpreter fuel used when a SUBMIT carries `fuel = 0`.
    pub default_fuel: u64,
    /// Maximum live sessions per tenant (across all connections).
    pub tenant_session_quota: usize,
    /// Maximum live sessions server-wide.
    pub max_live_sessions: usize,
    /// Output-buffer cap per connection; exceeding it sheds the
    /// connection as a slow client.
    pub conn_outbuf_cap: usize,
    /// Run the static verifier on every SUBMIT; programs with verifier
    /// errors are shed with [`ErrCode::VerifyRejected`] before touching
    /// the kernel.
    pub verify: bool,
    /// Feed the verifier's pred-token bound to the scheduler as a static
    /// cost hint ([`Kernel::set_cost_hint`]); requires `verify`.
    pub cost_hints: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            server_name: "symphony-serve/0.1".to_string(),
            max_frame: DEFAULT_MAX_FRAME,
            max_source_bytes: 64 * 1024,
            default_fuel: 10_000_000,
            tenant_session_quota: 8,
            max_live_sessions: 256,
            conn_outbuf_cap: 1 << 20,
            verify: true,
            cost_hints: true,
        }
    }
}

/// Why a connection was closed; mirrored into telemetry as
/// [`EventKind::ConnClose`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CloseReason {
    /// Clean BYE/BYE_OK shutdown.
    Bye,
    /// The transport vanished (client disconnect or injected fault).
    Drop,
    /// A connection-fatal protocol error.
    Error,
    /// Shed for not draining its stream.
    Slow,
}

impl CloseReason {
    fn as_str(self) -> &'static str {
        match self {
            CloseReason::Bye => "bye",
            CloseReason::Drop => "drop",
            CloseReason::Error => "error",
            CloseReason::Slow => "slow",
        }
    }
}

#[derive(Debug, PartialEq, Eq)]
enum ConnState {
    /// Waiting for HELLO.
    Handshake,
    /// Normal operation.
    Open,
    /// BYE received: draining live sessions, then BYE_OK + close.
    Closing,
    /// Closed; output may still be drained by the transport.
    Closed(CloseReason),
}

struct Conn {
    reader: FrameReader,
    out: Vec<u8>,
    tenant: u64,
    state: ConnState,
    /// Live sessions on this connection: session id → kernel pid.
    sessions: BTreeMap<u64, Pid>,
    /// Per-connection output window override (transport backpressure
    /// signal); `None` uses [`ServeConfig::conn_outbuf_cap`].
    window: Option<usize>,
}

/// The SYMR front door: owns the kernel, multiplexes connections onto it.
pub struct ServerCore {
    kernel: Kernel,
    cfg: ServeConfig,
    conns: BTreeMap<u64, Conn>,
    next_conn: u64,
    /// Kernel pid → (conn id, session id) for routing session events.
    routes: BTreeMap<u64, (u64, u64)>,
    live_by_tenant: BTreeMap<u64, usize>,
    live_total: usize,
    /// Pids the server cancelled (CANCEL frame or connection teardown);
    /// their exit reports as DONE{Cancelled} even though the interpreter
    /// surfaces the kernel's typed error as a tool failure.
    cancel_requested: BTreeSet<u64>,
    /// Session events drained from the kernel sink, in virtual-time order.
    events: Arc<Mutex<VecDeque<SessionEvent>>>,
}

impl ServerCore {
    /// Wraps a configured kernel (tools registered, KV preloaded) as a
    /// serving core. Installs the kernel's session sink; the kernel must
    /// not have one already.
    pub fn new(mut kernel: Kernel, cfg: ServeConfig) -> Self {
        let events: Arc<Mutex<VecDeque<SessionEvent>>> = Arc::new(Mutex::new(VecDeque::new()));
        let sink_events = Arc::clone(&events);
        kernel.set_session_sink(Box::new(move |ev| {
            sink_events
                .lock()
                .unwrap_or_else(|p| p.into_inner())
                .push_back(ev);
        }));
        ServerCore {
            kernel,
            cfg,
            conns: BTreeMap::new(),
            next_conn: 1,
            routes: BTreeMap::new(),
            live_by_tenant: BTreeMap::new(),
            live_total: 0,
            cancel_requested: BTreeSet::new(),
            events,
        }
    }

    /// The wrapped kernel (trace/metrics/event access for harnesses).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Opens a connection and returns its id. Telemetry's `ConnOpen` is
    /// deferred to the HELLO, when the tenant is known.
    pub fn open_conn(&mut self) -> u64 {
        let id = self.next_conn;
        self.next_conn += 1;
        self.conns.insert(
            id,
            Conn {
                reader: FrameReader::with_max_frame(self.cfg.max_frame),
                out: Vec::new(),
                tenant: 0,
                state: ConnState::Handshake,
                sessions: BTreeMap::new(),
                window: None,
            },
        );
        id
    }

    /// Feeds received bytes into a connection and processes every
    /// complete frame. Unknown or closed connections ignore input (the
    /// transport races its own teardown). Call [`ServerCore::pump`]
    /// afterwards to run the kernel and collect streamed output.
    pub fn feed(&mut self, conn: u64, bytes: &[u8]) {
        {
            let Some(c) = self.conns.get_mut(&conn) else {
                return;
            };
            if matches!(c.state, ConnState::Closed(_)) {
                return;
            }
            c.reader.feed(bytes);
            self.kernel
                .metrics_registry()
                .counter("serve.bytes.in")
                .add(bytes.len() as u64);
        }
        loop {
            let frame = {
                // lint:allow(k1): conn presence was checked above and feed is single-threaded
                let c = self.conns.get_mut(&conn).expect("conn exists");
                if matches!(c.state, ConnState::Closed(_)) {
                    return;
                }
                c.reader.next_frame()
            };
            match frame {
                Ok(None) => return,
                Ok(Some((tag, payload))) => {
                    self.kernel
                        .metrics_registry()
                        .counter("serve.frames.in")
                        .inc();
                    self.handle_frame(conn, tag, &payload);
                }
                Err(e) => {
                    self.fatal(conn, e.err_code(), &e.to_string());
                    return;
                }
            }
        }
    }

    /// Runs the kernel to quiescence and converts session events into
    /// STREAM/DONE frames on their owning connections. Loops until no
    /// further events surface (a slow-client shed cancels sessions, which
    /// produces more events). Finishes BYE handshakes whose sessions have
    /// drained.
    pub fn pump(&mut self) {
        loop {
            self.kernel.run();
            let drained: Vec<SessionEvent> = {
                let mut q = self.events.lock().unwrap_or_else(|p| p.into_inner());
                q.drain(..).collect()
            };
            if drained.is_empty() {
                break;
            }
            for ev in drained {
                self.route_event(ev);
            }
        }
        self.finish_closing();
    }

    /// Drains a connection's pending output bytes.
    pub fn take_output(&mut self, conn: u64) -> Vec<u8> {
        self.conns
            .get_mut(&conn)
            .map(|c| std::mem::take(&mut c.out))
            .unwrap_or_default()
    }

    /// Bytes queued on a connection, without draining them.
    pub fn pending_output(&self, conn: u64) -> usize {
        self.conns.get(&conn).map(|c| c.out.len()).unwrap_or(0)
    }

    /// Whether the connection reached a closed state (output may still be
    /// pending for the transport to flush).
    pub fn is_closed(&self, conn: u64) -> bool {
        self.conns
            .get(&conn)
            .map(|c| matches!(c.state, ConnState::Closed(_)))
            .unwrap_or(true)
    }

    /// The close reason, once closed.
    pub fn close_reason(&self, conn: u64) -> Option<CloseReason> {
        match self.conns.get(&conn)?.state {
            ConnState::Closed(r) => Some(r),
            _ => None,
        }
    }

    /// Live sessions across all connections.
    pub fn live_sessions(&self) -> usize {
        self.live_total
    }

    /// Overrides one connection's output window (a transport-level
    /// backpressure signal, e.g. a collapsed TCP send window). Exceeding
    /// it sheds the connection as a slow client.
    pub fn set_conn_window(&mut self, conn: u64, cap: usize) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.window = Some(cap);
        }
    }

    /// Simulates an abrupt transport loss (client crash, injected fault):
    /// pending output is discarded and every live session is cancelled.
    /// The cancellations settle on the next [`ServerCore::pump`].
    pub fn drop_conn(&mut self, conn: u64) {
        if let Some(c) = self.conns.get_mut(&conn) {
            c.out.clear();
        }
        self.close(conn, CloseReason::Drop);
    }

    // ---- frame handling ----------------------------------------------------

    fn handle_frame(&mut self, conn: u64, tag: u8, payload: &[u8]) {
        let msg = match ClientMsg::decode(tag, payload) {
            Ok(m) => m,
            Err(code) => {
                // Decode failures at the door are connection-fatal: the
                // peer speaks a different protocol (or direction).
                self.fatal(conn, code, &format!("opcode 0x{tag:02x}: {code}"));
                return;
            }
        };
        let state = &self
            .conns
            .get(&conn)
            // lint:allow(k1): handle_frame is only called for live conns
            .expect("conn exists")
            .state;
        if *state == ConnState::Handshake {
            match msg {
                ClientMsg::Hello { version, tenant } => self.handle_hello(conn, version, tenant),
                _ => self.fatal(conn, ErrCode::NotHello, "first frame must be HELLO"),
            }
            return;
        }
        match msg {
            ClientMsg::Hello { .. } => {
                self.fatal(conn, ErrCode::BadFrame, "HELLO repeated after handshake");
            }
            ClientMsg::Submit {
                session,
                not_before_ns,
                fuel,
                name,
                args,
                source,
            } => self.handle_submit(conn, session, not_before_ns, fuel, &name, &args, source),
            ClientMsg::Cancel { session } => self.handle_cancel(conn, session),
            ClientMsg::Ping { nonce } => self.reply(conn, &ServerMsg::Pong { nonce }),
            ClientMsg::Bye => {
                // lint:allow(k1): conn presence established above
                let c = self.conns.get_mut(&conn).expect("conn exists");
                c.state = ConnState::Closing;
                // BYE_OK goes out from finish_closing once sessions drain.
            }
        }
    }

    fn handle_hello(&mut self, conn: u64, version: u32, tenant: u64) {
        if version != WIRE_VERSION {
            self.fatal(
                conn,
                ErrCode::BadVersion,
                &format!("client v{version}, server v{WIRE_VERSION}"),
            );
            return;
        }
        // lint:allow(k1): conn presence established by the caller
        let c = self.conns.get_mut(&conn).expect("conn exists");
        c.tenant = tenant;
        c.state = ConnState::Open;
        self.kernel
            .emit_event(|| EventKind::ConnOpen { conn, tenant });
        self.kernel
            .metrics_registry()
            .counter("serve.conns.opened")
            .inc();
        let server = self.cfg.server_name.clone();
        self.reply(
            conn,
            &ServerMsg::HelloOk {
                version: WIRE_VERSION,
                server,
            },
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn handle_submit(
        &mut self,
        conn: u64,
        session: u64,
        not_before_ns: u64,
        fuel: u64,
        name: &str,
        args: &str,
        source: String,
    ) {
        let (tenant, closing, duplicate) = {
            // lint:allow(k1): conn presence established by the caller
            let c = self.conns.get(&conn).expect("conn exists");
            (
                c.tenant,
                c.state == ConnState::Closing,
                c.sessions.contains_key(&session),
            )
        };
        // Admission checks, cheapest first; each refusal is one typed
        // session-scoped ERROR and costs no kernel state.
        let mut static_hint: Option<Option<u64>> = None;
        let refusal = if session == CONN_SCOPE {
            Some((ErrCode::ProgramRejected, "session id 0 is reserved".into()))
        } else if duplicate {
            Some((
                ErrCode::DuplicateSession,
                format!("session {session} is live"),
            ))
        } else if closing {
            Some((ErrCode::ProgramRejected, "connection is closing".into()))
        } else if source.len() > self.cfg.max_source_bytes {
            Some((
                ErrCode::SourceTooLarge,
                format!("{} bytes > cap {}", source.len(), self.cfg.max_source_bytes),
            ))
        } else if self.live_by_tenant.get(&tenant).copied().unwrap_or(0)
            >= self.cfg.tenant_session_quota
        {
            Some((
                ErrCode::QuotaExceeded,
                format!(
                    "tenant {tenant} at {} live sessions",
                    self.cfg.tenant_session_quota
                ),
            ))
        } else if self.live_total >= self.cfg.max_live_sessions {
            Some((
                ErrCode::ServerBusy,
                format!("server at {} live sessions", self.cfg.max_live_sessions),
            ))
        } else {
            // The program gate: parse errors stay `ProgramRejected`,
            // verifier errors shed as `VerifyRejected` — both carry a
            // compiler-style `name:line:col: message` detail and cost
            // zero interpreter fuel. An admissible program's effect
            // summary doubles as the scheduler's static cost hint.
            match parse(&source) {
                Err(e) => Some((ErrCode::ProgramRejected, e.render(name))),
                Ok(prog) if self.cfg.verify => {
                    let report = verify(&prog);
                    match report.first_error() {
                        Some(d) => Some((ErrCode::VerifyRejected, d.render(name))),
                        None => {
                            if self.cfg.cost_hints {
                                static_hint = Some(report.effects.service_estimate());
                            }
                            None
                        }
                    }
                }
                Ok(_) => None,
            }
        };
        if let Some((code, detail)) = refusal {
            self.kernel
                .metrics_registry()
                .counter("serve.sessions.shed")
                .inc();
            if code == ErrCode::VerifyRejected {
                self.kernel
                    .metrics_registry()
                    .counter("serve.sessions.verify_rejected")
                    .inc();
            }
            self.reply(
                conn,
                &ServerMsg::Error {
                    session,
                    code,
                    detail,
                },
            );
            return;
        }

        let limits = InterpLimits {
            fuel: if fuel == 0 {
                self.cfg.default_fuel
            } else {
                fuel
            },
            ..Default::default()
        };
        // A SUBMIT may carry a virtual arrival floor (trace replay with
        // simulated RTT); past floors mean "now".
        let at = SimTime::from_nanos(not_before_ns.max(self.kernel.now().as_nanos()));
        let pid = self.kernel.schedule_process(at, name, args, move |ctx| {
            run_lip(&source, ctx, limits)
                .map(|_| ())
                .map_err(|e| SysError::ToolFailed(e.to_string()))
        });
        if let Some(hint) = static_hint {
            self.kernel.set_cost_hint(pid, hint);
        }
        // lint:allow(k1): conn presence established by the caller
        let c = self.conns.get_mut(&conn).expect("conn exists");
        c.sessions.insert(session, pid);
        self.routes.insert(pid.0, (conn, session));
        *self.live_by_tenant.entry(tenant).or_insert(0) += 1;
        self.live_total += 1;
        self.kernel.emit_event(|| EventKind::SessionBegin {
            conn,
            session,
            pid: pid.0,
            tenant,
        });
        self.kernel
            .metrics_registry()
            .counter("serve.sessions.accepted")
            .inc();
        self.reply(
            conn,
            &ServerMsg::Accepted {
                session,
                pid: pid.0,
            },
        );
    }

    fn handle_cancel(&mut self, conn: u64, session: u64) {
        let pid = self
            .conns
            .get(&conn)
            .and_then(|c| c.sessions.get(&session))
            .copied();
        match pid {
            Some(pid) => {
                // The DONE{Cancelled} that follows on the next pump is the
                // acknowledgement; there is no separate CANCEL_OK.
                if self.kernel.cancel_process(pid) {
                    self.cancel_requested.insert(pid.0);
                }
            }
            None => self.reply(
                conn,
                &ServerMsg::Error {
                    session,
                    code: ErrCode::NoSuchSession,
                    detail: format!("session {session} is not live on this connection"),
                },
            ),
        }
    }

    // ---- session events ----------------------------------------------------

    fn route_event(&mut self, ev: SessionEvent) {
        match ev {
            SessionEvent::Emitted {
                pid,
                at,
                text,
                tokens,
            } => {
                let Some(&(conn, session)) = self.routes.get(&pid.0) else {
                    return;
                };
                if self.conn_is_closed(conn) {
                    return; // dropped mid-stream; kernel keeps running until cancel lands
                }
                self.reply(
                    conn,
                    &ServerMsg::Stream {
                        session,
                        at_ns: at.as_nanos(),
                        tokens,
                        text,
                    },
                );
                self.check_slow(conn);
            }
            SessionEvent::Exited {
                pid,
                at,
                status,
                usage,
            } => {
                let Some((conn, session)) = self.routes.remove(&pid.0) else {
                    return;
                };
                let tenant = self.conns.get(&conn).map(|c| c.tenant).unwrap_or(0);
                if let Some(c) = self.conns.get_mut(&conn) {
                    c.sessions.remove(&session);
                }
                if let Some(n) = self.live_by_tenant.get_mut(&tenant) {
                    *n = n.saturating_sub(1);
                }
                self.live_total = self.live_total.saturating_sub(1);
                let was_cancelled = self.cancel_requested.remove(&pid.0);
                let (st, detail) = match status {
                    ExitStatus::Ok => (SessionStatus::Ok, String::new()),
                    ExitStatus::Error(SysError::Cancelled) => {
                        (SessionStatus::Cancelled, String::new())
                    }
                    // The interpreter reports the kernel's typed Cancelled
                    // as a tool failure; the server requested the cancel,
                    // so it owns the classification.
                    ExitStatus::Error(_) if was_cancelled => {
                        (SessionStatus::Cancelled, String::new())
                    }
                    ExitStatus::Error(e) => (SessionStatus::Error, e.to_string()),
                    ExitStatus::Crashed => (SessionStatus::Crashed, String::new()),
                };
                self.kernel.emit_event(|| EventKind::SessionEnd {
                    conn,
                    session,
                    pid: pid.0,
                    ok: st == SessionStatus::Ok,
                });
                self.kernel
                    .metrics_registry()
                    .counter("serve.sessions.done")
                    .inc();
                if !self.conn_is_closed(conn) {
                    self.reply(
                        conn,
                        &ServerMsg::Done {
                            session,
                            at_ns: at.as_nanos(),
                            status: st,
                            detail,
                            emitted_tokens: usage.emitted_tokens,
                            pred_tokens: usage.pred_tokens,
                        },
                    );
                    self.check_slow(conn);
                }
            }
        }
    }

    fn finish_closing(&mut self) {
        let done: Vec<u64> = self
            .conns
            .iter()
            .filter(|(_, c)| c.state == ConnState::Closing && c.sessions.is_empty())
            .map(|(&id, _)| id)
            .collect();
        for conn in done {
            self.reply(conn, &ServerMsg::ByeOk);
            self.close(conn, CloseReason::Bye);
        }
    }

    // ---- plumbing ----------------------------------------------------------

    fn conn_is_closed(&self, conn: u64) -> bool {
        self.conns
            .get(&conn)
            .map(|c| matches!(c.state, ConnState::Closed(_)))
            .unwrap_or(true)
    }

    /// Encodes a server message onto the connection's output buffer.
    fn reply(&mut self, conn: u64, msg: &ServerMsg) {
        let Some(c) = self.conns.get_mut(&conn) else {
            return;
        };
        let before = c.out.len();
        msg.encode(&mut c.out);
        let grew = (c.out.len() - before) as u64;
        let reg = self.kernel.metrics_registry();
        reg.counter("serve.frames.out").inc();
        reg.counter("serve.bytes.out").add(grew);
        if matches!(msg, ServerMsg::Error { .. }) {
            reg.counter("serve.errors").inc();
        }
    }

    /// A connection that stopped draining gets one SlowClient error frame
    /// and is torn down; its sessions are cancelled so kernel work stops.
    fn check_slow(&mut self, conn: u64) {
        let cap = match self.conns.get(&conn) {
            Some(c) if !matches!(c.state, ConnState::Closed(_)) => {
                let cap = c.window.unwrap_or(self.cfg.conn_outbuf_cap);
                if c.out.len() <= cap {
                    return;
                }
                cap
            }
            _ => return,
        };
        self.reply(
            conn,
            &ServerMsg::Error {
                session: CONN_SCOPE,
                code: ErrCode::SlowClient,
                detail: format!("output buffer over {cap} bytes"),
            },
        );
        self.close(conn, CloseReason::Slow);
    }

    /// Connection-fatal protocol error: one typed ERROR frame, then close.
    fn fatal(&mut self, conn: u64, code: ErrCode, detail: &str) {
        self.reply(
            conn,
            &ServerMsg::Error {
                session: CONN_SCOPE,
                code,
                detail: detail.to_string(),
            },
        );
        self.close(conn, CloseReason::Error);
    }

    fn close(&mut self, conn: u64, reason: CloseReason) {
        let pids: Vec<Pid> = {
            let Some(c) = self.conns.get_mut(&conn) else {
                return;
            };
            if matches!(c.state, ConnState::Closed(_)) {
                return;
            }
            c.state = ConnState::Closed(reason);
            c.sessions.values().copied().collect()
        };
        for pid in pids {
            // Routes stay until the Exited event lands so accounting
            // (live counts, SessionEnd) flows through route_event.
            if self.kernel.cancel_process(pid) {
                self.cancel_requested.insert(pid.0);
            }
        }
        self.kernel.emit_event(|| EventKind::ConnClose {
            conn,
            reason: reason.as_str(),
        });
        self.kernel
            .metrics_registry()
            .counter("serve.conns.closed")
            .inc();
    }
}
