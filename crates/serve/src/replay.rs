//! Loopback replay: a deterministic load generator for the front door.
//!
//! Drives a [`ServerCore`] through an in-memory "wire" with a simulated
//! client↔server RTT: a submission sent at client time `t` reaches the
//! server at `t + rtt/2` (encoded as the SUBMIT's `not_before_ns` floor),
//! and a frame the server stamps at virtual `at_ns` is observed by the
//! client at `at_ns + rtt/2`. Everything — arrival jitter, fault
//! placement, program shapes — derives from one seed, so two replays of
//! the same spec produce byte-identical wire traffic and reports. That
//! determinism is load-bearing: the e2e suite and the CI smoke job diff
//! two runs.
//!
//! Programs are rendered from the workload generators in
//! `symphony-workloads`: agent traces become tool-calling LipScript
//! programs, RAG requests become fork-of-shared-prefix programs over the
//! server's preloaded `doc{n}.kv` corpus.

use std::collections::BTreeMap;

use symphony::{Kernel, KernelConfig, Mode, SimDuration, ToolOutcome, ToolSpec};
use symphony_rpc::{ClientMsg, ErrCode, FrameReader, ServerMsg, SessionStatus, WIRE_VERSION};
use symphony_sim::Rng;
use symphony_workloads::agent::AgentWorkload;
use symphony_workloads::rag::RagWorkload;

use crate::server::{CloseReason, ServeConfig, ServerCore};

/// Number of preloaded shared RAG document prefixes (`doc0.kv` ..).
pub const RAG_DOCS: usize = 4;

/// Which program family a replay submits.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WorkloadKind {
    /// Tool-calling agents: generate, call a server-side tool, repeat.
    Agent,
    /// RAG over shared document prefixes: fork `doc{n}.kv`, append the
    /// question, generate.
    Rag,
    /// Mixed static cost: three statically-bounded short programs
    /// (`short-*`, finite verifier pred bound) for every unbounded
    /// agent program (`long-*`). The workload that shows what the
    /// scheduler's admission-time cost hints buy.
    MixedCost,
}

/// One replay's shape. All randomness flows from `seed`.
#[derive(Debug, Clone)]
pub struct ReplaySpec {
    /// Program family.
    pub workload: WorkloadKind,
    /// Total submissions.
    pub sessions: usize,
    /// Connections the sessions are spread over (round-robin).
    pub conns: usize,
    /// Distinct tenants (connection `i` authenticates as `i % tenants + 1`).
    pub tenants: u64,
    /// Simulated client↔server round-trip time.
    pub rtt: SimDuration,
    /// Mean client-side gap between submissions (jittered ±50%).
    pub mean_gap: SimDuration,
    /// Seed for jitter and program shapes.
    pub seed: u64,
    /// Sever this many connections (the highest-numbered ones) right
    /// after submission, exercising the conn-drop fault path.
    pub drop_conns: usize,
    /// Collapse the send window of this many connections (the
    /// lowest-numbered ones) to force SlowClient sheds.
    pub slow_conns: usize,
    /// When non-zero, every `hostile_every`-th submission is replaced by
    /// a parseable-but-invalid program (`hostile-*`, rotating through
    /// the verifier's error classes) that the door must shed with
    /// `VerifyRejected` before it costs any interpreter fuel.
    pub hostile_every: usize,
}

impl Default for ReplaySpec {
    fn default() -> Self {
        ReplaySpec {
            workload: WorkloadKind::Agent,
            sessions: 24,
            conns: 4,
            tenants: 2,
            rtt: SimDuration::from_millis(20),
            mean_gap: SimDuration::from_millis(5),
            seed: 1,
            drop_conns: 0,
            slow_conns: 0,
            hostile_every: 0,
        }
    }
}

/// Client-observed outcome of one submitted program.
#[derive(Debug, Clone)]
pub struct ProgramStat {
    /// Session id (1-based, unique across the replay).
    pub session: u64,
    /// Program name the SUBMIT carried (`agent-3`, `short-7`,
    /// `hostile-2`, ...); harnesses segment latency by its prefix.
    pub name: String,
    /// Connection that carried it.
    pub conn: u64,
    /// Tenant it ran under.
    pub tenant: u64,
    /// Client virtual time of the SUBMIT.
    pub submit_ns: u64,
    /// Client-observed time to first streamed byte, if any arrived.
    pub ttft_ns: Option<u64>,
    /// Client-observed end-to-end latency, if a DONE arrived.
    pub latency_ns: Option<u64>,
    /// Streamed chunks observed.
    pub chunks: u64,
    /// Final status from DONE, if one arrived.
    pub status: Option<SessionStatus>,
    /// Tokens emitted per DONE accounting.
    pub emitted_tokens: u64,
    /// Typed refusal, if the submission was shed at the door.
    pub shed: Option<ErrCode>,
}

/// Everything a replay observed, client-side.
#[derive(Debug, Clone)]
pub struct ReplayReport {
    /// Per-program outcomes, in session order.
    pub programs: Vec<ProgramStat>,
    /// Concatenated streamed text per session (byte-identical across
    /// same-seed runs; the determinism tests diff this).
    pub streamed: BTreeMap<u64, String>,
    /// Close reason per connection.
    pub closes: BTreeMap<u64, Option<CloseReason>>,
    /// Total wire bytes the client received.
    pub wire_bytes: u64,
}

impl ReplayReport {
    fn percentile(values: &mut [u64], p: f64) -> Option<u64> {
        if values.is_empty() {
            return None;
        }
        values.sort_unstable();
        let idx = ((p / 100.0) * (values.len() - 1) as f64).round() as usize;
        values.get(idx).copied()
    }

    /// Client-observed TTFT percentile in nanoseconds.
    pub fn ttft_p(&self, p: f64) -> Option<u64> {
        let mut v: Vec<u64> = self.programs.iter().filter_map(|s| s.ttft_ns).collect();
        Self::percentile(&mut v, p)
    }

    /// Client-observed per-program latency percentile in nanoseconds.
    pub fn latency_p(&self, p: f64) -> Option<u64> {
        let mut v: Vec<u64> = self.programs.iter().filter_map(|s| s.latency_ns).collect();
        Self::percentile(&mut v, p)
    }

    /// Latency percentile restricted to programs whose name starts with
    /// `prefix` (e.g. `"short-"` in the [`WorkloadKind::MixedCost`]
    /// workload).
    pub fn latency_p_named(&self, prefix: &str, p: f64) -> Option<u64> {
        let mut v: Vec<u64> = self
            .programs
            .iter()
            .filter(|s| s.name.starts_with(prefix))
            .filter_map(|s| s.latency_ns)
            .collect();
        Self::percentile(&mut v, p)
    }

    /// Programs that completed with a DONE{Ok}.
    pub fn completed(&self) -> usize {
        self.programs
            .iter()
            .filter(|s| s.status == Some(SessionStatus::Ok))
            .count()
    }

    /// Programs refused at the door, by code.
    pub fn sheds(&self) -> BTreeMap<ErrCode, usize> {
        let mut m = BTreeMap::new();
        for s in &self.programs {
            if let Some(code) = s.shed {
                *m.entry(code).or_insert(0) += 1;
            }
        }
        m
    }

    /// Total streamed tokens observed across all sessions.
    pub fn streamed_tokens(&self) -> u64 {
        self.programs.iter().map(|s| s.emitted_tokens).sum()
    }

    /// Deterministic human-readable summary (the load generator's stdout).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let ms = |v: Option<u64>| match v {
            Some(ns) => format!("{:.2} ms", ns as f64 / 1e6),
            None => "n/a".to_string(),
        };
        out.push_str(&format!(
            "programs: {} submitted, {} completed, {} streamed tokens\n",
            self.programs.len(),
            self.completed(),
            self.streamed_tokens(),
        ));
        out.push_str(&format!(
            "client-observed ttft:    p50 {}  p99 {}\n",
            ms(self.ttft_p(50.0)),
            ms(self.ttft_p(99.0)),
        ));
        out.push_str(&format!(
            "client-observed latency: p50 {}  p99 {}\n",
            ms(self.latency_p(50.0)),
            ms(self.latency_p(99.0)),
        ));
        let sheds = self.sheds();
        if sheds.is_empty() {
            out.push_str("sheds: none\n");
        } else {
            for (code, n) in &sheds {
                out.push_str(&format!("sheds: {n} x {code} (code {})\n", code.code()));
            }
        }
        for (conn, reason) in &self.closes {
            out.push_str(&format!(
                "conn {conn}: {}\n",
                reason
                    .map(|r| format!("closed ({r:?})"))
                    .unwrap_or_else(|| "open".into()),
            ));
        }
        out.push_str(&format!("wire: {} bytes received\n", self.wire_bytes));
        out
    }
}

/// Builds a kernel with the standard serving environment: a shared system
/// prompt, `RAG_DOCS` shared document prefixes (`doc0.kv` ..) and the
/// `echo`/`time` demo tools — the same environment `lip_run` provides,
/// plus the corpus.
pub fn standard_kernel(cfg: KernelConfig) -> Kernel {
    let mut kernel = Kernel::new(cfg);
    let sys = kernel
        .tokenizer()
        .encode("you are a helpful assistant running as a user program");
    kernel
        .preload_kv("sys_msg.kv", &sys, Mode::SHARED_READ, true)
        // lint:allow(k1): preload into a fresh kernel cannot collide
        .expect("preload system prompt");
    for doc in 0..RAG_DOCS {
        let text = format!(
            "document {doc}: symphony serves programs, not prompts; topic {doc} reference text"
        );
        let toks = kernel.tokenizer().encode(&text);
        kernel
            .preload_kv(&format!("doc{doc}.kv"), &toks, Mode::SHARED_READ, true)
            // lint:allow(k1): doc names are distinct by construction
            .expect("preload corpus doc");
    }
    kernel.register_tool(
        "echo",
        ToolSpec::fixed(SimDuration::from_millis(5), |args| {
            ToolOutcome::Ok(args.to_string())
        }),
    );
    kernel.register_tool(
        "time",
        ToolSpec::fixed(SimDuration::from_millis(1), |_| {
            ToolOutcome::Ok("simulated-epoch".to_string())
        }),
    );
    kernel
}

/// Renders a tool-calling agent as LipScript: `calls` rounds of
/// (generate up to `seg` tokens, invoke `echo`, feed the result back).
pub fn agent_source(calls: usize, seg: usize) -> String {
    format!(
        r#"let q = args();
let kv = kv_create();
let toks = tokenize("agent: " + q);
let d = pred(kv, toks, 0)[len(toks) - 1];
let pos = len(toks);
let total = 0;
let i = 0;
while (i < {calls}) {{
    let n = 0;
    while (n < {seg}) {{
        let t = argmax(d);
        if (t == eos()) {{ break; }}
        emit_token(t);
        d = pred(kv, [t], pos)[0];
        pos = pos + 1;
        n = n + 1;
    }}
    total = total + n;
    let r = call_tool("echo", "step " + str(i) + " " + q);
    emit("[tool " + str(i) + ": " + r + "]");
    let rt = tokenize(r);
    d = pred(kv, rt, pos)[len(rt) - 1];
    pos = pos + len(rt);
    i = i + 1;
}}
emit("[agent done: " + str(total) + "]");
kv_remove(kv);
"#
    )
}

/// Renders a RAG request as LipScript: fork the shared `doc{{topic}}.kv`
/// prefix, append the question, generate up to `gen` tokens. The args
/// string carries `topic|question`.
pub fn rag_source(gen: usize) -> String {
    format!(
        r#"let parts = split(args(), "|");
let kv = kv_fork(kv_open("doc" + parts[0] + ".kv"));
let toks = tokenize("q: " + parts[1]);
let d = pred(kv, toks, kv_len(kv))[len(toks) - 1];
let pos = kv_len(kv);
let n = 0;
while (n < {gen}) {{
    let t = argmax(d);
    if (t == eos()) {{ break; }}
    emit_token(t);
    d = pred(kv, [t], pos)[0];
    pos = pos + 1;
    n = n + 1;
}}
emit("[rag done: " + str(n) + "]");
kv_remove(kv);
"#
    )
}

/// Renders a statically-bounded short completion as LipScript: prefill,
/// then exactly `gen` single-token generation steps inside a
/// `for .. in range(..)` loop the verifier can count. Its effect summary
/// carries a finite pred bound (`gen + 1`), so the door's cost hint
/// keeps it at the top of the MLFQ ladder for its whole short life.
pub fn short_source(gen: usize) -> String {
    format!(
        r#"let q = args();
let kv = kv_create();
let toks = tokenize("short: " + q);
let d = pred(kv, toks, 0)[len(toks) - 1];
let pos = len(toks);
let n = 0;
for i in range(0, {gen}) {{
    let t = argmax(d);
    if (t == eos()) {{ break; }}
    emit_token(t);
    d = pred(kv, [t], pos)[0];
    pos = pos + 1;
    n = n + 1;
}}
emit("[short done: " + str(n) + "]");
kv_remove(kv);
"#
    )
}

/// Renders a parseable-but-invalid program: `kind` rotates through the
/// verifier's error classes (undefined variable, undefined function,
/// builtin arity, bad spawn target, definite type misuse, stray
/// control flow). Every one of these parses cleanly — only the static
/// verifier stands between it and an interpreter fault.
pub fn hostile_source(kind: usize) -> String {
    match kind % 6 {
        0 => "let x = missing + 1;\nemit(str(x));\n".to_string(),
        1 => "let r = frobnicate(args());\nemit(r);\n".to_string(),
        2 => "let n = len();\nemit(str(n));\n".to_string(),
        3 => "let t = spawn(\"no_such_fn\", 1);\njoin(t);\n".to_string(),
        4 => "let n = 1 - \"two\";\nemit(str(n));\n".to_string(),
        _ => "break;\n".to_string(),
    }
}

/// One prepared submission.
struct Job {
    session: u64,
    conn_idx: usize,
    submit_ns: u64,
    name: String,
    args: String,
    source: String,
}

fn build_jobs(spec: &ReplaySpec) -> Vec<Job> {
    let mut rng = Rng::new(spec.seed ^ 0x5e7e);
    let mut agent = AgentWorkload::new(&["echo", "time"], 2, 12, 16, spec.rtt, spec.seed);
    let mut rag = RagWorkload::new(RAG_DOCS, 1.2, 50.0, spec.seed);
    let mut t = 0u64;
    (0..spec.sessions)
        .map(|i| {
            let jitter = 0.5 + rng.next_f64();
            t += (spec.mean_gap.as_nanos() as f64 * jitter) as u64;
            let hostile = spec.hostile_every > 0 && (i + 1) % spec.hostile_every == 0;
            let (name, args, source) = if hostile {
                (
                    format!("hostile-{}", i + 1),
                    String::new(),
                    hostile_source(i / spec.hostile_every),
                )
            } else {
                match spec.workload {
                    WorkloadKind::Agent => {
                        let trace = agent.next_trace();
                        let seg = trace
                            .gen_segments
                            .first()
                            .copied()
                            .unwrap_or(8)
                            .clamp(4, 24);
                        (
                            format!("agent-{}", i + 1),
                            format!("task {}", i + 1),
                            agent_source(trace.calls.len().clamp(1, 3), seg),
                        )
                    }
                    WorkloadKind::Rag => {
                        let req = rag.next_request();
                        (
                            format!("rag-{}", i + 1),
                            format!("{}|{}", req.topic % RAG_DOCS, req.query),
                            rag_source(16),
                        )
                    }
                    WorkloadKind::MixedCost => {
                        if (i + 1) % 4 == 0 {
                            let trace = agent.next_trace();
                            let seg = trace
                                .gen_segments
                                .first()
                                .copied()
                                .unwrap_or(8)
                                .clamp(8, 24);
                            (
                                format!("long-{}", i + 1),
                                format!("task {}", i + 1),
                                agent_source(trace.calls.len().clamp(2, 3), seg),
                            )
                        } else {
                            (
                                format!("short-{}", i + 1),
                                format!("q {}", i + 1),
                                short_source(6),
                            )
                        }
                    }
                }
            };
            Job {
                session: (i + 1) as u64,
                conn_idx: i % spec.conns,
                submit_ns: t,
                name,
                args,
                source,
            }
        })
        .collect()
}

/// Runs a replay against a fresh [`ServerCore`] built from `serve_cfg`
/// and the standard kernel environment.
pub fn run_replay(spec: &ReplaySpec, serve_cfg: ServeConfig) -> ReplayReport {
    let core = ServerCore::new(standard_kernel(KernelConfig::for_tests()), serve_cfg);
    run_replay_on(spec, core).0
}

/// Runs a replay against an existing core; returns the report and the
/// spent core (kernel trace/metrics/telemetry access for harnesses).
pub fn run_replay_on(spec: &ReplaySpec, mut core: ServerCore) -> (ReplayReport, ServerCore) {
    let half_rtt = spec.rtt.as_nanos() / 2;
    let jobs = build_jobs(spec);

    // Open + HELLO every connection.
    let conn_ids: Vec<u64> = (0..spec.conns).map(|_| core.open_conn()).collect();
    let mut readers: BTreeMap<u64, FrameReader> = BTreeMap::new();
    for (i, &conn) in conn_ids.iter().enumerate() {
        let tenant = (i as u64 % spec.tenants) + 1;
        let mut wire = Vec::new();
        ClientMsg::Hello {
            version: WIRE_VERSION,
            tenant,
        }
        .encode(&mut wire);
        core.feed(conn, &wire);
        readers.insert(conn, FrameReader::new());
    }

    // Collapse send windows on the first `slow_conns` connections.
    for &conn in conn_ids.iter().take(spec.slow_conns) {
        core.set_conn_window(conn, 256);
    }

    // Feed every submission with its arrival floor; ACCEPTED/ERROR replies
    // appear synchronously, streamed output comes from the pump.
    let mut stats: BTreeMap<u64, ProgramStat> = BTreeMap::new();
    for job in &jobs {
        let conn = conn_ids[job.conn_idx];
        let tenant = (job.conn_idx as u64 % spec.tenants) + 1;
        let mut wire = Vec::new();
        ClientMsg::Submit {
            session: job.session,
            not_before_ns: job.submit_ns + half_rtt,
            fuel: 0,
            name: job.name.clone(),
            args: job.args.clone(),
            source: job.source.clone(),
        }
        .encode(&mut wire);
        core.feed(conn, &wire);
        stats.insert(
            job.session,
            ProgramStat {
                session: job.session,
                name: job.name.clone(),
                conn,
                tenant,
                submit_ns: job.submit_ns,
                ttft_ns: None,
                latency_ns: None,
                chunks: 0,
                status: None,
                emitted_tokens: 0,
                shed: None,
            },
        );
    }

    // Sever the last `drop_conns` connections before the run: their
    // sessions are cancelled server-side and stream nothing.
    for &conn in conn_ids.iter().rev().take(spec.drop_conns) {
        core.drop_conn(conn);
    }

    core.pump();

    // Polite shutdown on the survivors, then drain the wire client-side.
    for &conn in &conn_ids {
        if !core.is_closed(conn) {
            let mut wire = Vec::new();
            ClientMsg::Bye.encode(&mut wire);
            core.feed(conn, &wire);
        }
    }
    core.pump();

    let mut streamed: BTreeMap<u64, String> = BTreeMap::new();
    let mut wire_bytes = 0u64;
    for &conn in &conn_ids {
        let bytes = core.take_output(conn);
        wire_bytes += bytes.len() as u64;
        // lint:allow(k1): reader was inserted for every conn above
        let reader = readers.get_mut(&conn).expect("reader exists");
        reader.feed(&bytes);
        while let Some((tag, payload)) = reader.next_frame().ok().flatten() {
            let Ok(msg) = ServerMsg::decode(tag, &payload) else {
                continue;
            };
            match msg {
                ServerMsg::Stream {
                    session,
                    at_ns,
                    tokens: _,
                    text,
                } => {
                    if let Some(s) = stats.get_mut(&session) {
                        let observed = at_ns + half_rtt;
                        s.ttft_ns
                            .get_or_insert(observed.saturating_sub(s.submit_ns));
                        s.chunks += 1;
                        streamed.entry(session).or_default().push_str(&text);
                    }
                }
                ServerMsg::Done {
                    session,
                    at_ns,
                    status,
                    emitted_tokens,
                    ..
                } => {
                    if let Some(s) = stats.get_mut(&session) {
                        s.latency_ns = Some((at_ns + half_rtt).saturating_sub(s.submit_ns));
                        s.status = Some(status);
                        s.emitted_tokens = emitted_tokens;
                    }
                }
                ServerMsg::Error { session, code, .. } => {
                    if let Some(s) = stats.get_mut(&session) {
                        s.shed = Some(code);
                    }
                }
                _ => {}
            }
        }
    }

    let report = ReplayReport {
        programs: stats.into_values().collect(),
        streamed,
        closes: conn_ids
            .iter()
            .map(|&c| (c, core.close_reason(c)))
            .collect(),
        wire_bytes,
    };
    (report, core)
}
