//! The Symphony network front door.
//!
//! The paper's serving model made real on a wire: clients submit whole
//! *LLM Inference Programs* over the SYMR protocol (`symphony-rpc`,
//! specified in `docs/SERVING.md`) and the server multiplexes every
//! connection's sessions onto one kernel, streaming each program's
//! output back incrementally.
//!
//! Layering, from the inside out:
//!
//! * [`ServerCore`] — the transport-agnostic serving loop: frames in,
//!   frames out, kernel in the middle. Admission (per-tenant quotas and
//!   a global session cap), cancellation, BYE draining and slow-client
//!   shedding all live here, so they behave identically under every
//!   transport.
//! * [`replay`] — a deterministic loopback load generator: replays
//!   agent/RAG workloads with simulated RTT and injected faults, and
//!   reports *client-observed* TTFT and per-program latency. Same seed,
//!   same bytes — the e2e suite and CI diff two runs.
//! * the `symphony-serve` / `symphony-client` binaries — a thin
//!   non-blocking TCP shell and its matching load generator, for running
//!   the same core over a real socket.

pub mod replay;
pub mod server;

pub use replay::{run_replay, run_replay_on, ReplayReport, ReplaySpec, WorkloadKind};
pub use server::{CloseReason, ServeConfig, ServerCore};
