//! End-to-end duplex tests for the SYMR front door.
//!
//! Every test drives a [`ServerCore`] through the same byte-level wire a
//! TCP client would use: encode client frames, feed, pump, drain, decode
//! server frames. No test reaches around the protocol.

use symphony::KernelConfig;
use symphony_rpc::{
    ClientMsg, ErrCode, FrameReader, ServerMsg, SessionStatus, CONN_SCOPE, WIRE_VERSION,
};
use symphony_serve::replay::{agent_source, hostile_source, rag_source, standard_kernel};
use symphony_serve::{run_replay, CloseReason, ReplaySpec, ServeConfig, ServerCore, WorkloadKind};

/// A client end of one loopback connection.
struct Client {
    conn: u64,
    reader: FrameReader,
}

impl Client {
    fn connect(core: &mut ServerCore, tenant: u64) -> Client {
        let mut c = Client {
            conn: core.open_conn(),
            reader: FrameReader::new(),
        };
        c.send(
            core,
            &ClientMsg::Hello {
                version: WIRE_VERSION,
                tenant,
            },
        );
        let msgs = c.drain(core);
        assert!(
            matches!(msgs.as_slice(), [ServerMsg::HelloOk { version, .. }] if *version == WIRE_VERSION),
            "handshake reply: {msgs:?}"
        );
        c
    }

    fn send(&mut self, core: &mut ServerCore, msg: &ClientMsg) {
        let mut wire = Vec::new();
        msg.encode(&mut wire);
        core.feed(self.conn, &wire);
    }

    fn drain(&mut self, core: &mut ServerCore) -> Vec<ServerMsg> {
        self.reader.feed(&core.take_output(self.conn));
        let mut out = Vec::new();
        while let Some((tag, payload)) = self.reader.next_frame().expect("clean client wire") {
            out.push(ServerMsg::decode(tag, &payload).expect("decodable server frame"));
        }
        out
    }

    fn submit(&mut self, core: &mut ServerCore, session: u64, source: &str, args: &str) {
        self.send(
            core,
            &ClientMsg::Submit {
                session,
                not_before_ns: 0,
                fuel: 0,
                name: format!("e2e-{session}"),
                args: args.to_string(),
                source: source.to_string(),
            },
        );
    }
}

fn new_core() -> ServerCore {
    ServerCore::new(
        standard_kernel(KernelConfig::for_tests()),
        ServeConfig::default(),
    )
}

fn run_once(source: &str, args: &str) -> Vec<ServerMsg> {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, source, args);
    core.pump();
    client.drain(&mut core)
}

#[test]
fn submit_streams_and_completes_over_the_wire() {
    let msgs = run_once(&agent_source(2, 8), "hello serving");
    assert!(
        matches!(msgs.first(), Some(ServerMsg::Accepted { session: 1, .. })),
        "first reply: {msgs:?}"
    );
    let streams = msgs
        .iter()
        .filter(|m| matches!(m, ServerMsg::Stream { .. }))
        .count();
    assert!(streams >= 2, "expected incremental chunks, got {streams}");
    let Some(ServerMsg::Done {
        session: 1,
        status: SessionStatus::Ok,
        emitted_tokens,
        at_ns,
        ..
    }) = msgs.last()
    else {
        panic!("missing DONE{{Ok}}: {:?}", msgs.last());
    };
    assert!(*emitted_tokens > 0, "no tokens accounted");
    assert!(*at_ns > 0, "virtual completion time not stamped");
    // STREAM timestamps are monotone and precede the DONE.
    let mut last = 0;
    for m in &msgs {
        if let ServerMsg::Stream { at_ns, .. } = m {
            assert!(*at_ns >= last);
            last = *at_ns;
        }
    }
    assert!(*at_ns >= last);
}

#[test]
fn streamed_output_is_byte_identical_across_runs() {
    let a = run_once(&rag_source(12), "1|what is a lip?");
    let b = run_once(&rag_source(12), "1|what is a lip?");
    let text = |msgs: &[ServerMsg]| -> String {
        msgs.iter()
            .filter_map(|m| match m {
                ServerMsg::Stream { text, .. } => Some(text.clone()),
                _ => None,
            })
            .collect()
    };
    assert!(!text(&a).is_empty());
    assert_eq!(text(&a), text(&b));
    // Not just the text: the whole reply sequence matches.
    assert_eq!(format!("{a:?}"), format!("{b:?}"));
}

#[test]
fn first_frame_must_be_hello() {
    let mut core = new_core();
    let conn = core.open_conn();
    let mut wire = Vec::new();
    ClientMsg::Ping { nonce: 7 }.encode(&mut wire);
    core.feed(conn, &wire);
    let mut reader = FrameReader::new();
    reader.feed(&core.take_output(conn));
    let (tag, payload) = reader.next_frame().unwrap().unwrap();
    let msg = ServerMsg::decode(tag, &payload).unwrap();
    assert!(
        matches!(
            msg,
            ServerMsg::Error {
                session: CONN_SCOPE,
                code: ErrCode::NotHello,
                ..
            }
        ),
        "{msg:?}"
    );
    assert_eq!(core.close_reason(conn), Some(CloseReason::Error));
}

#[test]
fn version_mismatch_is_refused() {
    let mut core = new_core();
    let conn = core.open_conn();
    let mut wire = Vec::new();
    ClientMsg::Hello {
        version: WIRE_VERSION + 1,
        tenant: 1,
    }
    .encode(&mut wire);
    core.feed(conn, &wire);
    let mut reader = FrameReader::new();
    reader.feed(&core.take_output(conn));
    let (tag, payload) = reader.next_frame().unwrap().unwrap();
    assert!(matches!(
        ServerMsg::decode(tag, &payload).unwrap(),
        ServerMsg::Error {
            code: ErrCode::BadVersion,
            ..
        }
    ));
    assert!(core.is_closed(conn));
}

#[test]
fn corrupt_bytes_tear_the_connection_down() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    let mut wire = Vec::new();
    ClientMsg::Ping { nonce: 1 }.encode(&mut wire);
    let last = wire.len() - 1;
    wire[last] ^= 0xff; // break the checksum
    core.feed(client.conn, &wire);
    let msgs = client.drain(&mut core);
    assert!(
        matches!(
            msgs.as_slice(),
            [ServerMsg::Error {
                session: CONN_SCOPE,
                code: ErrCode::BadFrame,
                ..
            }]
        ),
        "{msgs:?}"
    );
    assert_eq!(core.close_reason(client.conn), Some(CloseReason::Error));
}

#[test]
fn cancel_yields_done_cancelled() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 5, &agent_source(3, 16), "to be cancelled");
    client.send(&mut core, &ClientMsg::Cancel { session: 5 });
    core.pump();
    let msgs = client.drain(&mut core);
    assert!(matches!(
        msgs.first(),
        Some(ServerMsg::Accepted { session: 5, .. })
    ));
    assert!(
        matches!(
            msgs.last(),
            Some(ServerMsg::Done {
                session: 5,
                status: SessionStatus::Cancelled,
                ..
            })
        ),
        "{:?}",
        msgs.last()
    );
    assert_eq!(core.live_sessions(), 0);
}

#[test]
fn cancelling_an_unknown_session_is_a_typed_session_error() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.send(&mut core, &ClientMsg::Cancel { session: 42 });
    let msgs = client.drain(&mut core);
    assert!(matches!(
        msgs.as_slice(),
        [ServerMsg::Error {
            session: 42,
            code: ErrCode::NoSuchSession,
            ..
        }]
    ));
    assert!(!core.is_closed(client.conn), "session errors are not fatal");
}

#[test]
fn quota_and_capacity_shed_with_typed_errors() {
    let mut cfg = ServeConfig::default();
    cfg.tenant_session_quota = 1;
    cfg.max_live_sessions = 2;
    let mut core = ServerCore::new(standard_kernel(KernelConfig::for_tests()), cfg);
    // Tenant 1 fills its quota of one...
    let mut c1 = Client::connect(&mut core, 1);
    c1.submit(&mut core, 1, &agent_source(1, 4), "a");
    c1.submit(&mut core, 2, &agent_source(1, 4), "b");
    let msgs = c1.drain(&mut core);
    assert!(matches!(msgs[0], ServerMsg::Accepted { session: 1, .. }));
    assert!(
        matches!(
            msgs[1],
            ServerMsg::Error {
                session: 2,
                code: ErrCode::QuotaExceeded,
                ..
            }
        ),
        "{:?}",
        msgs[1]
    );
    // ...tenant 2 takes the last global slot, tenant 3 is shed busy.
    let mut c2 = Client::connect(&mut core, 2);
    c2.submit(&mut core, 1, &agent_source(1, 4), "c");
    assert!(matches!(
        c2.drain(&mut core).as_slice(),
        [ServerMsg::Accepted { .. }]
    ));
    let mut c3 = Client::connect(&mut core, 3);
    c3.submit(&mut core, 1, &agent_source(1, 4), "d");
    assert!(matches!(
        c3.drain(&mut core).as_slice(),
        [ServerMsg::Error {
            code: ErrCode::ServerBusy,
            ..
        }]
    ));
    // Once the backlog drains, the tenant can submit again.
    core.pump();
    c1.drain(&mut core);
    c1.submit(&mut core, 3, &agent_source(1, 4), "e");
    core.pump();
    let msgs = c1.drain(&mut core);
    assert!(matches!(
        msgs.first(),
        Some(ServerMsg::Accepted { session: 3, .. })
    ));
}

#[test]
fn malformed_programs_are_rejected_at_the_door() {
    let msgs = run_once("let = broken syntax here", "x");
    assert!(
        matches!(
            msgs.as_slice(),
            [ServerMsg::Error {
                session: 1,
                code: ErrCode::ProgramRejected,
                ..
            }]
        ),
        "{msgs:?}"
    );
}

#[test]
fn duplicate_and_reserved_session_ids_are_refused() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 0, &agent_source(1, 4), "zero");
    client.submit(&mut core, 9, &agent_source(1, 4), "first");
    client.submit(&mut core, 9, &agent_source(1, 4), "again");
    let msgs = client.drain(&mut core);
    assert!(matches!(
        msgs[0],
        ServerMsg::Error {
            session: 0,
            code: ErrCode::ProgramRejected,
            ..
        }
    ));
    assert!(matches!(msgs[1], ServerMsg::Accepted { session: 9, .. }));
    assert!(matches!(
        msgs[2],
        ServerMsg::Error {
            session: 9,
            code: ErrCode::DuplicateSession,
            ..
        }
    ));
}

#[test]
fn slow_client_is_shed_with_sessions_cancelled() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.drain(&mut core);
    core.set_conn_window(client.conn, 64); // collapse the send window
    client.submit(&mut core, 1, &agent_source(2, 12), "chatty");
    core.pump();
    let msgs = client.drain(&mut core);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            ServerMsg::Error {
                session: CONN_SCOPE,
                code: ErrCode::SlowClient,
                ..
            }
        )),
        "{msgs:?}"
    );
    assert_eq!(core.close_reason(client.conn), Some(CloseReason::Slow));
    assert_eq!(core.live_sessions(), 0, "shed sessions must be cancelled");
}

#[test]
fn dropped_connection_cancels_its_sessions() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, &agent_source(3, 16), "doomed");
    core.drop_conn(client.conn);
    core.pump();
    assert_eq!(core.live_sessions(), 0);
    assert_eq!(core.close_reason(client.conn), Some(CloseReason::Drop));
    assert_eq!(core.take_output(client.conn), Vec::<u8>::new());
}

#[test]
fn bye_drains_live_sessions_before_bye_ok() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, &agent_source(1, 6), "drain me");
    client.send(&mut core, &ClientMsg::Bye);
    core.pump();
    let msgs = client.drain(&mut core);
    let done_at = msgs
        .iter()
        .position(|m| matches!(m, ServerMsg::Done { .. }))
        .expect("session completes");
    let bye_at = msgs
        .iter()
        .position(|m| matches!(m, ServerMsg::ByeOk))
        .expect("BYE_OK sent");
    assert!(
        done_at < bye_at,
        "BYE_OK must follow the last DONE: {msgs:?}"
    );
    assert_eq!(core.close_reason(client.conn), Some(CloseReason::Bye));
    // Submissions after BYE are refused.
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.send(&mut core, &ClientMsg::Bye);
    client.submit(&mut core, 1, &agent_source(1, 4), "late");
    core.pump();
    let msgs = client.drain(&mut core);
    assert!(
        msgs.iter().any(|m| matches!(
            m,
            ServerMsg::Error {
                session: 1,
                code: ErrCode::ProgramRejected,
                ..
            }
        )),
        "{msgs:?}"
    );
}

#[test]
fn ping_pong_echoes_the_nonce() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.send(&mut core, &ClientMsg::Ping { nonce: 0xdead_beef });
    let msgs = client.drain(&mut core);
    assert!(matches!(
        msgs.as_slice(),
        [ServerMsg::Pong { nonce: 0xdead_beef }]
    ));
}

#[test]
fn serve_metrics_and_telemetry_events_are_recorded() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, &agent_source(1, 6), "metered");
    core.pump();
    client.send(&mut core, &ClientMsg::Bye);
    core.pump();
    client.drain(&mut core);
    let reg = core.kernel().metrics_registry();
    assert_eq!(reg.counter_value("serve.conns.opened"), Some(1));
    assert_eq!(reg.counter_value("serve.conns.closed"), Some(1));
    assert_eq!(reg.counter_value("serve.sessions.accepted"), Some(1));
    assert_eq!(reg.counter_value("serve.sessions.done"), Some(1));
    assert!(reg.counter_value("serve.frames.in").unwrap_or(0) >= 3);
    assert!(reg.counter_value("serve.bytes.out").unwrap_or(0) > 0);
}

#[test]
fn replay_reports_client_observed_latency() {
    let spec = ReplaySpec {
        workload: WorkloadKind::Agent,
        sessions: 10,
        conns: 2,
        tenants: 2,
        ..ReplaySpec::default()
    };
    let report = run_replay(&spec, ServeConfig::default());
    assert_eq!(report.completed(), 10);
    assert!(report.streamed_tokens() > 0);
    let ttft = report.ttft_p(50.0).expect("ttft recorded");
    let p99 = report.latency_p(99.0).expect("latency recorded");
    // Client-observed numbers include the simulated half-RTT each way.
    assert!(ttft >= spec.rtt.as_nanos(), "ttft {ttft} below one RTT");
    assert!(p99 >= ttft, "p99 latency below median ttft");
}

#[test]
fn replay_is_deterministic_and_faults_are_attributed() {
    let spec = ReplaySpec {
        workload: WorkloadKind::Rag,
        sessions: 12,
        conns: 4,
        tenants: 2,
        drop_conns: 1,
        slow_conns: 1,
        ..ReplaySpec::default()
    };
    let a = run_replay(&spec, ServeConfig::default());
    let b = run_replay(&spec, ServeConfig::default());
    assert_eq!(a.streamed, b.streamed, "same seed must stream same bytes");
    assert_eq!(a.render(), b.render(), "same seed must report identically");
    assert_eq!(a.closes.get(&1), Some(&Some(CloseReason::Slow)));
    assert_eq!(a.closes.get(&4), Some(&Some(CloseReason::Drop)));
    assert!(a.completed() > 0, "healthy connections still complete");
    assert!(
        a.completed() < spec.sessions,
        "faulted sessions cannot all complete"
    );
}

#[test]
fn verifier_errors_shed_at_the_door_with_zero_kernel_work() {
    let mut core = new_core();
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, &hostile_source(0), "x");
    core.pump();
    let msgs = client.drain(&mut core);
    let [ServerMsg::Error {
        session: 1,
        code: ErrCode::VerifyRejected,
        detail,
    }] = msgs.as_slice()
    else {
        panic!("expected one VerifyRejected error: {msgs:?}");
    };
    // The detail is the first diagnostic, compiler-style, anchored to the
    // submitted program name.
    assert_eq!(detail, "e2e-1:1:9: undefined variable `missing`");
    // The program never touched the kernel: nothing accepted, nothing
    // scheduled, no fuel burned.
    let reg = core.kernel().metrics_registry();
    assert_eq!(reg.counter_value("serve.sessions.accepted").unwrap_or(0), 0);
    assert_eq!(reg.counter_value("serve.sessions.shed"), Some(1));
    assert_eq!(reg.counter_value("serve.sessions.verify_rejected"), Some(1));
}

#[test]
fn parse_error_details_render_compiler_style() {
    let msgs = run_once("let = broken syntax here", "x");
    let [ServerMsg::Error {
        session: 1,
        code: ErrCode::ProgramRejected,
        detail,
    }] = msgs.as_slice()
    else {
        panic!("expected one ProgramRejected error: {msgs:?}");
    };
    assert!(
        detail.starts_with("e2e-1:1:"),
        "detail must be name:line:col-anchored, got {detail:?}"
    );
    assert!(detail.contains("parse error"), "detail: {detail:?}");
}

#[test]
fn verify_can_be_disabled_and_programs_fault_at_runtime_instead() {
    let mut core = ServerCore::new(
        standard_kernel(KernelConfig::for_tests()),
        ServeConfig {
            verify: false,
            ..ServeConfig::default()
        },
    );
    let mut client = Client::connect(&mut core, 1);
    client.submit(&mut core, 1, &hostile_source(0), "x");
    core.pump();
    let msgs = client.drain(&mut core);
    assert!(
        matches!(msgs.first(), Some(ServerMsg::Accepted { session: 1, .. })),
        "without the verifier the bad program is admitted: {msgs:?}"
    );
    let Some(ServerMsg::Done { status, .. }) = msgs.last() else {
        panic!("missing DONE: {:?}", msgs.last());
    };
    assert_ne!(
        *status,
        SessionStatus::Ok,
        "the interpreter must fault where the verifier would have shed"
    );
}

#[test]
fn hostile_flood_is_shed_while_clean_work_completes() {
    let spec = ReplaySpec {
        workload: WorkloadKind::Agent,
        sessions: 12,
        conns: 2,
        tenants: 1,
        hostile_every: 2,
        ..ReplaySpec::default()
    };
    let report = run_replay(&spec, ServeConfig::default());
    let sheds = report.sheds();
    assert_eq!(sheds.get(&ErrCode::VerifyRejected), Some(&6));
    assert_eq!(sheds.len(), 1, "only verifier sheds expected: {sheds:?}");
    assert_eq!(report.completed(), 6, "every clean program completes");
    for s in &report.programs {
        if s.name.starts_with("hostile-") {
            assert_eq!(s.shed, Some(ErrCode::VerifyRejected), "{}", s.name);
            assert_eq!(s.chunks, 0, "{} must stream nothing", s.name);
        } else {
            assert_eq!(s.status, Some(SessionStatus::Ok), "{}", s.name);
        }
    }
}

#[test]
fn admission_cost_hints_reach_the_scheduler() {
    let spec = ReplaySpec {
        workload: WorkloadKind::MixedCost,
        sessions: 8,
        conns: 2,
        tenants: 1,
        ..ReplaySpec::default()
    };
    let core = ServerCore::new(
        standard_kernel(KernelConfig::for_tests()),
        ServeConfig::default(),
    );
    let (report, core) = symphony_serve::replay::run_replay_on(&spec, core);
    assert_eq!(report.completed(), 8);
    assert_eq!(
        core.kernel().cost_hints(),
        8,
        "every admitted program installs a static cost hint"
    );

    // With hints disabled the counter stays at zero.
    let core = ServerCore::new(
        standard_kernel(KernelConfig::for_tests()),
        ServeConfig {
            cost_hints: false,
            ..ServeConfig::default()
        },
    );
    let (_, core) = symphony_serve::replay::run_replay_on(&spec, core);
    assert_eq!(core.kernel().cost_hints(), 0);
}
