//! Chunked-prefill equivalence (the continuous-batching correctness
//! contract): splitting a prefill into fixed-size chunks may only change
//! *timing*, never *results*. For any prompt and any chunk size, the
//! chunked execution must produce the identical surrogate distributions
//! and leave identical KVFS page contents behind.

use proptest::prelude::*;
use symphony_gpu::{DeviceSpec, GpuExecutor, PredRequest};
use symphony_kvfs::{KvStore, KvStoreConfig, OwnerId};
use symphony_model::{ModelConfig, Surrogate, TokenId};

const U1: OwnerId = OwnerId(1);

fn setup() -> (GpuExecutor, KvStore) {
    let model = Surrogate::new(ModelConfig::tiny(), 7);
    (
        GpuExecutor::new(DeviceSpec::test_device(), model),
        KvStore::new(KvStoreConfig::for_tests()),
    )
}

fn positioned(tokens: &[TokenId]) -> Vec<(TokenId, u32)> {
    tokens
        .iter()
        .enumerate()
        .map(|(i, &t)| (t, i as u32))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn chunked_equals_unchunked_dists_and_pages(
        tokens in proptest::collection::vec(0u32..500, 1..60),
        chunk in 1usize..17,
    ) {
        let (mut gpu, mut store) = setup();
        let whole = store.create(U1).unwrap();
        let split = store.create(U1).unwrap();
        let all = positioned(&tokens);

        // One-shot prefill.
        let (res, _) = gpu.execute_batch(
            &mut store,
            &[PredRequest { file: whole, owner: U1, tokens: all.clone() }],
        );
        let one_shot = res[0].as_ref().unwrap().dists.clone();

        // The same prompt, `chunk` tokens per iteration.
        let mut chunked = Vec::new();
        for piece in all.chunks(chunk) {
            let (res, _) = gpu.execute_batch(
                &mut store,
                &[PredRequest { file: split, owner: U1, tokens: piece.to_vec() }],
            );
            chunked.extend(res[0].as_ref().unwrap().dists.clone());
        }

        // Identical surrogate distributions...
        prop_assert_eq!(&one_shot, &chunked);
        // ...and identical KVFS contents: same entries (token, position,
        // fingerprint chain) and same page layout.
        let ea = store.read_all_unchecked(whole).unwrap();
        let eb = store.read_all_unchecked(split).unwrap();
        prop_assert_eq!(&ea, &eb);
        let (sa, sb) = (store.stat(whole).unwrap(), store.stat(split).unwrap());
        prop_assert_eq!(sa.len, sb.len);
        prop_assert_eq!(sa.pages, sb.pages);
        store.verify().unwrap();
    }

    #[test]
    fn chunked_continuation_matches_after_cached_prefix(
        prefix in proptest::collection::vec(0u32..500, 1..20),
        rest in proptest::collection::vec(0u32..500, 1..20),
        chunk in 1usize..8,
    ) {
        // Chunking a pred that starts on a non-empty file (mid-program KV
        // reuse) is equally exact.
        let (mut gpu, mut store) = setup();
        let whole = store.create(U1).unwrap();
        let split = store.create(U1).unwrap();
        let mut all = prefix.clone();
        all.extend(&rest);
        let all = positioned(&all);
        let (p, r) = all.split_at(prefix.len());
        for f in [whole, split] {
            let (res, _) = gpu.execute_batch(
                &mut store,
                &[PredRequest { file: f, owner: U1, tokens: p.to_vec() }],
            );
            res[0].as_ref().unwrap();
        }
        let (res, _) = gpu.execute_batch(
            &mut store,
            &[PredRequest { file: whole, owner: U1, tokens: r.to_vec() }],
        );
        let one_shot = res[0].as_ref().unwrap().dists.clone();
        let mut chunked = Vec::new();
        for piece in r.chunks(chunk) {
            let (res, _) = gpu.execute_batch(
                &mut store,
                &[PredRequest { file: split, owner: U1, tokens: piece.to_vec() }],
            );
            chunked.extend(res[0].as_ref().unwrap().dists.clone());
        }
        prop_assert_eq!(&one_shot, &chunked);
        prop_assert_eq!(
            store.read_all_unchecked(whole).unwrap(),
            store.read_all_unchecked(split).unwrap()
        );
    }
}
