//! Simulated GPU: device specifications and a batch executor.
//!
//! The executor is shared by *every* serving system in the workspace — the
//! Symphony kernel and both baselines — so performance comparisons isolate
//! architectural differences rather than substrate differences.
//!
//! Time comes from a roofline rule: a batch takes
//! `overhead + max(flops / (peak_flops × mfu), bytes / hbm_bandwidth)`,
//! where weights are streamed **once per batch** (the reason batching wins)
//! and KV traffic is summed per sequence. With the Llama-13B/A100 presets
//! this lands on the familiar regime: single-stream decode ≈ 13 ms/token
//! (weight-bandwidth bound), 3000-token prefill ≈ 0.5 s (compute bound).
//!
//! # Examples
//!
//! ```
//! use symphony_gpu::{DeviceSpec, GpuExecutor, PredRequest};
//! use symphony_kvfs::{KvStore, KvStoreConfig, OwnerId};
//! use symphony_model::{ModelConfig, Surrogate};
//!
//! let model = Surrogate::new(ModelConfig::tiny(), 1);
//! let mut gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
//! let mut store = KvStore::new(KvStoreConfig::for_tests());
//! let owner = OwnerId(1);
//! let file = store.create(owner).unwrap();
//! let (results, report) = gpu.execute_batch(
//!     &mut store,
//!     &[PredRequest { file, owner, tokens: vec![(3, 0), (4, 1)] }],
//! );
//! let dists = results[0].as_ref().unwrap();
//! assert_eq!(dists.dists.len(), 2);
//! assert!(report.duration.as_nanos() > 0);
//! assert_eq!(store.len(file).unwrap(), 2);
//! ```

pub mod device;
pub mod exec;

pub use device::DeviceSpec;
pub use exec::{BatchReport, ExecError, GpuExecutor, GpuMetrics, PredRequest, PredResult};
