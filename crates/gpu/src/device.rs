//! GPU device specifications.

use serde::{Deserialize, Serialize};
use symphony_model::{IoLane, ModelConfig};
use symphony_sim::SimDuration;

/// Published characteristics of a simulated accelerator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DeviceSpec {
    /// Device name, e.g. `"a100-80g"`.
    pub name: &'static str,
    /// HBM capacity in bytes.
    pub hbm_bytes: u64,
    /// HBM bandwidth in bytes/second.
    pub hbm_bandwidth: f64,
    /// Peak dense FP16 throughput in FLOP/s.
    pub peak_flops: f64,
    /// Model FLOPs utilisation: achievable fraction of peak in serving
    /// kernels (0.4–0.6 is typical for well-tuned stacks).
    pub mfu: f64,
    /// Host↔device PCIe bandwidth in bytes/second (KV swap traffic).
    pub pcie_bandwidth: f64,
    /// Fixed per-batch overhead (kernel launches, scheduling) in
    /// nanoseconds.
    pub batch_overhead_ns: u64,
    /// Fraction of HBM reserved for activations and fragmentation slack.
    pub activation_reserve: f64,
    /// NVMe lane for disk-tier KV swap traffic (latency + bandwidth).
    pub nvme: IoLane,
}

impl DeviceSpec {
    /// NVIDIA A100 80 GB SXM — the paper's evaluation device.
    pub fn a100_80g() -> Self {
        DeviceSpec {
            name: "a100-80g",
            hbm_bytes: 80_000_000_000,
            hbm_bandwidth: 2.0e12,
            peak_flops: 312e12,
            mfu: 0.5,
            pcie_bandwidth: 25e9,
            batch_overhead_ns: 200_000,
            activation_reserve: 0.10,
            nvme: IoLane::nvme(),
        }
    }

    /// NVIDIA A100 40 GB SXM.
    pub fn a100_40g() -> Self {
        DeviceSpec {
            hbm_bytes: 40_000_000_000,
            hbm_bandwidth: 1.555e12,
            name: "a100-40g",
            ..Self::a100_80g()
        }
    }

    /// NVIDIA H100 80 GB SXM.
    pub fn h100_80g() -> Self {
        DeviceSpec {
            name: "h100-80g",
            hbm_bytes: 80_000_000_000,
            hbm_bandwidth: 3.35e12,
            peak_flops: 989e12,
            mfu: 0.45,
            pcie_bandwidth: 55e9,
            batch_overhead_ns: 150_000,
            activation_reserve: 0.10,
            nvme: IoLane::nvme(),
        }
    }

    /// A tiny virtual device for tests: enough room for toy models, fast
    /// constants so virtual timings stay readable.
    pub fn test_device() -> Self {
        DeviceSpec {
            name: "test-device",
            hbm_bytes: 10_000_000,
            hbm_bandwidth: 1e9,
            peak_flops: 1e12,
            mfu: 0.5,
            pcie_bandwidth: 1e8,
            batch_overhead_ns: 1_000,
            activation_reserve: 0.10,
            // 4× slower than the test PCIe link, same access latency as a
            // real SSD: disk swaps stay visibly more expensive in tests.
            nvme: IoLane {
                bandwidth: 2.5e7,
                base_latency_s: 100e-6,
            },
        }
    }

    /// HBM bytes available for KV cache after weights and the activation
    /// reserve.
    ///
    /// # Panics
    ///
    /// Panics if the model's weights do not fit on the device.
    pub fn kv_budget_bytes(&self, model: &ModelConfig) -> u64 {
        let reserve = (self.hbm_bytes as f64 * self.activation_reserve) as u64;
        let weights = model.weight_bytes();
        assert!(
            weights + reserve < self.hbm_bytes,
            "model {} does not fit on {}",
            model.name,
            self.name
        );
        self.hbm_bytes - weights - reserve
    }

    /// Time to move `bytes` across PCIe.
    pub fn transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(bytes as f64 / self.pcie_bandwidth)
    }

    /// Time to move `bytes` across the NVMe lane (disk-tier swap traffic).
    pub fn disk_transfer_time(&self, bytes: u64) -> SimDuration {
        SimDuration::from_secs_f64(self.nvme.transfer_seconds(bytes))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a100_fits_about_twenty_documents_of_llama13b_kv() {
        // The capacity arithmetic behind Figure 3's "top 20" policy.
        let dev = DeviceSpec::a100_80g();
        let model = ModelConfig::llama_13b();
        let budget = dev.kv_budget_bytes(&model);
        let docs = budget / (3_000 * model.kv_bytes_per_token());
        assert!((15..=25).contains(&docs), "docs={docs}");
    }

    #[test]
    #[should_panic(expected = "does not fit")]
    fn oversized_model_rejected() {
        DeviceSpec::a100_40g().kv_budget_bytes(&ModelConfig::llama_70b());
    }

    #[test]
    fn transfer_time_scales_linearly() {
        let dev = DeviceSpec::a100_80g();
        let one = dev.transfer_time(25_000_000_000);
        assert!((one.as_secs_f64() - 1.0).abs() < 1e-9);
        let half = dev.transfer_time(12_500_000_000);
        assert!((half.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn presets_are_distinct() {
        assert_ne!(DeviceSpec::a100_80g(), DeviceSpec::h100_80g());
        assert!(DeviceSpec::h100_80g().hbm_bandwidth > DeviceSpec::a100_80g().hbm_bandwidth);
    }
}
