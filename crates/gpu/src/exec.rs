//! The batch executor: turns `pred` requests into distributions, KV entries
//! and virtual time.

use symphony_kvfs::{FileId, KvEntry, KvError, KvStore, OwnerId, Residency};
use symphony_model::{Dist, Surrogate, TokenId, WorkEstimate};
use symphony_sim::SimDuration;
use symphony_telemetry::{Counter, MetricsRegistry};

use crate::device::DeviceSpec;

/// One `pred` call inside a batch: run `tokens` through the model on top of
/// the context cached in `file`.
#[derive(Debug, Clone)]
pub struct PredRequest {
    /// KV file holding the cached context; receives the new entries.
    pub file: FileId,
    /// Owner on whose behalf the append is performed.
    pub owner: OwnerId,
    /// `(token, absolute position)` pairs, in context order.
    pub tokens: Vec<(TokenId, u32)>,
}

/// Result of one `pred` request: a distribution per input token.
#[derive(Debug, Clone, PartialEq)]
pub struct PredResult {
    /// `dists[i]` is the next-token distribution after `tokens[..=i]`.
    pub dists: Vec<Dist>,
}

/// Why a single request inside a batch failed (the batch itself proceeds).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecError {
    /// The KV file was missing or the append failed.
    Kv(KvError),
    /// The file has pages swapped out of the GPU tier.
    NotResident,
    /// The request carried no tokens.
    EmptyRequest,
    /// A transient execution fault hit this request (injected or hardware);
    /// its work was lost and no KV entries were appended. Retryable.
    Faulted,
}

impl core::fmt::Display for ExecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ExecError::Kv(e) => write!(f, "kv error: {e}"),
            ExecError::NotResident => write!(f, "file not resident in GPU tier"),
            ExecError::EmptyRequest => write!(f, "pred with no tokens"),
            ExecError::Faulted => write!(f, "transient execution fault"),
        }
    }
}

impl std::error::Error for ExecError {}

/// Timing and work report for one executed batch.
#[derive(Debug, Clone, Copy)]
pub struct BatchReport {
    /// Virtual time the batch occupied the GPU.
    pub duration: SimDuration,
    /// Requests in the batch (including failed ones).
    pub requests: usize,
    /// New tokens processed.
    pub new_tokens: u64,
    /// Cached context tokens attended over.
    pub past_tokens: u64,
    /// Time the roofline attributed to compute.
    pub compute_time: SimDuration,
    /// Time the roofline attributed to HBM traffic.
    pub memory_time: SimDuration,
}

/// Cumulative executor metrics — a point-in-time snapshot of the executor's
/// counters in the unified metrics registry (`gpu.*`).
#[derive(Debug, Clone, Copy, Default)]
pub struct GpuMetrics {
    /// Batches executed.
    pub batches: u64,
    /// Total new tokens processed.
    pub tokens: u64,
    /// Total busy time.
    pub busy: SimDuration,
    /// Total requests served (successful only).
    pub requests_ok: u64,
    /// Requests that failed inside batches.
    pub requests_failed: u64,
    /// Requests lost to transient execution faults (subset of failed).
    pub requests_faulted: u64,
}

/// Live counter handles into the metrics registry backing [`GpuMetrics`].
#[derive(Debug, Clone)]
struct GpuCounters {
    batches: Counter,
    tokens: Counter,
    busy_ns: Counter,
    requests_ok: Counter,
    requests_failed: Counter,
    requests_faulted: Counter,
}

impl GpuCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        GpuCounters {
            batches: registry.counter("gpu.batches"),
            tokens: registry.counter("gpu.tokens"),
            busy_ns: registry.counter("gpu.busy_ns"),
            requests_ok: registry.counter("gpu.requests_ok"),
            requests_failed: registry.counter("gpu.requests_failed"),
            requests_faulted: registry.counter("gpu.requests_faulted"),
        }
    }
}

/// The simulated GPU executor.
#[derive(Debug)]
pub struct GpuExecutor {
    device: DeviceSpec,
    model: Surrogate,
    counters: GpuCounters,
}

impl GpuExecutor {
    /// Creates an executor for a device/model pair with a private metrics
    /// registry.
    pub fn new(device: DeviceSpec, model: Surrogate) -> Self {
        GpuExecutor::with_registry(device, model, &MetricsRegistry::new())
    }

    /// Creates an executor whose counters live in `registry` under the
    /// `gpu.*` names.
    pub fn with_registry(device: DeviceSpec, model: Surrogate, registry: &MetricsRegistry) -> Self {
        GpuExecutor {
            device,
            model,
            counters: GpuCounters::register(registry),
        }
    }

    /// The device spec.
    pub fn device(&self) -> &DeviceSpec {
        &self.device
    }

    /// The surrogate model.
    pub fn model(&self) -> &Surrogate {
        &self.model
    }

    /// Cumulative metrics (a snapshot of the `gpu.*` counters).
    pub fn metrics(&self) -> GpuMetrics {
        GpuMetrics {
            batches: self.counters.batches.get(),
            tokens: self.counters.tokens.get(),
            busy: SimDuration::from_nanos(self.counters.busy_ns.get()),
            requests_ok: self.counters.requests_ok.get(),
            requests_failed: self.counters.requests_failed.get(),
            requests_faulted: self.counters.requests_faulted.get(),
        }
    }

    /// Roofline time for a batch's accumulated work.
    pub fn batch_time(&self, work: &WorkEstimate) -> SimDuration {
        let (c, m) = self.roofline_parts(work);
        SimDuration::from_nanos(self.device.batch_overhead_ns) + c.max(m)
    }

    fn roofline_parts(&self, work: &WorkEstimate) -> (SimDuration, SimDuration) {
        let compute = work.flops / (self.device.peak_flops * self.device.mfu);
        let memory = work.total_bytes() as f64 / self.device.hbm_bandwidth;
        (
            SimDuration::from_secs_f64(compute),
            SimDuration::from_secs_f64(memory),
        )
    }

    /// Time to move `tokens` worth of KV across PCIe (swap traffic).
    pub fn swap_time(&self, tokens: u64, bytes_per_token: u64) -> SimDuration {
        self.device.transfer_time(tokens * bytes_per_token)
    }

    /// Time to move `tokens` worth of KV across the NVMe lane (disk-tier
    /// swap traffic). Strictly more expensive than [`Self::swap_time`] for
    /// the same payload: the lane is slower and charges an access latency.
    pub fn disk_swap_time(&self, tokens: u64, bytes_per_token: u64) -> SimDuration {
        self.device.disk_transfer_time(tokens * bytes_per_token)
    }

    /// Executes a batch of `pred` requests against the KV store.
    ///
    /// Each request independently succeeds or fails; a failed request does
    /// not abort the batch (its work simply is not charged). For every
    /// successful request the file gains one [`KvEntry`] per input token and
    /// the result carries one [`Dist`] per input token.
    pub fn execute_batch(
        &mut self,
        store: &mut KvStore,
        requests: &[PredRequest],
    ) -> (Vec<Result<PredResult, ExecError>>, BatchReport) {
        self.execute_batch_with_faults(store, requests, &[])
    }

    /// [`GpuExecutor::execute_batch`] with per-request transient faults.
    ///
    /// `faulted[i]` marks request `i` as hit by a transient execution fault:
    /// it performs no model work, appends nothing, and reports
    /// [`ExecError::Faulted`]. Indices beyond `faulted.len()` are unfaulted,
    /// so an empty slice means a clean batch.
    pub fn execute_batch_with_faults(
        &mut self,
        store: &mut KvStore,
        requests: &[PredRequest],
        faulted: &[bool],
    ) -> (Vec<Result<PredResult, ExecError>>, BatchReport) {
        let fpr = self.model.fingerprinter();
        let mut results = Vec::with_capacity(requests.len());
        let mut work = WorkEstimate::default();
        let mut new_tokens = 0u64;
        let mut past_tokens = 0u64;

        for (i, req) in requests.iter().enumerate() {
            if faulted.get(i).copied().unwrap_or(false) {
                results.push(Err(ExecError::Faulted));
                self.counters.requests_failed.inc();
                self.counters.requests_faulted.inc();
                continue;
            }
            if req.tokens.is_empty() {
                results.push(Err(ExecError::EmptyRequest));
                self.counters.requests_failed.inc();
                continue;
            }
            let resident = match store.residency(req.file) {
                Ok(Residency::Gpu) | Ok(Residency::Empty) => true,
                Ok(_) => false,
                Err(e) => {
                    results.push(Err(ExecError::Kv(e)));
                    self.counters.requests_failed.inc();
                    continue;
                }
            };
            if !resident {
                results.push(Err(ExecError::NotResident));
                self.counters.requests_failed.inc();
                continue;
            }
            // Fail fast if the entries cannot fit: computing distributions
            // for a doomed append would waste both model work and wall time.
            match store.can_append(req.file, req.tokens.len()) {
                Ok(true) => {}
                Ok(false) => {
                    results.push(Err(ExecError::Kv(KvError::NoGpuMemory)));
                    self.counters.requests_failed.inc();
                    continue;
                }
                Err(e) => {
                    results.push(Err(ExecError::Kv(e)));
                    self.counters.requests_failed.inc();
                    continue;
                }
            }
            // `can_append` above vouched for the file, but surface any
            // late lookup failure as a typed per-request error rather than
            // panicking the executor (lint rule k1).
            let (past, tail) = match (store.len(req.file), store.tail_fingerprint(req.file)) {
                (Ok(len), Ok(tail)) => (len as u64, tail),
                (Err(e), _) | (_, Err(e)) => {
                    results.push(Err(ExecError::Kv(e)));
                    self.counters.requests_failed.inc();
                    continue;
                }
            };
            let mut fp = tail.unwrap_or_else(|| fpr.origin());

            let mut dists = Vec::with_capacity(req.tokens.len());
            let mut entries = Vec::with_capacity(req.tokens.len());
            for &(tok, pos) in &req.tokens {
                fp = fpr.advance(fp, tok, pos);
                dists.push(self.model.next_dist(fp));
                entries.push(KvEntry::new(tok, pos, fp));
            }
            match store.append(req.file, req.owner, &entries) {
                Ok(()) => {
                    work.accumulate(
                        &self
                            .model
                            .config()
                            .forward_work(req.tokens.len() as u64, past),
                    );
                    new_tokens += req.tokens.len() as u64;
                    past_tokens += past;
                    self.counters.requests_ok.inc();
                    results.push(Ok(PredResult { dists }));
                }
                Err(e) => {
                    self.counters.requests_failed.inc();
                    results.push(Err(ExecError::Kv(e)));
                }
            }
        }

        let duration = if new_tokens > 0 {
            self.batch_time(&work)
        } else {
            SimDuration::ZERO
        };
        let (compute_time, memory_time) = self.roofline_parts(&work);
        self.counters.batches.inc();
        self.counters.tokens.add(new_tokens);
        self.counters.busy_ns.add(duration.as_nanos());

        (
            results,
            BatchReport {
                duration,
                requests: requests.len(),
                new_tokens,
                past_tokens,
                compute_time,
                memory_time,
            },
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_kvfs::KvStoreConfig;
    use symphony_model::ModelConfig;

    const U1: OwnerId = OwnerId(1);

    fn setup() -> (GpuExecutor, KvStore) {
        let model = Surrogate::new(ModelConfig::tiny(), 7);
        (
            GpuExecutor::new(DeviceSpec::test_device(), model),
            KvStore::new(KvStoreConfig::for_tests()),
        )
    }

    fn req(file: FileId, tokens: Vec<(TokenId, u32)>) -> PredRequest {
        PredRequest {
            file,
            owner: U1,
            tokens,
        }
    }

    #[test]
    fn pred_appends_entries_and_returns_dists() {
        let (mut gpu, mut store) = setup();
        let f = store.create(U1).unwrap();
        let (res, report) = gpu.execute_batch(&mut store, &[req(f, vec![(1, 0), (2, 1), (3, 2)])]);
        let out = res[0].as_ref().unwrap();
        assert_eq!(out.dists.len(), 3);
        assert_eq!(store.len(f).unwrap(), 3);
        assert_eq!(report.new_tokens, 3);
        assert!(report.duration.as_nanos() >= gpu.device().batch_overhead_ns);
        store.verify().unwrap();
    }

    #[test]
    fn incremental_pred_equals_one_shot() {
        // KV-reuse invariant at the executor level: feeding a prompt in two
        // pred calls yields the same final distribution as one call.
        let (mut gpu, mut store) = setup();
        let a = store.create(U1).unwrap();
        let b = store.create(U1).unwrap();
        let (res_one, _) =
            gpu.execute_batch(&mut store, &[req(a, vec![(5, 0), (6, 1), (7, 2)])]);
        let (res_first, _) = gpu.execute_batch(&mut store, &[req(b, vec![(5, 0), (6, 1)])]);
        let (res_second, _) = gpu.execute_batch(&mut store, &[req(b, vec![(7, 2)])]);
        let one = res_one[0].as_ref().unwrap();
        let _ = res_first[0].as_ref().unwrap();
        let second = res_second[0].as_ref().unwrap();
        assert_eq!(one.dists[2], second.dists[0]);
        store.verify().unwrap();
    }

    #[test]
    fn forked_file_continues_identically() {
        let (mut gpu, mut store) = setup();
        let a = store.create(U1).unwrap();
        gpu.execute_batch(&mut store, &[req(a, vec![(5, 0), (6, 1)])]);
        let b = store.fork(a, U1).unwrap();
        let (ra, _) = gpu.execute_batch(&mut store, &[req(a, vec![(9, 2)])]);
        let (rb, _) = gpu.execute_batch(&mut store, &[req(b, vec![(9, 2)])]);
        assert_eq!(
            ra[0].as_ref().unwrap().dists[0],
            rb[0].as_ref().unwrap().dists[0]
        );
        store.verify().unwrap();
    }

    #[test]
    fn batching_amortises_weight_reads() {
        let model = Surrogate::new(ModelConfig::llama_13b(), 7);
        let gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
        let cfg = ModelConfig::llama_13b();
        // One decode step, batch of 1 vs batch of 8.
        let single = gpu.batch_time(&cfg.forward_work(1, 500));
        let mut batch8 = symphony_model::WorkEstimate::default();
        for _ in 0..8 {
            batch8.accumulate(&cfg.forward_work(1, 500));
        }
        let eight = gpu.batch_time(&batch8);
        // 8x the tokens for well under 2x the time.
        assert!(
            eight.as_secs_f64() < single.as_secs_f64() * 2.0,
            "batching should amortise: single={single} batch8={eight}"
        );
        // Sanity: single-stream 13B decode lands around 13 ms.
        let ms = single.as_millis_f64();
        assert!((10.0..20.0).contains(&ms), "decode step = {ms} ms");
    }

    #[test]
    fn prefill_3000_tokens_takes_fraction_of_second() {
        let model = Surrogate::new(ModelConfig::llama_13b(), 7);
        let gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
        let t = gpu
            .batch_time(&ModelConfig::llama_13b().forward_work(3000, 0))
            .as_secs_f64();
        assert!((0.2..1.5).contains(&t), "prefill took {t}s");
    }

    #[test]
    fn cached_prefix_speeds_up_suffix() {
        let model = Surrogate::new(ModelConfig::llama_13b(), 7);
        let gpu = GpuExecutor::new(DeviceSpec::a100_80g(), model);
        let cfg = ModelConfig::llama_13b();
        let cold = gpu.batch_time(&cfg.forward_work(3_020, 0));
        let warm = gpu.batch_time(&cfg.forward_work(20, 3_000));
        assert!(
            warm.as_secs_f64() * 5.0 < cold.as_secs_f64(),
            "cache hit should be much faster: warm={warm} cold={cold}"
        );
    }

    #[test]
    fn failed_requests_do_not_abort_batch() {
        let (mut gpu, mut store) = setup();
        let good = store.create(U1).unwrap();
        let missing = FileId(999);
        let (res, report) = gpu.execute_batch(
            &mut store,
            &[
                req(missing, vec![(1, 0)]),
                req(good, vec![(1, 0)]),
                req(good, vec![]),
            ],
        );
        assert_eq!(res[0], Err(ExecError::Kv(KvError::NotFound)));
        assert!(res[1].is_ok());
        assert_eq!(res[2], Err(ExecError::EmptyRequest));
        assert_eq!(report.new_tokens, 1);
        assert_eq!(gpu.metrics().requests_ok, 1);
        assert_eq!(gpu.metrics().requests_failed, 2);
        store.verify().unwrap();
    }

    #[test]
    fn faulted_requests_do_no_work() {
        let (mut gpu, mut store) = setup();
        let a = store.create(U1).unwrap();
        let b = store.create(U1).unwrap();
        let (res, report) = gpu.execute_batch_with_faults(
            &mut store,
            &[req(a, vec![(1, 0)]), req(b, vec![(1, 0)])],
            &[true, false],
        );
        assert_eq!(res[0], Err(ExecError::Faulted));
        assert!(res[1].is_ok());
        assert_eq!(store.len(a).unwrap(), 0, "faulted request must not append");
        assert_eq!(store.len(b).unwrap(), 1);
        assert_eq!(report.new_tokens, 1);
        assert_eq!(gpu.metrics().requests_faulted, 1);
        assert_eq!(gpu.metrics().requests_failed, 1);
        assert_eq!(gpu.metrics().requests_ok, 1);
        store.verify().unwrap();
    }

    #[test]
    fn swapped_out_file_rejected() {
        let (mut gpu, mut store) = setup();
        let f = store.create(U1).unwrap();
        gpu.execute_batch(&mut store, &[req(f, vec![(1, 0)])]);
        store.swap_out(f, U1).unwrap();
        let (res, _) = gpu.execute_batch(&mut store, &[req(f, vec![(2, 1)])]);
        assert_eq!(res[0], Err(ExecError::NotResident));
        store.verify().unwrap();
    }

    #[test]
    fn disk_resident_file_rejected() {
        let (mut gpu, mut store) = setup();
        let f = store.create(U1).unwrap();
        gpu.execute_batch(&mut store, &[req(f, vec![(1, 0)])]);
        store.demote_to_disk(f, U1).unwrap();
        assert_eq!(store.residency(f).unwrap(), Residency::Disk);
        let (res, _) = gpu.execute_batch(&mut store, &[req(f, vec![(2, 1)])]);
        assert_eq!(res[0], Err(ExecError::NotResident));
        store.verify().unwrap();
    }

    #[test]
    fn disk_swap_is_dearer_than_pcie_swap() {
        let (gpu, _) = setup();
        let pcie = gpu.swap_time(1_000, 2);
        let disk = gpu.disk_swap_time(1_000, 2);
        assert!(disk > pcie, "disk={disk:?} pcie={pcie:?}");
        assert_eq!(gpu.disk_swap_time(0, 2), SimDuration::ZERO);
    }

    #[test]
    fn metrics_accumulate() {
        let (mut gpu, mut store) = setup();
        let f = store.create(U1).unwrap();
        gpu.execute_batch(&mut store, &[req(f, vec![(1, 0)])]);
        gpu.execute_batch(&mut store, &[req(f, vec![(2, 1)])]);
        let m = gpu.metrics();
        assert_eq!(m.batches, 2);
        assert_eq!(m.tokens, 2);
        assert!(m.busy.as_nanos() > 0);
    }
}
