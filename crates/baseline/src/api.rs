//! The prompt-serving API surface: requests in, completions out.

use symphony_model::TokenId;
use symphony_sim::{SimDuration, SimTime};

/// A text-completion request (the unit of service in prompt-serving
/// systems).
#[derive(Debug, Clone, PartialEq)]
pub struct PromptRequest {
    /// Client-assigned request ID.
    pub id: u64,
    /// Arrival time at the server.
    pub arrival: SimTime,
    /// The full prompt, tokenised.
    pub prompt: Vec<TokenId>,
    /// Generation cap.
    pub max_tokens: usize,
    /// Sampling temperature (0 = greedy).
    pub temperature: f64,
}

/// A finished request.
#[derive(Debug, Clone, PartialEq)]
pub struct Completion {
    /// Request ID.
    pub id: u64,
    /// Arrival time (copied from the request).
    pub arrival: SimTime,
    /// When the first generated token was produced.
    pub first_token_at: Option<SimTime>,
    /// When the request finished.
    pub finished_at: SimTime,
    /// The generated tokens (EOS excluded).
    pub tokens: Vec<TokenId>,
    /// Prompt tokens that were served from the prefix cache.
    pub cached_prompt_tokens: usize,
    /// `true` if the request was aborted (e.g. the prompt can never fit).
    pub failed: bool,
}

impl Completion {
    /// End-to-end latency.
    pub fn latency(&self) -> SimDuration {
        self.finished_at.duration_since(self.arrival)
    }

    /// Mean end-to-end latency per generated token (the paper's Figure 3a
    /// metric); `None` when nothing was generated.
    pub fn latency_per_token(&self) -> Option<SimDuration> {
        if self.tokens.is_empty() {
            None
        } else {
            Some(self.latency() / self.tokens.len() as u64)
        }
    }

    /// Time to first token.
    pub fn ttft(&self) -> Option<SimDuration> {
        self.first_token_at.map(|t| t.duration_since(self.arrival))
    }
}

/// Aggregate statistics over one engine run.
#[derive(Debug, Clone, Copy, Default)]
pub struct RunStats {
    /// Completed requests.
    pub completed: u64,
    /// Total generated tokens.
    pub generated_tokens: u64,
    /// Total prompt tokens (including cache hits).
    pub prompt_tokens: u64,
    /// Prompt tokens served from the prefix cache.
    pub cached_prompt_tokens: u64,
    /// Preemptions (sequences restarted under memory pressure).
    pub preemptions: u64,
    /// Prefix-cache entries evicted under allocation pressure.
    pub cache_evictions: u64,
    /// Virtual time when the last request finished.
    pub makespan: SimDuration,
}

impl RunStats {
    /// Generated-token throughput over the run (tokens/sec).
    pub fn throughput(&self) -> f64 {
        let secs = self.makespan.as_secs_f64();
        if secs > 0.0 {
            self.generated_tokens as f64 / secs
        } else {
            0.0
        }
    }

    /// Prompt cache hit rate in tokens.
    pub fn cache_hit_rate(&self) -> f64 {
        if self.prompt_tokens == 0 {
            0.0
        } else {
            self.cached_prompt_tokens as f64 / self.prompt_tokens as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn completion_metrics() {
        let c = Completion {
            id: 1,
            arrival: SimTime::from_nanos(1_000),
            first_token_at: Some(SimTime::from_nanos(3_000)),
            finished_at: SimTime::from_nanos(11_000),
            tokens: vec![1, 2, 3, 4, 5],
            cached_prompt_tokens: 0,
            failed: false,
        };
        assert_eq!(c.latency(), SimDuration::from_nanos(10_000));
        assert_eq!(c.latency_per_token(), Some(SimDuration::from_nanos(2_000)));
        assert_eq!(c.ttft(), Some(SimDuration::from_nanos(2_000)));
    }

    #[test]
    fn empty_completion_has_no_per_token_latency() {
        let c = Completion {
            id: 1,
            arrival: SimTime::ZERO,
            first_token_at: None,
            finished_at: SimTime::from_nanos(5),
            tokens: vec![],
            cached_prompt_tokens: 0,
            failed: false,
        };
        assert_eq!(c.latency_per_token(), None);
        assert_eq!(c.ttft(), None);
    }

    #[test]
    fn stats_rates() {
        let s = RunStats {
            completed: 10,
            generated_tokens: 500,
            prompt_tokens: 1000,
            cached_prompt_tokens: 250,
            makespan: SimDuration::from_secs(5),
            ..Default::default()
        };
        assert!((s.throughput() - 100.0).abs() < 1e-9);
        assert!((s.cache_hit_rate() - 0.25).abs() < 1e-9);
        assert_eq!(RunStats::default().throughput(), 0.0);
        assert_eq!(RunStats::default().cache_hit_rate(), 0.0);
    }
}
