//! Prompt-serving baselines: vLLM-like and TGI-like engines.
//!
//! The paper compares Symphony against vLLM and TGI (§5). These baselines are
//! re-implemented on the *same* substrate — the same surrogate model, GPU
//! cost model and paged KV store — so that Figure 3's comparison isolates the
//! architectural difference the paper is about: *who* controls KV cache
//! policy.
//!
//! Both engines are classic prompt servers with iteration-level continuous
//! batching. The vLLM-like configuration adds automatic prefix caching
//! (block-aligned longest-common-prefix reuse with LRU eviction under
//! allocation pressure) and preemption-by-recompute; the TGI-like
//! configuration has neither.
//!
//! The engines are deliberately *good* baselines: they batch aggressively
//! and reuse what their system-level policy can see. What they cannot do is
//! exploit application knowledge — pin the 20 documents the application
//! knows are hot, or skip caching one-off topics — which is precisely the
//! gap LIPs close.

pub mod api;
pub mod cache;
pub mod engine;

pub use api::{Completion, PromptRequest, RunStats};
pub use cache::PrefixCache;
pub use engine::{Engine, EngineConfig};
