//! Automatic prefix caching for the vLLM-like engine.
//!
//! vLLM hashes KV blocks and reuses any block chain that prefixes a new
//! prompt, evicting unreferenced blocks LRU under allocation pressure. This
//! implementation keeps the same observable behaviour at file granularity:
//! cache entries are block-aligned prompt prefixes; lookup finds the entry
//! with the longest common block-aligned prefix of an incoming prompt; and
//! insertion *converges* entries sharing a prefix to that shared prefix (so
//! per-query tails do not pollute the cache). Eviction is LRU and only
//! triggered by the engine when page allocation fails — exactly the
//! "system-wide policy, not application-aware" behaviour §2.1 critiques.

use std::collections::HashMap;

use symphony_kvfs::{FileId, KvStore, OwnerId};
use symphony_model::TokenId;

/// One cached prefix.
#[derive(Debug, Clone)]
struct Entry {
    file: FileId,
    tokens: Vec<TokenId>,
    last_used: u64,
}

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheHit {
    /// The cached file to fork.
    pub file: FileId,
    /// How many prompt tokens the cached file covers (block-aligned; may be
    /// shorter than the file if only a prefix matches).
    pub covered: usize,
}

/// The prefix cache. All cached files are owned by the engine's owner ID.
#[derive(Debug)]
pub struct PrefixCache {
    /// Buckets keyed by a hash of the first block of tokens.
    buckets: HashMap<u64, Vec<Entry>>,
    block: usize,
    clock: u64,
    owner: OwnerId,
    evictions: u64,
}

fn hash_block(tokens: &[TokenId]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &t in tokens {
        h ^= t as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

fn common_prefix_len(a: &[TokenId], b: &[TokenId]) -> usize {
    a.iter().zip(b).take_while(|(x, y)| x == y).count()
}

impl PrefixCache {
    /// Creates a cache with the given block (page) size.
    pub fn new(block: usize, owner: OwnerId) -> Self {
        assert!(block > 0);
        PrefixCache {
            buckets: HashMap::new(),
            block,
            clock: 0,
            owner,
            evictions: 0,
        }
    }

    /// Number of cached entries.
    pub fn len(&self) -> usize {
        self.buckets.values().map(Vec::len).sum()
    }

    /// Returns `true` when the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Finds the entry with the longest block-aligned common prefix of
    /// `prompt` (at least one block), bumping its LRU stamp.
    pub fn lookup(&mut self, prompt: &[TokenId]) -> Option<CacheHit> {
        if prompt.len() < self.block {
            return None;
        }
        let key = hash_block(&prompt[..self.block]);
        let bucket = self.buckets.get_mut(&key)?;
        let mut best: Option<(usize, usize)> = None; // (covered, index)
        for (i, e) in bucket.iter().enumerate() {
            let common = common_prefix_len(&e.tokens, prompt);
            let covered = (common / self.block) * self.block;
            if covered >= self.block && best.is_none_or(|(c, _)| covered > c) {
                best = Some((covered, i));
            }
        }
        let (covered, i) = best?;
        self.clock += 1;
        bucket[i].last_used = self.clock;
        Some(CacheHit {
            file: bucket[i].file,
            covered,
        })
    }

    /// Inserts a finished prompt's KV file (already truncated by the caller
    /// to the prompt; this method truncates further to block alignment and
    /// converges overlapping entries to their shared prefix).
    ///
    /// Takes ownership of `file`: on any path where it is not retained, it
    /// is removed from the store.
    pub fn insert(&mut self, store: &mut KvStore, file: FileId, prompt: &[TokenId]) {
        let aligned = (prompt.len() / self.block) * self.block;
        if aligned == 0 {
            let _ = store.remove(file, self.owner);
            return;
        }
        if store.truncate(file, self.owner, aligned).is_err() {
            let _ = store.remove(file, self.owner);
            return;
        }
        let tokens = prompt[..aligned].to_vec();
        let key = hash_block(&tokens[..self.block]);
        let bucket = self.buckets.entry(key).or_default();
        // Converge with an overlapping entry when the shared prefix is the
        // bulk of both (the "same document, different query tail" case).
        // Entries that merely share a few leading blocks stay separate, as
        // they would under true block-granular caching.
        for e in bucket.iter_mut() {
            let common = common_prefix_len(&e.tokens, &tokens);
            let covered = (common / self.block) * self.block;
            let shorter = e.tokens.len().min(tokens.len());
            if covered >= self.block && covered * 2 >= shorter {
                if covered < e.tokens.len() {
                    // Shrink the existing entry to the shared prefix.
                    if store.truncate(e.file, self.owner, covered).is_ok() {
                        e.tokens.truncate(covered);
                    }
                }
                // The new file adds nothing beyond the shared prefix.
                let _ = store.remove(file, self.owner);
                self.clock += 1;
                e.last_used = self.clock;
                return;
            }
        }
        self.clock += 1;
        bucket.push(Entry {
            file,
            tokens,
            last_used: self.clock,
        });
    }

    /// Evicts the least-recently-used entry, freeing its pages. Returns
    /// `true` if something was evicted. The engine calls this in a loop when
    /// page allocation fails.
    pub fn evict_lru(&mut self, store: &mut KvStore) -> bool {
        let mut victim: Option<(u64, u64)> = None; // (last_used, bucket key)
        for (&key, bucket) in &self.buckets {
            for e in bucket {
                if victim.is_none_or(|(lu, _)| e.last_used < lu) {
                    victim = Some((e.last_used, key));
                }
            }
        }
        let Some((lu, key)) = victim else {
            return false;
        };
        let bucket = self.buckets.get_mut(&key).expect("victim bucket");
        let idx = bucket
            .iter()
            .position(|e| e.last_used == lu)
            .expect("victim entry");
        let entry = bucket.remove(idx);
        if bucket.is_empty() {
            self.buckets.remove(&key);
        }
        let _ = store.remove(entry.file, self.owner);
        self.evictions += 1;
        true
    }

    /// Removes every entry (end-of-run cleanup).
    pub fn clear(&mut self, store: &mut KvStore) {
        for (_, bucket) in std::mem::take(&mut self.buckets) {
            for e in bucket {
                let _ = store.remove(e.file, self.owner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symphony_kvfs::{KvEntry, KvStoreConfig};
    use symphony_model::CtxFingerprint;

    const OWNER: OwnerId = OwnerId(99);

    fn store() -> KvStore {
        KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 256,
            cpu_pages: 0,
            disk_pages: 0,
            bytes_per_token: 1,
        })
    }

    fn file_with(store: &mut KvStore, tokens: &[TokenId]) -> FileId {
        let f = store.create(OWNER).unwrap();
        let entries: Vec<KvEntry> = tokens
            .iter()
            .enumerate()
            .map(|(i, &t)| KvEntry::new(t, i as u32, CtxFingerprint(t as u64)))
            .collect();
        store.append(f, OWNER, &entries).unwrap();
        f
    }

    #[test]
    fn miss_then_hit_after_insert() {
        let mut s = store();
        let mut c = PrefixCache::new(4, OWNER);
        let doc: Vec<TokenId> = (100..120).collect(); // 20 tokens = 5 blocks
        let mut prompt = doc.clone();
        prompt.extend([1, 2]); // query tail
        assert_eq!(c.lookup(&prompt), None);
        let f = file_with(&mut s, &prompt);
        c.insert(&mut s, f, &prompt);
        // Same doc, different query.
        let mut p2 = doc.clone();
        p2.extend([7, 8, 9]);
        let hit = c.lookup(&p2).unwrap();
        assert_eq!(hit.covered, 20, "block-aligned doc prefix");
        s.verify().unwrap();
    }

    #[test]
    fn entries_converge_to_shared_prefix() {
        let mut s = store();
        let mut c = PrefixCache::new(4, OWNER);
        let doc: Vec<TokenId> = (100..116).collect(); // 4 blocks
        let mut p1 = doc.clone();
        p1.extend([1, 2, 3, 4]); // one extra block
        let f1 = file_with(&mut s, &p1);
        c.insert(&mut s, f1, &p1);
        assert_eq!(c.len(), 1);
        let mut p2 = doc.clone();
        p2.extend([9, 9, 9, 9]);
        let f2 = file_with(&mut s, &p2);
        c.insert(&mut s, f2, &p2);
        // Converged: one entry covering just the doc.
        assert_eq!(c.len(), 1);
        let hit = c.lookup(&p2).unwrap();
        assert_eq!(hit.covered, 16);
        assert_eq!(s.len(hit.file).unwrap(), 16);
        s.verify().unwrap();
    }

    #[test]
    fn short_prompts_are_not_cached() {
        let mut s = store();
        let mut c = PrefixCache::new(8, OWNER);
        let f = file_with(&mut s, &[1, 2, 3]);
        c.insert(&mut s, f, &[1, 2, 3]);
        assert!(c.is_empty());
        assert_eq!(s.gpu_pages_used(), 0, "file must be reclaimed");
        assert_eq!(c.lookup(&[1, 2, 3]), None);
    }

    #[test]
    fn lru_eviction_order() {
        let mut s = store();
        let mut c = PrefixCache::new(4, OWNER);
        let a: Vec<TokenId> = (0..8).collect();
        let b: Vec<TokenId> = (50..58).collect();
        let fa = file_with(&mut s, &a);
        c.insert(&mut s, fa, &a);
        let fb = file_with(&mut s, &b);
        c.insert(&mut s, fb, &b);
        // Touch a so b becomes LRU.
        c.lookup(&a).unwrap();
        assert!(c.evict_lru(&mut s));
        assert_eq!(c.len(), 1);
        assert!(c.lookup(&a).is_some(), "a survived");
        assert!(c.lookup(&b).is_none(), "b evicted");
        assert_eq!(c.evictions(), 1);
        c.clear(&mut s);
        assert_eq!(s.gpu_pages_used(), 0);
        s.verify().unwrap();
    }

    #[test]
    fn evict_on_empty_cache_is_false() {
        let mut s = store();
        let mut c = PrefixCache::new(4, OWNER);
        assert!(!c.evict_lru(&mut s));
    }
}
