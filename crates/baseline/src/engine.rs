//! The continuous-batching prompt-serving engine.
//!
//! One engine implementation serves as both baselines:
//!
//! - **vLLM-like**: optimistic admission (prompt pages + per-sequence
//!   headroom), automatic prefix caching, LRU cache eviction under
//!   allocation pressure, and preemption-by-recompute on decode OOM.
//! - **TGI-like**: conservative admission (reserves pages for the full
//!   `max_tokens` budget up front) and no prefix reuse.
//!
//! Each scheduler iteration builds one GPU batch from every runnable
//! sequence (prompt prefills for the newly admitted, one decode token for
//! the rest), executes it on the shared simulated GPU, and advances virtual
//! time by the batch's roofline duration.

use std::collections::VecDeque;

use symphony_gpu::{DeviceSpec, ExecError, GpuExecutor, PredRequest};
use symphony_kvfs::{FileId, KvError, KvStore, KvStoreConfig, OwnerId};
use symphony_model::surrogate::VocabInfo;
use symphony_model::{Dist, ModelConfig, Surrogate, TokenId};
use symphony_sim::{EventQueue, Rng, SimTime};
use symphony_tokenizer::Bpe;

use crate::api::{Completion, PromptRequest, RunStats};
use crate::cache::PrefixCache;

/// Engine construction parameters.
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// Display name (`"vllm-like"` / `"tgi-like"`).
    pub name: &'static str,
    /// Served model shape.
    pub model: ModelConfig,
    /// Surrogate model seed (match Symphony's for output comparisons).
    pub model_seed: u64,
    /// Simulated accelerator.
    pub device: DeviceSpec,
    /// Tokens per KV page.
    pub page_tokens: usize,
    /// Overrides the device-derived GPU KV budget.
    pub gpu_kv_bytes_override: Option<u64>,
    /// Enable automatic prefix caching (vLLM) or not (TGI).
    pub prefix_cache: bool,
    /// Enable preemption-by-recompute on decode OOM (vLLM).
    pub preemption: bool,
    /// Reserve pages for the whole `max_tokens` budget at admission (TGI).
    pub conservative_admission: bool,
    /// Maximum sequences batched per iteration.
    pub max_batch: usize,
    /// Engine RNG seed (per-request sampling streams derive from it).
    pub seed: u64,
}

impl EngineConfig {
    /// The vLLM-like configuration on the paper's setup.
    pub fn vllm_like() -> Self {
        EngineConfig {
            name: "vllm-like",
            model: ModelConfig::llama_13b(),
            model_seed: 13,
            device: DeviceSpec::a100_80g(),
            page_tokens: 16,
            gpu_kv_bytes_override: None,
            prefix_cache: true,
            preemption: true,
            conservative_admission: false,
            max_batch: 64,
            seed: 42,
        }
    }

    /// vLLM as the paper evaluated it (2024-era): PagedAttention and
    /// continuous batching, but **no automatic prefix caching** (the feature
    /// was off by default at the time). The strongest contemporary variant
    /// is [`EngineConfig::vllm_like`].
    pub fn vllm_noapc() -> Self {
        EngineConfig {
            name: "vllm-noapc",
            prefix_cache: false,
            ..Self::vllm_like()
        }
    }

    /// The TGI-like configuration on the paper's setup.
    pub fn tgi_like() -> Self {
        EngineConfig {
            name: "tgi-like",
            prefix_cache: false,
            preemption: false,
            conservative_admission: true,
            ..Self::vllm_like()
        }
    }

    /// Small test variant of [`EngineConfig::vllm_like`].
    pub fn vllm_for_tests() -> Self {
        EngineConfig {
            model: ModelConfig::tiny(),
            model_seed: 7,
            device: DeviceSpec::test_device(),
            page_tokens: 4,
            max_batch: 16,
            ..Self::vllm_like()
        }
    }

    /// Small test variant of [`EngineConfig::tgi_like`].
    pub fn tgi_for_tests() -> Self {
        EngineConfig {
            model: ModelConfig::tiny(),
            model_seed: 7,
            device: DeviceSpec::test_device(),
            page_tokens: 4,
            max_batch: 16,
            ..Self::tgi_like()
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    /// Needs its prompt suffix prefetched through `pred`.
    Prefill,
    /// Generating one token per iteration.
    Decode,
}

struct Seq {
    req: PromptRequest,
    file: FileId,
    /// Prompt tokens covered by the prefix cache at admission.
    cached: usize,
    produced: Vec<TokenId>,
    /// Token to feed at the next decode step.
    next_token: Option<TokenId>,
    first_token_at: Option<SimTime>,
    phase: Phase,
    /// Pages promised to this sequence but possibly not yet allocated
    /// (admission reservation; see `reservation_pages`).
    reserved: usize,
    rng: Rng,
}

enum Ev {
    Arrive(usize),
    StepDone,
}

/// A running batch: sequence request IDs in batch order plus results.
struct Inflight {
    seq_ids: Vec<u64>,
    results: Vec<Result<Vec<Dist>, ExecError>>,
}

/// The prompt-serving engine.
pub struct Engine {
    cfg: EngineConfig,
    gpu: GpuExecutor,
    store: KvStore,
    cache: Option<PrefixCache>,
    owner: OwnerId,
    eos: TokenId,
    vocab_hint: u32,
    stats: RunStats,
    /// Consecutive scheduler iterations in which no sequence advanced.
    stalled_steps: u32,
}

const ENGINE_OWNER: OwnerId = OwnerId(1);

impl Engine {
    /// Builds an engine.
    pub fn new(cfg: EngineConfig) -> Self {
        let tokenizer = Bpe::default_tokenizer();
        let model = Surrogate::new(cfg.model, cfg.model_seed)
            .with_vocab(VocabInfo::from_tokenizer(tokenizer));
        let gpu_kv_bytes = cfg
            .gpu_kv_bytes_override
            .unwrap_or_else(|| cfg.device.kv_budget_bytes(&cfg.model));
        let store = KvStore::new(KvStoreConfig::from_bytes(
            gpu_kv_bytes,
            0,
            0,
            cfg.model.kv_bytes_per_token(),
            cfg.page_tokens,
        ));
        let cache = cfg
            .prefix_cache
            .then(|| PrefixCache::new(cfg.page_tokens, ENGINE_OWNER));
        Engine {
            gpu: GpuExecutor::new(cfg.device, model),
            store,
            cache,
            owner: ENGINE_OWNER,
            eos: tokenizer.specials().eos,
            vocab_hint: tokenizer.specials().bos,
            stats: RunStats::default(),
            stalled_steps: 0,
            cfg,
        }
    }

    /// The engine's display name.
    pub fn name(&self) -> &'static str {
        self.cfg.name
    }

    /// Serves a request trace to completion; returns per-request completions
    /// (in finish order) and aggregate statistics.
    pub fn run(&mut self, mut requests: Vec<PromptRequest>) -> (Vec<Completion>, RunStats) {
        requests.sort_by_key(|r| (r.arrival, r.id));
        let mut events: EventQueue<Ev> = EventQueue::new();
        for (i, r) in requests.iter().enumerate() {
            events.schedule(r.arrival, Ev::Arrive(i));
        }
        let mut waiting: VecDeque<Seq> = VecDeque::new();
        let mut running: Vec<Seq> = Vec::new();
        let mut inflight: Option<Inflight> = None;
        let mut completions = Vec::with_capacity(requests.len());
        let mut engine_rng = Rng::new(self.cfg.seed);

        let debug = std::env::var_os("ENGINE_DEBUG").is_some();
        let mut steps = 0u64;
        let mut t_exec = std::time::Duration::ZERO;
        let mut t_apply = std::time::Duration::ZERO;
        while let Some((now, ev)) = events.pop() {
            match ev {
                Ev::Arrive(i) => {
                    let req = requests[i].clone();
                    let rng = engine_rng.fork(req.id);
                    waiting.push_back(self.make_seq(req, rng));
                }
                Ev::StepDone => {
                    let batch = inflight.take().expect("one batch in flight");
                    // lint:allow(d1): host-side profiling only; never feeds virtual time
                    let t = std::time::Instant::now();
                    self.apply_step(batch, &mut running, &mut waiting, &mut completions, now);
                    t_apply += t.elapsed();
                }
            }
            if inflight.is_none() {
                self.admit(&mut waiting, &mut running, &mut completions, now);
                // lint:allow(d1): host-side profiling only; never feeds virtual time
                let t = std::time::Instant::now();
                let built = self.build_and_exec(&mut running);
                t_exec += t.elapsed();
                steps += 1;
                if let Some((batch, duration)) = built {
                    inflight = Some(batch);
                    events.schedule(now + duration, Ev::StepDone);
                }
            }
        }
        if debug {
            // lint:allow(o1): ENGINE_DEBUG-gated diagnostics, off by default
            eprintln!(
                "engine {}: steps={steps} exec={t_exec:?} apply={t_apply:?}",
                self.cfg.name
            );
        }

        debug_assert!(running.is_empty() && waiting.is_empty());
        self.stats.completed = completions.len() as u64;
        self.stats.makespan = completions
            .iter()
            .map(|c| c.finished_at)
            .max()
            .unwrap_or(SimTime::ZERO)
            .duration_since(SimTime::ZERO);
        if let Some(cache) = &self.cache {
            self.stats.cache_evictions = cache.evictions();
        }
        (completions, self.stats)
    }

    /// Read access to the underlying store (tests).
    pub fn store(&self) -> &KvStore {
        &self.store
    }

    /// Total virtual time the GPU spent busy.
    pub fn gpu_busy(&self) -> symphony_sim::SimDuration {
        self.gpu.metrics().busy
    }

    fn make_seq(&mut self, req: PromptRequest, rng: Rng) -> Seq {
        Seq {
            req,
            file: FileId(0), // assigned at admission
            cached: 0,
            produced: Vec::new(),
            next_token: None,
            first_token_at: None,
            phase: Phase::Prefill,
            reserved: 0,
            rng,
        }
    }

    /// Pages a sequence must be able to allocate: the prompt suffix it will
    /// prefill plus a decode reserve (the whole `max_tokens` budget under
    /// conservative admission; one page under optimistic admission).
    fn reservation_pages(&self, prefill_tokens: usize, max_tokens: usize) -> usize {
        let pt = self.cfg.page_tokens;
        let reserve = if self.cfg.conservative_admission {
            max_tokens
        } else {
            pt
        };
        (prefill_tokens + reserve).div_ceil(pt)
    }

    fn admit(
        &mut self,
        waiting: &mut VecDeque<Seq>,
        running: &mut Vec<Seq>,
        completions: &mut Vec<Completion>,
        now: SimTime,
    ) {
        while running.len() < self.cfg.max_batch {
            let Some(seq) = waiting.front() else { break };
            // Prefix-cache lookup (bounded to leave at least one token to
            // prefill, so every sequence gets a distribution). Eviction can
            // remove the matched entry, so re-look-up after each eviction.
            // Pages already promised to running sequences but not yet
            // allocated; admission must not double-book them.
            let outstanding: usize = running.iter().map(|s| s.reserved).sum();
            let (hit, covered, needed) = loop {
                let hit = self.cache.as_mut().and_then(|c| c.lookup(&seq.req.prompt));
                let covered = hit
                    .map(|h| h.covered.min(seq.req.prompt.len().saturating_sub(1)))
                    .unwrap_or(0);
                let needed =
                    self.reservation_pages(seq.req.prompt.len() - covered, seq.req.max_tokens);
                if self.store.gpu_pages_free() >= outstanding + needed {
                    break (hit, covered, needed);
                }
                let evicted = self
                    .cache
                    .as_mut()
                    .is_some_and(|c| c.evict_lru(&mut self.store));
                if !evicted {
                    break (hit, covered, needed);
                }
            };
            if self.store.gpu_pages_free() < outstanding + needed {
                if running.is_empty() && outstanding == 0 {
                    // Nothing will ever free enough memory: fail the request.
                    let seq = waiting.pop_front().expect("checked front");
                    completions.push(Completion {
                        id: seq.req.id,
                        arrival: seq.req.arrival,
                        first_token_at: None,
                        finished_at: now,
                        tokens: Vec::new(),
                        cached_prompt_tokens: 0,
                        failed: true,
                    });
                    continue;
                }
                break;
            }
            let mut seq = waiting.pop_front().expect("checked front");
            let file = match hit {
                Some(h) if covered > 0 => {
                    let f = self
                        .store
                        .fork(h.file, self.owner)
                        .expect("cache files are owned by the engine");
                    self.store
                        .truncate(f, self.owner, covered)
                        .expect("covered <= cached length");
                    f
                }
                _ => self.store.create(self.owner).expect("create is infallible"),
            };
            seq.file = file;
            seq.cached = covered;
            seq.reserved = needed;
            self.stats.prompt_tokens += seq.req.prompt.len() as u64;
            self.stats.cached_prompt_tokens += covered as u64;
            running.push(seq);
        }
    }

    /// Builds one iteration batch from the running set and executes it.
    /// Returns `None` when nothing is runnable.
    fn build_and_exec(
        &mut self,
        running: &mut [Seq],
    ) -> Option<(Inflight, symphony_sim::SimDuration)> {
        let mut seq_ids = Vec::new();
        let mut reqs = Vec::new();
        for seq in running.iter() {
            match seq.phase {
                Phase::Prefill => {
                    let tokens: Vec<(TokenId, u32)> = seq.req.prompt[seq.cached..]
                        .iter()
                        .enumerate()
                        .map(|(i, &t)| (t, (seq.cached + i) as u32))
                        .collect();
                    seq_ids.push(seq.req.id);
                    reqs.push(PredRequest {
                        file: seq.file,
                        owner: self.owner,
                        tokens,
                    });
                }
                Phase::Decode => {
                    let tok = seq.next_token.expect("decode seq has a pending token");
                    let pos = (seq.req.prompt.len() + seq.produced.len() - 1) as u32;
                    seq_ids.push(seq.req.id);
                    reqs.push(PredRequest {
                        file: seq.file,
                        owner: self.owner,
                        tokens: vec![(tok, pos)],
                    });
                }
            }
        }
        if reqs.is_empty() {
            return None;
        }
        // lint:allow(d1): host-side profiling only; never feeds virtual time
        let tdbg = std::time::Instant::now();
        let (results, report) = self.gpu.execute_batch(&mut self.store, &reqs);
        if std::env::var_os("ENGINE_DEBUG").is_some() && tdbg.elapsed().as_millis() > 5 {
            let total: usize = reqs.iter().map(|r| r.tokens.len()).sum();
            // lint:allow(o1): ENGINE_DEBUG-gated diagnostics, off by default
            eprintln!("slow step: {:?} reqs={} tokens={}", tdbg.elapsed(), reqs.len(), total);
        }
        let results = results.into_iter().map(|r| r.map(|p| p.dists)).collect();
        // Floor the step duration: a fully-failed batch (e.g. every append
        // hit OOM) reports zero work, and a zero-length step would spin the
        // event loop at one instant forever.
        let duration = report
            .duration
            .max(symphony_sim::SimDuration::from_micros(50));
        Some((Inflight { seq_ids, results }, duration))
    }

    fn sample(seq: &mut Seq, dist: &Dist, vocab_hint: u32) -> TokenId {
        if seq.req.temperature == 0.0 {
            dist.argmax()
        } else {
            let d = dist.with_temperature(seq.req.temperature);
            d.sample_with(seq.rng.next_f64(), vocab_hint)
        }
    }

    fn apply_step(
        &mut self,
        batch: Inflight,
        running: &mut Vec<Seq>,
        waiting: &mut VecDeque<Seq>,
        completions: &mut Vec<Completion>,
        now: SimTime,
    ) {
        let mut finished: Vec<u64> = Vec::new();
        let mut preempted: Vec<u64> = Vec::new();
        let mut progressed = false;
        for (sid, result) in batch.seq_ids.iter().zip(batch.results) {
            let seq = running
                .iter_mut()
                .find(|s| s.req.id == *sid)
                .expect("batched seq is running");
            match result {
                Ok(dists) => {
                    progressed = true;
                    let dist = dists.last().expect("non-empty pred");
                    if seq.phase == Phase::Prefill {
                        seq.phase = Phase::Decode;
                        // Prompt pages are now physically allocated; keep
                        // only the decode reserve booked.
                        seq.reserved = self.reservation_pages(0, seq.req.max_tokens);
                    }
                    let tok = Self::sample(seq, dist, self.vocab_hint);
                    if tok == self.eos {
                        finished.push(*sid);
                        continue;
                    }
                    if seq.first_token_at.is_none() {
                        seq.first_token_at = Some(now);
                    }
                    seq.produced.push(tok);
                    seq.next_token = Some(tok);
                    if seq.produced.len() >= seq.req.max_tokens {
                        finished.push(*sid);
                    }
                }
                Err(ExecError::Kv(KvError::NoGpuMemory)) => {
                    // Memory pressure: evict cache; preempt if allowed.
                    let mut freed = false;
                    while self.store.gpu_pages_free() == 0 {
                        let evicted = self
                            .cache
                            .as_mut()
                            .is_some_and(|c| c.evict_lru(&mut self.store));
                        if !evicted {
                            break;
                        }
                        freed = true;
                    }
                    if !freed && self.cfg.preemption {
                        preempted.push(*sid);
                    }
                    // Otherwise retry the same token next iteration.
                }
                Err(_) => {
                    // Unexpected executor failure: fail the request.
                    finished.push(*sid);
                }
            }
        }
        // Livelock breaker: if several consecutive iterations made zero
        // progress (every append OOMed and nothing could be evicted), force
        // a preemption-by-recompute of the newest sequence so the rest can
        // move — the last-resort behaviour real engines implement.
        if progressed {
            self.stalled_steps = 0;
        } else {
            self.stalled_steps += 1;
            if self.stalled_steps >= 3 {
                if let Some(seq) = running.last() {
                    preempted.push(seq.req.id);
                }
                self.stalled_steps = 0;
            }
        }
        for sid in finished {
            let idx = running
                .iter()
                .position(|s| s.req.id == sid)
                .expect("finished seq present");
            let seq = running.remove(idx);
            self.finish(seq, completions, now);
        }
        for sid in preempted {
            let Some(idx) = running.iter().position(|s| s.req.id == sid) else {
                continue;
            };
            let mut seq = running.remove(idx);
            let _ = self.store.remove(seq.file, self.owner);
            seq.file = FileId(0);
            seq.cached = 0;
            seq.produced.clear();
            seq.next_token = None;
            seq.first_token_at = None;
            seq.phase = Phase::Prefill;
            seq.reserved = 0;
            self.stats.preemptions += 1;
            waiting.push_front(seq);
        }
    }

    fn finish(&mut self, seq: Seq, completions: &mut Vec<Completion>, now: SimTime) {
        self.stats.generated_tokens += seq.produced.len() as u64;
        completions.push(Completion {
            id: seq.req.id,
            arrival: seq.req.arrival,
            first_token_at: seq.first_token_at,
            finished_at: now,
            tokens: seq.produced,
            cached_prompt_tokens: seq.cached,
            failed: false,
        });
        match &mut self.cache {
            // Keep only the prompt in the cached file.
            Some(cache)
                if self
                    .store
                    .truncate(seq.file, self.owner, seq.req.prompt.len())
                    .is_ok() =>
            {
                cache.insert(&mut self.store, seq.file, &seq.req.prompt);
            }
            _ => {
                let _ = self.store.remove(seq.file, self.owner);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reqs(bpe: &Bpe, prompts: &[(&str, u64)]) -> Vec<PromptRequest> {
        prompts
            .iter()
            .map(|&(p, id)| PromptRequest {
                id,
                arrival: SimTime::ZERO,
                prompt: bpe.encode(p),
                max_tokens: 16,
                temperature: 0.0,
            })
            .collect()
    }

    #[test]
    fn serves_requests_to_completion() {
        let mut e = Engine::new(EngineConfig::vllm_for_tests());
        let bpe = Bpe::default_tokenizer();
        let (completions, stats) = e.run(reqs(
            bpe,
            &[("the cache design of the system", 1), ("another prompt", 2)],
        ));
        assert_eq!(completions.len(), 2);
        assert_eq!(stats.completed, 2);
        assert!(stats.generated_tokens > 0);
        for c in &completions {
            assert!(c.finished_at > c.arrival);
            if !c.tokens.is_empty() {
                assert!(c.first_token_at.is_some());
            }
        }
        e.store().verify().unwrap();
    }

    #[test]
    fn greedy_output_is_deterministic_and_engine_agnostic() {
        let bpe = Bpe::default_tokenizer();
        let run = |cfg: EngineConfig| {
            let mut e = Engine::new(cfg);
            let (mut c, _) = e.run(reqs(bpe, &[("a deterministic prompt about tokens", 1)]));
            c.pop().unwrap().tokens
        };
        let v1 = run(EngineConfig::vllm_for_tests());
        let v2 = run(EngineConfig::vllm_for_tests());
        let t1 = run(EngineConfig::tgi_for_tests());
        assert_eq!(v1, v2, "same engine, same output");
        assert_eq!(v1, t1, "same model semantics across engines");
    }

    #[test]
    fn prefix_cache_hits_on_repeated_document() {
        let bpe = Bpe::default_tokenizer();
        let doc = "the shared document context that is long enough to span pages ".repeat(4);
        let requests: Vec<PromptRequest> = (0..6)
            .map(|i| PromptRequest {
                id: i,
                arrival: SimTime::ZERO + symphony_sim::SimDuration::from_millis(i * 200),
                prompt: bpe.encode(&format!("{doc} query number {i}")),
                max_tokens: 8,
                temperature: 0.0,
            })
            .collect();
        let mut vllm = Engine::new(EngineConfig::vllm_for_tests());
        let (_, vstats) = vllm.run(requests.clone());
        assert!(
            vstats.cached_prompt_tokens > 0,
            "later requests should hit the doc prefix"
        );
        let mut tgi = Engine::new(EngineConfig::tgi_for_tests());
        let (_, tstats) = tgi.run(requests);
        assert_eq!(tstats.cached_prompt_tokens, 0, "TGI never caches");
        assert!(vstats.cache_hit_rate() > tstats.cache_hit_rate());
    }

    #[test]
    fn cache_hit_preserves_output() {
        let bpe = Bpe::default_tokenizer();
        let doc = "document text for equivalence checking repeated often ".repeat(3);
        let mk = |id: u64, at_ms: u64| PromptRequest {
            id,
            arrival: SimTime::ZERO + symphony_sim::SimDuration::from_millis(at_ms),
            prompt: bpe.encode(&format!("{doc} same query")),
            max_tokens: 12,
            temperature: 0.0,
        };
        // Request 2 arrives after request 1 finished; it hits the cache but
        // must produce identical output for the identical prompt.
        let mut e = Engine::new(EngineConfig::vllm_for_tests());
        let (completions, stats) = e.run(vec![mk(1, 0), mk(2, 60_000)]);
        assert!(stats.cached_prompt_tokens > 0, "second request must hit");
        let a = completions.iter().find(|c| c.id == 1).unwrap();
        let b = completions.iter().find(|c| c.id == 2).unwrap();
        assert_eq!(a.tokens, b.tokens, "cache reuse must not change output");
        assert!(b.cached_prompt_tokens > 0);
    }

    #[test]
    fn batching_overlaps_concurrent_requests() {
        let bpe = Bpe::default_tokenizer();
        // 8 simultaneous requests should finish much sooner than 8x a single
        // request's latency thanks to batched decoding.
        let single: Vec<PromptRequest> = reqs(bpe, &[("prompt one two three", 1)]);
        let mut e1 = Engine::new(EngineConfig::tgi_for_tests());
        let (c1, _) = e1.run(single);
        let single_latency = c1[0].latency();
        let batch: Vec<PromptRequest> = (0..8)
            .map(|i| PromptRequest {
                id: i,
                arrival: SimTime::ZERO,
                prompt: bpe.encode("prompt one two three"),
                max_tokens: 16,
                temperature: 0.0,
            })
            .collect();
        let mut e8 = Engine::new(EngineConfig::tgi_for_tests());
        let (c8, _) = e8.run(batch);
        let worst = c8.iter().map(|c| c.latency()).max().unwrap();
        assert!(
            worst.as_secs_f64() < single_latency.as_secs_f64() * 4.0,
            "8 batched requests should not cost 8x: worst={worst} single={single_latency}"
        );
    }

    #[test]
    fn memory_pressure_evicts_cache_and_completes() {
        let bpe = Bpe::default_tokenizer();
        let mut cfg = EngineConfig::vllm_for_tests();
        // Small pool: 24 pages of 4 tokens (tiny model: 512 B/token).
        cfg.gpu_kv_bytes_override = Some(24 * 4 * 512);
        let mut e = Engine::new(cfg);
        // Several distinct documents so the cache fills and must evict.
        let requests: Vec<PromptRequest> = (0..8)
            .map(|i| PromptRequest {
                id: i,
                arrival: SimTime::ZERO + symphony_sim::SimDuration::from_millis(i * 300),
                prompt: bpe.encode(&format!(
                    "distinct document number {i} with plenty of words to fill pages \
                     and then some more words to make it longer"
                )),
                max_tokens: 8,
                temperature: 0.0,
            })
            .collect();
        let (completions, stats) = e.run(requests);
        assert_eq!(completions.len(), 8, "all requests complete despite pressure");
        assert!(stats.cache_evictions > 0, "cache must have been evicted");
        e.store().verify().unwrap();
    }

    #[test]
    fn oversized_prompt_fails_cleanly() {
        let mut cfg = EngineConfig::tgi_for_tests();
        cfg.gpu_kv_bytes_override = Some(4 * 4 * 512); // 4 pages = 16 tokens
        let mut e = Engine::new(cfg);
        let bpe = Bpe::default_tokenizer();
        let (completions, _) = e.run(vec![PromptRequest {
            id: 1,
            arrival: SimTime::ZERO,
            prompt: bpe.encode(&"far too long a prompt ".repeat(20)),
            max_tokens: 4,
            temperature: 0.0,
        }]);
        assert_eq!(completions.len(), 1);
        assert!(completions[0].failed, "request must be marked failed");
        assert!(completions[0].tokens.is_empty(), "failed request, empty output");
        e.store().verify().unwrap();
    }
}
