//! KVFS — the KV-cache file system (§4.2 of the paper).
//!
//! Symphony "treats the KV cache as files, enabling it to persist beyond a
//! single process's lifecycle, share across multiple processes, and allow
//! LIPs to dynamically manipulate it." This crate implements that file
//! system:
//!
//! - **Pages** ([`page`]): token-granular KV state is stored in fixed-size
//!   pages (PagedAttention-style) drawn from a ref-counted pool with three
//!   tiers — GPU HBM, CPU DRAM, and NVMe disk.
//! - **Files** ([`store`]): a file is an ordered sequence of
//!   `(token, position, fingerprint)` entries across pages. Files support
//!   POSIX-flavoured operations (create/open/link/unlink/remove), the
//!   specialised operations the paper names (`fork` with copy-on-write,
//!   `extract`, `merge`), exclusive write locks, owner/mode access control,
//!   pinning, and explicit tier swapping (GPU↔CPU with second-level spill
//!   to disk under DRAM pressure).
//! - **Quotas**: per-owner page budgets so one tenant cannot exhaust HBM.
//! - **Journal** ([`journal`]): an append-only, checksummed record format
//!   that persists the store across process restarts
//!   ([`store::KvStore::snapshot_to_journal`] /
//!   [`store::KvStore::restore_from_journal`]), with truncate-and-continue
//!   recovery from torn tail records. See `docs/KVFS.md`.
//!
//! The store is a plain single-threaded value (`&mut self` API): the Symphony
//! kernel serialises all system calls, so interior locking would only hide
//! bugs. Every structural operation preserves the page-accounting invariant
//! checked by [`store::KvStore::verify`], which the property tests hammer.
//!
//! # Examples
//!
//! ```
//! use symphony_kvfs::{KvStore, KvStoreConfig, KvEntry, OwnerId};
//! use symphony_model::CtxFingerprint;
//!
//! let mut store = KvStore::new(KvStoreConfig::for_tests());
//! let owner = OwnerId(1);
//! let f = store.create(owner).unwrap();
//! store
//!     .append(f, owner, &[KvEntry::new(42, 0, CtxFingerprint(7))])
//!     .unwrap();
//! let clone = store.fork(f, owner).unwrap();
//! assert_eq!(store.len(clone).unwrap(), 1);
//! // Copy-on-write: the clone shares the page until one side appends.
//! assert_eq!(store.gpu_pages_used(), 1);
//! ```

pub mod error;
pub mod journal;
pub mod page;
pub mod store;

pub use error::KvError;
pub use journal::{
    append_frame, read_frames, Journal, JournalConfig, JournalHeader, JournalWriter, Record,
    RestoreReport,
};
pub use page::{KvEntry, PageId, Tier, PAGE_TOKENS_DEFAULT};
pub use store::{
    FileId, FileStat, KvStats, KvStore, KvStoreConfig, Mode, OwnerId, Residency, SwapReport,
};
