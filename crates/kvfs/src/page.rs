//! Pages and the three-tier page pool.
//!
//! A page holds up to `page_tokens` KV entries and lives in exactly one
//! memory tier. Pages are reference-counted: [`crate::store::KvStore::fork`]
//! shares pages between files and copies only on divergence (copy-on-write
//! of the mutable tail). The pool enforces per-tier capacity; allocation
//! failure is an explicit error so callers can run eviction policies — the
//! central mechanism/policy split the paper argues for.

use symphony_model::CtxFingerprint;
use symphony_tokenizer::TokenId;

use crate::error::KvError;

/// Default tokens per page, matching vLLM's common block size.
pub const PAGE_TOKENS_DEFAULT: usize = 16;

/// One cached token: the token, its absolute position, and the fingerprint
/// of the context *up to and including* this token (the surrogate for the
/// token's K/V tensors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct KvEntry {
    /// Token ID.
    pub token: TokenId,
    /// Absolute position in the context (discontiguous layouts are legal).
    pub position: u32,
    /// Rolling context fingerprint after this token.
    pub fingerprint: CtxFingerprint,
}

impl KvEntry {
    /// Creates an entry.
    pub fn new(token: TokenId, position: u32, fingerprint: CtxFingerprint) -> Self {
        KvEntry {
            token,
            position,
            fingerprint,
        }
    }
}

/// Identifier of a page slot in the pool.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PageId(pub u32);

/// The memory tier a page resides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// GPU HBM — required for `pred`.
    Gpu,
    /// CPU DRAM — swap space for blocked or cold files.
    Cpu,
    /// NVMe disk — second-level spill and the persistence tier. Pages on
    /// disk survive a journal snapshot/restore cycle; swapping them back
    /// in is charged against the device's NVMe lane rather than PCIe.
    Disk,
}

/// A page slot.
#[derive(Debug, Clone)]
pub(crate) struct Page {
    pub entries: Vec<KvEntry>,
    pub refcount: u32,
    pub tier: Tier,
}

/// The three-tier page pool.
#[derive(Debug)]
pub(crate) struct PagePool {
    slots: Vec<Option<Page>>,
    free: Vec<u32>,
    page_tokens: usize,
    gpu_capacity: usize,
    cpu_capacity: usize,
    disk_capacity: usize,
    gpu_used: usize,
    cpu_used: usize,
    disk_used: usize,
    /// Pages whose content or tier changed since the last
    /// [`PagePool::take_dirty`] drain. `None` (the default) disables
    /// tracking entirely so the hot paths pay only an `Option` check;
    /// the store enables it when a delta journal is opened.
    dirty: Option<std::collections::BTreeSet<u32>>,
}

impl PagePool {
    pub(crate) fn new(
        page_tokens: usize,
        gpu_capacity: usize,
        cpu_capacity: usize,
        disk_capacity: usize,
    ) -> Self {
        assert!(page_tokens > 0, "page size must be positive");
        PagePool {
            slots: Vec::new(),
            free: Vec::new(),
            page_tokens,
            gpu_capacity,
            cpu_capacity,
            disk_capacity,
            gpu_used: 0,
            cpu_used: 0,
            disk_used: 0,
            dirty: None,
        }
    }

    /// Starts tracking content/tier changes for delta journalling.
    pub(crate) fn enable_dirty_tracking(&mut self) {
        self.dirty = Some(std::collections::BTreeSet::new());
    }

    /// Drains the dirty set, returning the still-live page ids in
    /// ascending order. Empty when tracking is disabled.
    pub(crate) fn take_dirty(&mut self) -> Vec<u32> {
        match self.dirty.as_mut() {
            Some(d) => {
                let drained = std::mem::take(d);
                drained
                    .into_iter()
                    .filter(|&i| {
                        (i as usize) < self.slots.len() && self.slots[i as usize].is_some()
                    })
                    .collect()
            }
            None => Vec::new(),
        }
    }

    /// Marks a page dirty for the next delta drain (no-op while disabled).
    /// Content mutations that bypass `alloc`/`migrate`/`copy_entries_into`
    /// — direct `page_mut(..).entries` edits in the store — must call this.
    pub(crate) fn mark_dirty(&mut self, id: PageId) {
        if let Some(d) = self.dirty.as_mut() {
            d.insert(id.0);
        }
    }

    pub(crate) fn page_tokens(&self) -> usize {
        self.page_tokens
    }

    pub(crate) fn gpu_used(&self) -> usize {
        self.gpu_used
    }

    pub(crate) fn cpu_used(&self) -> usize {
        self.cpu_used
    }

    pub(crate) fn disk_used(&self) -> usize {
        self.disk_used
    }

    pub(crate) fn gpu_capacity(&self) -> usize {
        self.gpu_capacity
    }

    pub(crate) fn cpu_capacity(&self) -> usize {
        self.cpu_capacity
    }

    pub(crate) fn disk_capacity(&self) -> usize {
        self.disk_capacity
    }

    fn tier_full(&self, tier: Tier) -> Option<KvError> {
        match tier {
            Tier::Gpu if self.gpu_used >= self.gpu_capacity => Some(KvError::NoGpuMemory),
            Tier::Cpu if self.cpu_used >= self.cpu_capacity => Some(KvError::NoCpuMemory),
            Tier::Disk if self.disk_used >= self.disk_capacity => Some(KvError::NoDiskMemory),
            _ => None,
        }
    }

    fn add_used(&mut self, tier: Tier) {
        match tier {
            Tier::Gpu => self.gpu_used += 1,
            Tier::Cpu => self.cpu_used += 1,
            Tier::Disk => self.disk_used += 1,
        }
    }

    fn sub_used(&mut self, tier: Tier) {
        match tier {
            Tier::Gpu => self.gpu_used -= 1,
            Tier::Cpu => self.cpu_used -= 1,
            Tier::Disk => self.disk_used -= 1,
        }
    }

    /// Allocates an empty page in `tier` with refcount 1.
    pub(crate) fn alloc(&mut self, tier: Tier) -> Result<PageId, KvError> {
        if let Some(err) = self.tier_full(tier) {
            return Err(err);
        }
        let page = Page {
            entries: Vec::with_capacity(self.page_tokens),
            refcount: 1,
            tier,
        };
        self.add_used(tier);
        let id = if let Some(idx) = self.free.pop() {
            self.slots[idx as usize] = Some(page);
            PageId(idx)
        } else {
            self.slots.push(Some(page));
            PageId((self.slots.len() - 1) as u32)
        };
        self.mark_dirty(id);
        Ok(id)
    }

    /// Increments a page's refcount (a new file now references it).
    pub(crate) fn retain(&mut self, id: PageId) {
        self.page_mut(id).refcount += 1;
    }

    /// Decrements a page's refcount, freeing the slot at zero.
    pub(crate) fn release(&mut self, id: PageId) {
        let tier;
        {
            let page = self.page_mut(id);
            debug_assert!(page.refcount > 0, "release of dead page");
            page.refcount -= 1;
            if page.refcount > 0 {
                return;
            }
            tier = page.tier;
        }
        self.slots[id.0 as usize] = None;
        self.free.push(id.0);
        self.sub_used(tier);
        if let Some(d) = self.dirty.as_mut() {
            // A freed slot has no content to journal; if it is reallocated
            // later, `alloc` re-marks it.
            d.remove(&id.0);
        }
    }

    /// Moves a page between tiers; returns the number of tokens moved.
    pub(crate) fn migrate(&mut self, id: PageId, to: Tier) -> Result<usize, KvError> {
        let from = self.page(id).tier;
        if from == to {
            return Ok(0);
        }
        if let Some(err) = self.tier_full(to) {
            return Err(err);
        }
        self.sub_used(from);
        self.add_used(to);
        let page = self.page_mut(id);
        page.tier = to;
        let moved = page.entries.len();
        self.mark_dirty(id);
        Ok(moved)
    }

    /// Installs a page with a known id, content and refcount — journal
    /// restore only. Grows the slot vector as needed; fails with the
    /// tier's out-of-memory error when the configured capacity cannot
    /// hold another page, and refuses to overwrite a live slot.
    pub(crate) fn install(
        &mut self,
        id: PageId,
        tier: Tier,
        entries: Vec<KvEntry>,
        refcount: u32,
    ) -> Result<(), KvError> {
        if let Some(err) = self.tier_full(tier) {
            return Err(err);
        }
        let idx = id.0 as usize;
        if idx >= self.slots.len() {
            self.slots.resize_with(idx + 1, || None);
        }
        if self.slots[idx].is_some() {
            return Err(KvError::JournalTorn);
        }
        self.slots[idx] = Some(Page {
            entries,
            refcount,
            tier,
        });
        self.add_used(tier);
        Ok(())
    }

    /// Finishes a journal restore: fixes the slot-vector length and the
    /// free-slot order. With `free: Some(_)` the recorded snapshot order
    /// is adopted verbatim (byte-identical allocation behaviour); with
    /// `None` a canonical order is rebuilt — every empty slot, highest
    /// index pushed last, so `alloc` reuses the lowest index first.
    pub(crate) fn finish_restore(&mut self, slots_len: usize, free: Option<Vec<u32>>) {
        if slots_len > self.slots.len() {
            self.slots.resize_with(slots_len, || None);
        }
        self.free = match free {
            Some(order) => order,
            None => {
                let mut rebuilt: Vec<u32> = self
                    .slots
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| s.is_none())
                    .map(|(i, _)| i as u32)
                    .collect();
                rebuilt.reverse();
                rebuilt
            }
        };
    }

    /// The free-slot stack in allocation-stack order (journal snapshot).
    pub(crate) fn free_list(&self) -> &[u32] {
        &self.free
    }

    /// Total slot-vector length including empty slots (journal snapshot).
    pub(crate) fn slots_len(&self) -> usize {
        self.slots.len()
    }

    pub(crate) fn page(&self, id: PageId) -> &Page {
        // Page ids are kernel-internal, never user-supplied; a dangling id
        // is a kvfs refcount bug that `Store::verify()` catches in tests,
        // and propagating an error here would poison every caller signature.
        self.slots[id.0 as usize]
            .as_ref()
            .expect("dangling page id") // lint:allow(k1): internal id, see above
    }

    pub(crate) fn page_mut(&mut self, id: PageId) -> &mut Page {
        // Same invariant as `page` above — ids come from `alloc` and are
        // released exactly once; `verify()` guards this in every test.
        self.slots[id.0 as usize]
            .as_mut()
            .expect("dangling page id") // lint:allow(k1): internal id, see above
    }

    /// Copies `src`'s entries into `dst` in place (copy-on-write divergence).
    /// Splits the slot borrow so the hot CoW path copies entry data exactly
    /// once, with no intermediate `Vec` allocation.
    pub(crate) fn copy_entries_into(&mut self, src: PageId, dst: PageId) {
        debug_assert_ne!(src, dst, "CoW copy onto the source page");
        let (a, b) = (src.0 as usize, dst.0 as usize);
        let (src_slot, dst_slot) = if a < b {
            let (l, r) = self.slots.split_at_mut(b);
            (&l[a], &mut r[0])
        } else {
            let (l, r) = self.slots.split_at_mut(a);
            (&r[0], &mut l[b])
        };
        // Same invariant as `page`/`page_mut`: ids are kernel-internal.
        let src_page = src_slot.as_ref().expect("dangling page id"); // lint:allow(k1): internal id
        let dst_page = dst_slot.as_mut().expect("dangling page id"); // lint:allow(k1): internal id
        dst_page.entries.clear();
        dst_page.entries.extend_from_slice(&src_page.entries);
        self.mark_dirty(dst);
    }

    /// Number of live pages (for invariant checks).
    pub(crate) fn live_pages(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Iterates over live pages.
    pub(crate) fn iter(&self) -> impl Iterator<Item = (PageId, &Page)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|p| (PageId(i as u32), p)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(i: u32) -> KvEntry {
        KvEntry::new(i, i, CtxFingerprint(i as u64))
    }

    #[test]
    fn alloc_respects_capacity() {
        let mut pool = PagePool::new(4, 2, 1, 0);
        let a = pool.alloc(Tier::Gpu).unwrap();
        let _b = pool.alloc(Tier::Gpu).unwrap();
        assert_eq!(pool.alloc(Tier::Gpu), Err(KvError::NoGpuMemory));
        assert_eq!(pool.gpu_used(), 2);
        pool.release(a);
        assert_eq!(pool.gpu_used(), 1);
        pool.alloc(Tier::Gpu).unwrap();
        let _c = pool.alloc(Tier::Cpu).unwrap();
        assert_eq!(pool.alloc(Tier::Cpu), Err(KvError::NoCpuMemory));
    }

    #[test]
    fn refcounting_frees_at_zero() {
        let mut pool = PagePool::new(4, 8, 0, 0);
        let p = pool.alloc(Tier::Gpu).unwrap();
        pool.retain(p);
        pool.release(p);
        assert_eq!(pool.live_pages(), 1, "still one reference");
        pool.release(p);
        assert_eq!(pool.live_pages(), 0);
        assert_eq!(pool.gpu_used(), 0);
    }

    #[test]
    fn slot_reuse_after_free() {
        let mut pool = PagePool::new(4, 8, 0, 0);
        let a = pool.alloc(Tier::Gpu).unwrap();
        pool.release(a);
        let b = pool.alloc(Tier::Gpu).unwrap();
        assert_eq!(a, b, "freed slot should be reused");
    }

    #[test]
    fn migrate_moves_between_tiers() {
        let mut pool = PagePool::new(4, 2, 2, 0);
        let p = pool.alloc(Tier::Gpu).unwrap();
        pool.page_mut(p).entries.push(entry(1));
        pool.page_mut(p).entries.push(entry(2));
        let moved = pool.migrate(p, Tier::Cpu).unwrap();
        assert_eq!(moved, 2);
        assert_eq!(pool.gpu_used(), 0);
        assert_eq!(pool.cpu_used(), 1);
        assert_eq!(pool.page(p).tier, Tier::Cpu);
        // No-op migration.
        assert_eq!(pool.migrate(p, Tier::Cpu).unwrap(), 0);
    }

    #[test]
    fn migrate_respects_destination_capacity() {
        let mut pool = PagePool::new(4, 2, 1, 0);
        let a = pool.alloc(Tier::Gpu).unwrap();
        let b = pool.alloc(Tier::Gpu).unwrap();
        pool.migrate(a, Tier::Cpu).unwrap();
        assert_eq!(pool.migrate(b, Tier::Cpu), Err(KvError::NoCpuMemory));
    }

    #[test]
    fn disk_tier_allocates_and_migrates() {
        let mut pool = PagePool::new(4, 1, 1, 1);
        let p = pool.alloc(Tier::Gpu).unwrap();
        pool.page_mut(p).entries.push(entry(7));
        assert_eq!(pool.migrate(p, Tier::Disk).unwrap(), 1);
        assert_eq!(pool.page(p).tier, Tier::Disk);
        assert_eq!(pool.disk_used(), 1);
        assert_eq!(pool.gpu_used(), 0);
        // Disk full: second page cannot spill.
        let q = pool.alloc(Tier::Gpu).unwrap();
        assert_eq!(pool.migrate(q, Tier::Disk), Err(KvError::NoDiskMemory));
        // Zero-capacity disk rejects allocation outright.
        let mut no_disk = PagePool::new(4, 1, 1, 0);
        assert_eq!(no_disk.alloc(Tier::Disk), Err(KvError::NoDiskMemory));
    }

    #[test]
    fn install_rebuilds_pool_state() {
        let mut pool = PagePool::new(4, 4, 0, 4);
        pool.install(PageId(2), Tier::Gpu, vec![entry(1)], 2).unwrap();
        pool.install(PageId(0), Tier::Disk, vec![entry(2)], 1).unwrap();
        assert_eq!(pool.gpu_used(), 1);
        assert_eq!(pool.disk_used(), 1);
        assert_eq!(pool.page(PageId(2)).refcount, 2);
        // Double-install of a live slot is a journal inconsistency.
        assert_eq!(
            pool.install(PageId(2), Tier::Gpu, vec![], 1),
            Err(KvError::JournalTorn)
        );
        pool.finish_restore(3, None);
        // Slot 1 is the only hole; canonical order allocates it first.
        assert_eq!(pool.free_list(), &[1]);
        assert_eq!(pool.alloc(Tier::Gpu).unwrap(), PageId(1));
    }
}
