//! Append-only page journal: the KVFS persistence format.
//!
//! A journal is a fixed header followed by framed, typed, checksummed
//! records and a terminating [`Record::End`]. Every frame is
//! `[tag u8][len u32][payload][crc u32]` with the CRC (FNV-1a over tag and
//! payload) making torn tails detectable: replay keeps the longest valid
//! record prefix and reports the tear as [`KvError::JournalTorn`] detail
//! instead of failing the whole restore — the truncate-and-continue
//! recovery of append-only stores like diskomap.
//!
//! [`crate::store::KvStore::snapshot_to_journal`] serialises a store as a
//! record sequence (pages, file metadata, links, quotas, pool state);
//! [`crate::store::KvStore::restore_from_journal`] replays any record
//! sequence — snapshot or incremental appends of page writes, truncates,
//! links and removes — back into a byte-identical store.

use symphony_model::CtxFingerprint;

use crate::error::KvError;
use crate::page::{KvEntry, Tier};

/// Journal file magic: "SYMJ".
pub const JOURNAL_MAGIC: [u8; 4] = *b"SYMJ";

/// Current journal format version.
pub const JOURNAL_VERSION: u32 = 1;

/// Fixed journal header: store geometry plus the id/clock high-water marks
/// needed to continue allocating after a restore.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalHeader {
    /// Tokens per page at snapshot time (must match the restoring config).
    pub page_tokens: u64,
    /// KV bytes per token at snapshot time (must match the restoring config).
    pub bytes_per_token: u64,
    /// Next file id to allocate.
    pub next_file: u64,
    /// Logical access clock at snapshot time.
    pub access_clock: u64,
}

/// One typed journal record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Record {
    /// A page's full contents and tier.
    PageWrite {
        /// Page slot id.
        page: u32,
        /// Tier the page resides in.
        tier: Tier,
        /// The page's entries.
        entries: Vec<KvEntry>,
    },
    /// A file's metadata and page list (pages must already be written).
    FileMeta {
        /// File id.
        id: u64,
        /// Owning tenant.
        owner: u64,
        /// Entry count.
        len: u64,
        /// `Mode::read_all`.
        read_all: bool,
        /// `Mode::write_all`.
        write_all: bool,
        /// Pinned against eviction/swap.
        pinned: bool,
        /// Exclusive lock holder, if any.
        lock: Option<u64>,
        /// Logical last-access stamp.
        last_access: u64,
        /// Page ids, in file order.
        pages: Vec<u32>,
    },
    /// A namespace path pointing at a file.
    Link {
        /// Namespace path.
        path: String,
        /// Target file id.
        id: u64,
    },
    /// Namespace path removal.
    Unlink {
        /// Namespace path.
        path: String,
    },
    /// File removal (pages released, links dropped).
    Remove {
        /// File id.
        file: u64,
    },
    /// File truncation to `new_len` entries.
    Truncate {
        /// File id.
        file: u64,
        /// New entry count.
        new_len: u64,
    },
    /// An owner's page-quota limit (`None` = unlimited).
    Quota {
        /// Owner id.
        owner: u64,
        /// Page limit.
        limit: Option<u64>,
    },
    /// Page-pool slot geometry: total slot count and the free-slot stack in
    /// allocation order. Only valid as a snapshot's final state record; any
    /// later mutating record invalidates it.
    PoolState {
        /// Slot-vector length including holes.
        slots_len: u32,
        /// Free-slot stack, bottom first.
        free: Vec<u32>,
    },
    /// Terminator: everything before it is a complete journal.
    End,
}

const TAG_PAGE_WRITE: u8 = 1;
const TAG_FILE_META: u8 = 2;
const TAG_LINK: u8 = 3;
const TAG_UNLINK: u8 = 4;
const TAG_REMOVE: u8 = 5;
const TAG_TRUNCATE: u8 = 6;
const TAG_QUOTA: u8 = 7;
const TAG_POOL_STATE: u8 = 8;
const TAG_END: u8 = 9;

const TIER_GPU: u8 = 0;
const TIER_CPU: u8 = 1;
const TIER_DISK: u8 = 2;

// The SYMJ frame layout — `[tag u8][len u32][payload][crc u32]`, FNV-1a
// over tag + payload — is the workspace-wide codec from
// `symphony_sim::frame`, re-exported here because the kernel WAL predates
// the shared module and imports the framing through this path.
pub use symphony_sim::frame::{append_frame, read_frames};

use symphony_sim::frame::{fnv1a, next_frame, push_u32, push_u64, Cursor};

fn encode_tier(tier: Tier) -> u8 {
    match tier {
        Tier::Gpu => TIER_GPU,
        Tier::Cpu => TIER_CPU,
        Tier::Disk => TIER_DISK,
    }
}

fn decode_tier(b: u8) -> Option<Tier> {
    match b {
        TIER_GPU => Some(Tier::Gpu),
        TIER_CPU => Some(Tier::Cpu),
        TIER_DISK => Some(Tier::Disk),
        _ => None,
    }
}

fn encode_payload(rec: &Record, out: &mut Vec<u8>) {
    match rec {
        Record::PageWrite {
            page,
            tier,
            entries,
        } => {
            push_u32(out, *page);
            out.push(encode_tier(*tier));
            push_u32(out, entries.len() as u32);
            for e in entries {
                push_u32(out, e.token);
                push_u32(out, e.position);
                push_u64(out, e.fingerprint.0);
            }
        }
        Record::FileMeta {
            id,
            owner,
            len,
            read_all,
            write_all,
            pinned,
            lock,
            last_access,
            pages,
        } => {
            push_u64(out, *id);
            push_u64(out, *owner);
            push_u64(out, *len);
            let mut bits = 0u8;
            bits |= u8::from(*read_all);
            bits |= u8::from(*write_all) << 1;
            bits |= u8::from(*pinned) << 2;
            bits |= u8::from(lock.is_some()) << 3;
            out.push(bits);
            push_u64(out, lock.unwrap_or(0));
            push_u64(out, *last_access);
            push_u32(out, pages.len() as u32);
            for p in pages {
                push_u32(out, *p);
            }
        }
        Record::Link { path, id } => {
            push_u64(out, *id);
            push_u32(out, path.len() as u32);
            out.extend_from_slice(path.as_bytes());
        }
        Record::Unlink { path } => {
            push_u32(out, path.len() as u32);
            out.extend_from_slice(path.as_bytes());
        }
        Record::Remove { file } => push_u64(out, *file),
        Record::Truncate { file, new_len } => {
            push_u64(out, *file);
            push_u64(out, *new_len);
        }
        Record::Quota { owner, limit } => {
            push_u64(out, *owner);
            out.push(u8::from(limit.is_some()));
            push_u64(out, limit.unwrap_or(0));
        }
        Record::PoolState { slots_len, free } => {
            push_u32(out, *slots_len);
            push_u32(out, free.len() as u32);
            for f in free {
                push_u32(out, *f);
            }
        }
        Record::End => {}
    }
}

fn record_tag(rec: &Record) -> u8 {
    match rec {
        Record::PageWrite { .. } => TAG_PAGE_WRITE,
        Record::FileMeta { .. } => TAG_FILE_META,
        Record::Link { .. } => TAG_LINK,
        Record::Unlink { .. } => TAG_UNLINK,
        Record::Remove { .. } => TAG_REMOVE,
        Record::Truncate { .. } => TAG_TRUNCATE,
        Record::Quota { .. } => TAG_QUOTA,
        Record::PoolState { .. } => TAG_POOL_STATE,
        Record::End => TAG_END,
    }
}

fn decode_payload(tag: u8, payload: &[u8]) -> Option<Record> {
    let mut c = Cursor::new(payload);
    let rec = match tag {
        TAG_PAGE_WRITE => {
            let page = c.u32()?;
            let tier = decode_tier(c.u8()?)?;
            let count = c.u32()? as usize;
            let mut entries = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                let token = c.u32()?;
                let position = c.u32()?;
                let fingerprint = CtxFingerprint(c.u64()?);
                entries.push(KvEntry::new(token, position, fingerprint));
            }
            Record::PageWrite {
                page,
                tier,
                entries,
            }
        }
        TAG_FILE_META => {
            let id = c.u64()?;
            let owner = c.u64()?;
            let len = c.u64()?;
            let bits = c.u8()?;
            let lock_holder = c.u64()?;
            let last_access = c.u64()?;
            let count = c.u32()? as usize;
            let mut pages = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                pages.push(c.u32()?);
            }
            Record::FileMeta {
                id,
                owner,
                len,
                read_all: bits & 1 != 0,
                write_all: bits & 2 != 0,
                pinned: bits & 4 != 0,
                lock: (bits & 8 != 0).then_some(lock_holder),
                last_access,
                pages,
            }
        }
        TAG_LINK => {
            let id = c.u64()?;
            let n = c.u32()? as usize;
            let path = String::from_utf8(c.take(n)?.to_vec()).ok()?;
            Record::Link { path, id }
        }
        TAG_UNLINK => {
            let n = c.u32()? as usize;
            let path = String::from_utf8(c.take(n)?.to_vec()).ok()?;
            Record::Unlink { path }
        }
        TAG_REMOVE => Record::Remove { file: c.u64()? },
        TAG_TRUNCATE => Record::Truncate {
            file: c.u64()?,
            new_len: c.u64()?,
        },
        TAG_QUOTA => {
            let owner = c.u64()?;
            let has_limit = c.u8()? != 0;
            let limit = c.u64()?;
            Record::Quota {
                owner,
                limit: has_limit.then_some(limit),
            }
        }
        TAG_POOL_STATE => {
            let slots_len = c.u32()?;
            let count = c.u32()? as usize;
            let mut free = Vec::with_capacity(count.min(payload.len()));
            for _ in 0..count {
                free.push(c.u32()?);
            }
            Record::PoolState { slots_len, free }
        }
        TAG_END => Record::End,
        _ => return None,
    };
    // Trailing payload bytes mean the frame lied about its own shape.
    c.done().then_some(rec)
}

/// Builds a journal byte stream: header, then appended records, then
/// [`Record::End`] on [`JournalWriter::finish`].
#[derive(Debug)]
pub struct JournalWriter {
    buf: Vec<u8>,
}

impl JournalWriter {
    /// Starts a journal with the given header.
    pub fn new(header: &JournalHeader) -> Self {
        let mut buf = Vec::new();
        buf.extend_from_slice(&JOURNAL_MAGIC);
        push_u32(&mut buf, JOURNAL_VERSION);
        push_u64(&mut buf, header.page_tokens);
        push_u64(&mut buf, header.bytes_per_token);
        push_u64(&mut buf, header.next_file);
        push_u64(&mut buf, header.access_clock);
        let crc = fnv1a(&buf);
        push_u32(&mut buf, crc);
        JournalWriter { buf }
    }

    /// Appends one framed record.
    pub fn append(&mut self, rec: &Record) {
        let mut payload = Vec::new();
        encode_payload(rec, &mut payload);
        // CRC covers tag + payload (not the length, which the frame walk
        // re-derives; a bad length shows up as a bad CRC anyway).
        append_frame(&mut self.buf, record_tag(rec), &payload);
    }

    /// Terminates the journal and returns the bytes.
    pub fn finish(mut self) -> Vec<u8> {
        self.append(&Record::End);
        self.buf
    }
}

const HEADER_LEN: usize = 4 + 4 + 8 * 4 + 4;

/// Parses a journal: the header, the longest valid record prefix, and
/// whether the tail was torn (short frame, bad checksum, malformed payload
/// or missing [`Record::End`]).
///
/// Returns `Err(KvError::JournalTorn)` only when the header itself is
/// unusable — there is nothing to restore. A version or magic mismatch is
/// [`KvError::JournalIncompatible`].
pub fn read_journal(bytes: &[u8]) -> Result<(JournalHeader, Vec<Record>, bool), KvError> {
    if bytes.len() < HEADER_LEN {
        return Err(KvError::JournalTorn);
    }
    let mut c = Cursor::new(bytes);
    let magic = c.take(4).ok_or(KvError::JournalTorn)?;
    if magic != JOURNAL_MAGIC {
        return Err(KvError::JournalIncompatible);
    }
    let version = c.u32().ok_or(KvError::JournalTorn)?;
    if version != JOURNAL_VERSION {
        return Err(KvError::JournalIncompatible);
    }
    let header = JournalHeader {
        page_tokens: c.u64().ok_or(KvError::JournalTorn)?,
        bytes_per_token: c.u64().ok_or(KvError::JournalTorn)?,
        next_file: c.u64().ok_or(KvError::JournalTorn)?,
        access_clock: c.u64().ok_or(KvError::JournalTorn)?,
    };
    let stored_crc = c.u32().ok_or(KvError::JournalTorn)?;
    if stored_crc != fnv1a(&bytes[..HEADER_LEN - 4]) {
        return Err(KvError::JournalTorn);
    }

    let mut records = Vec::new();
    let mut complete = false;
    while let Some((tag, payload)) = next_frame(&mut c) {
        let Some(rec) = decode_payload(tag, payload) else {
            break;
        };
        if rec == Record::End {
            complete = true;
            break;
        }
        records.push(rec);
    }
    Ok((header, records, !complete))
}

/// Human-readable name for a record's frame type.
fn record_name(rec: &Record) -> &'static str {
    match rec {
        Record::PageWrite { .. } => "page_write",
        Record::FileMeta { .. } => "file_meta",
        Record::Link { .. } => "link",
        Record::Unlink { .. } => "unlink",
        Record::Remove { .. } => "remove",
        Record::Truncate { .. } => "truncate",
        Record::Quota { .. } => "quota",
        Record::PoolState { .. } => "pool_state",
        Record::End => "end",
    }
}

/// Parses journal bytes and counts valid records per frame type — the
/// journal-growth observability hook `exp_persist` reports alongside the
/// `kvfs.journal_bytes` gauge. The `End` terminator is not counted; a
/// torn tail only shortens the counted prefix.
pub fn frame_counts(
    bytes: &[u8],
) -> Result<std::collections::BTreeMap<&'static str, u64>, KvError> {
    let (_header, records, _torn) = read_journal(bytes)?;
    let mut counts = std::collections::BTreeMap::new();
    for rec in &records {
        *counts.entry(record_name(rec)).or_insert(0u64) += 1;
    }
    Ok(counts)
}

/// Byte length of a framed [`Record::End`]: tag + length + CRC, no payload.
const END_FRAME_LEN: u64 = 9;

/// Tuning for an on-disk [`Journal`] handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct JournalConfig {
    /// Buffered record bytes that trigger an automatic [`Journal::flush`]
    /// from inside [`Journal::append`] — the periodic write worker. Small
    /// deltas coalesce in memory; a flush writes them in one syscall pair.
    pub flush_every_bytes: usize,
    /// Total journal size (disk + buffered) at which
    /// [`Journal::needs_compaction`] reports `true`.
    pub compact_threshold_bytes: u64,
}

impl Default for JournalConfig {
    fn default() -> Self {
        JournalConfig {
            flush_every_bytes: 8 * 1024,
            compact_threshold_bytes: 256 * 1024,
        }
    }
}

/// An appendable on-disk journal: a base snapshot plus flushed delta
/// batches, bounded by threshold-triggered compaction.
///
/// Every flush *unseals* the file (strips the trailing [`Record::End`]
/// frame), appends the buffered frames, and reseals with a fresh `End` —
/// so every crash window leaves either the previous sealed journal or a
/// torn tail that [`read_journal`] truncates back to a valid record
/// prefix. [`Journal::compact`] rewrites the whole file as a
/// snapshot-equivalent stream via a sibling temp file and an atomic
/// rename: a crash before the rename leaves the old journal untouched.
#[derive(Debug)]
pub struct Journal {
    path: std::path::PathBuf,
    config: JournalConfig,
    /// Framed records not yet written to disk.
    pending: Vec<u8>,
    /// Sealed on-disk length, including the trailing `End` frame.
    disk_len: u64,
    compactions: u64,
}

impl Journal {
    /// Creates (or truncates) the journal at `path` with `snapshot` — a
    /// complete sealed stream from [`JournalWriter::finish`] or
    /// `KvStore::journal_bytes` — as its base.
    pub fn create(
        path: &std::path::Path,
        snapshot: &[u8],
        config: JournalConfig,
    ) -> std::io::Result<Journal> {
        std::fs::write(path, snapshot)?;
        Ok(Journal {
            path: path.to_path_buf(),
            config,
            pending: Vec::new(),
            disk_len: snapshot.len() as u64,
            compactions: 0,
        })
    }

    /// Buffers one framed record, flushing when the buffer crosses
    /// [`JournalConfig::flush_every_bytes`].
    pub fn append(&mut self, rec: &Record) -> std::io::Result<()> {
        let mut payload = Vec::new();
        encode_payload(rec, &mut payload);
        append_frame(&mut self.pending, record_tag(rec), &payload);
        if self.pending.len() >= self.config.flush_every_bytes {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes buffered records to disk: unseal (drop the `End` frame),
    /// append, reseal. A no-op with an empty buffer.
    pub fn flush(&mut self) -> std::io::Result<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        use std::io::{Seek, SeekFrom, Write};
        let mut f = std::fs::OpenOptions::new().write(true).open(&self.path)?;
        f.set_len(self.disk_len - END_FRAME_LEN)?;
        f.seek(SeekFrom::End(0))?;
        f.write_all(&self.pending)?;
        let mut end = Vec::new();
        append_frame(&mut end, TAG_END, &[]);
        f.write_all(&end)?;
        self.disk_len += self.pending.len() as u64;
        self.pending.clear();
        Ok(())
    }

    /// Journal size: sealed bytes on disk plus the unflushed buffer.
    pub fn bytes(&self) -> u64 {
        self.disk_len + self.pending.len() as u64
    }

    /// `true` once [`Journal::bytes`] reaches the compaction threshold.
    pub fn needs_compaction(&self) -> bool {
        self.bytes() >= self.config.compact_threshold_bytes
    }

    /// Rewrites the journal as `snapshot` (which must describe the store
    /// state the journal's records replay to, so buffered records are
    /// subsumed and dropped). Crash-safe: the snapshot lands in a sibling
    /// temp file first and replaces the journal with one atomic rename.
    pub fn compact(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        let tmp = self.tmp_path();
        std::fs::write(&tmp, snapshot)?;
        std::fs::rename(&tmp, &self.path)?;
        self.disk_len = snapshot.len() as u64;
        self.pending.clear();
        self.compactions += 1;
        Ok(())
    }

    /// Fault-injection twin of [`Journal::compact`]: writes the temp file
    /// and "crashes" before the rename. The journal on disk is untouched
    /// and the handle's accounting is unchanged — chaos tests call this to
    /// prove a mid-compaction crash cannot lose the old journal.
    #[doc(hidden)]
    pub fn compact_crash_before_rename(&mut self, snapshot: &[u8]) -> std::io::Result<()> {
        std::fs::write(self.tmp_path(), snapshot)
    }

    fn tmp_path(&self) -> std::path::PathBuf {
        let mut name = self.path.file_name().unwrap_or_default().to_os_string();
        name.push(".compact");
        self.path.with_file_name(name)
    }

    /// Compactions performed over this handle's lifetime.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// The journal's on-disk path.
    pub fn path(&self) -> &std::path::Path {
        &self.path
    }
}

/// What a journal restore recovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RestoreReport {
    /// Files restored.
    pub files: usize,
    /// Live pages restored.
    pub pages: usize,
    /// Total tokens restored across all pages.
    pub tokens: usize,
    /// Namespace links restored.
    pub links: usize,
    /// `Some(KvError::JournalTorn)` when the tail was torn and only the
    /// valid prefix was replayed; `None` for a complete journal.
    pub torn: Option<KvError>,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn header() -> JournalHeader {
        JournalHeader {
            page_tokens: 4,
            bytes_per_token: 1024,
            next_file: 7,
            access_clock: 42,
        }
    }

    fn sample_records() -> Vec<Record> {
        vec![
            Record::PageWrite {
                page: 3,
                tier: Tier::Disk,
                entries: vec![KvEntry::new(1, 0, CtxFingerprint(9))],
            },
            Record::FileMeta {
                id: 1,
                owner: 2,
                len: 1,
                read_all: true,
                write_all: false,
                pinned: true,
                lock: Some(5),
                last_access: 11,
                pages: vec![3],
            },
            Record::Link {
                path: "rag/doc.kv".to_string(),
                id: 1,
            },
            Record::Truncate {
                file: 1,
                new_len: 0,
            },
            Record::Unlink {
                path: "rag/doc.kv".to_string(),
            },
            Record::Remove { file: 1 },
            Record::Quota {
                owner: 2,
                limit: Some(16),
            },
            Record::PoolState {
                slots_len: 4,
                free: vec![2, 0],
            },
        ]
    }

    #[test]
    fn round_trips_every_record_type() {
        let mut w = JournalWriter::new(&header());
        for r in sample_records() {
            w.append(&r);
        }
        let bytes = w.finish();
        let (h, records, torn) = read_journal(&bytes).unwrap();
        assert_eq!(h, header());
        assert!(!torn);
        assert_eq!(records, sample_records());
    }

    #[test]
    fn torn_tail_keeps_valid_prefix() {
        let mut w = JournalWriter::new(&header());
        for r in sample_records() {
            w.append(&r);
        }
        let bytes = w.finish();
        let full = sample_records();
        // Cut at every byte length: replay must never panic and must keep
        // a prefix of the full record sequence.
        let mut seen_lens = std::collections::BTreeSet::new();
        for cut in HEADER_LEN..bytes.len() {
            let (h, records, torn) = read_journal(&bytes[..cut]).unwrap();
            assert_eq!(h, header());
            assert!(torn, "cut at {cut} must read as torn");
            assert!(records.len() <= full.len());
            assert_eq!(records[..], full[..records.len()], "prefix at {cut}");
            seen_lens.insert(records.len());
        }
        assert!(seen_lens.contains(&0));
        assert!(seen_lens.contains(&(full.len() - 1)));
    }

    #[test]
    fn corrupt_byte_in_tail_is_torn() {
        let mut w = JournalWriter::new(&header());
        for r in sample_records() {
            w.append(&r);
        }
        let mut bytes = w.finish();
        let n = bytes.len();
        bytes[n - 20] ^= 0xff;
        let (_, records, torn) = read_journal(&bytes).unwrap();
        assert!(torn);
        assert!(records.len() < sample_records().len());
    }

    #[test]
    fn header_errors_are_typed() {
        assert_eq!(read_journal(b"shrt"), Err(KvError::JournalTorn));
        let bytes = JournalWriter::new(&header()).finish();
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        assert_eq!(
            read_journal(&wrong_magic),
            Err(KvError::JournalIncompatible)
        );
        let mut wrong_version = bytes.clone();
        wrong_version[4] = 99;
        assert_eq!(
            read_journal(&wrong_version),
            Err(KvError::JournalIncompatible)
        );
        let mut bad_header_crc = bytes;
        bad_header_crc[10] ^= 0xff;
        assert_eq!(read_journal(&bad_header_crc), Err(KvError::JournalTorn));
    }

    #[test]
    fn empty_journal_is_complete() {
        let bytes = JournalWriter::new(&header()).finish();
        let (_, records, torn) = read_journal(&bytes).unwrap();
        assert!(records.is_empty());
        assert!(!torn);
    }

    #[test]
    fn raw_frames_round_trip_and_tear_at_every_cut() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 32, b"alpha");
        append_frame(&mut buf, 40, &[]);
        append_frame(&mut buf, 33, &[1, 2, 3, 4, 5, 6, 7, 8]);
        let (frames, torn) = read_frames(&buf);
        assert!(!torn);
        assert_eq!(
            frames,
            vec![
                (32u8, b"alpha".to_vec()),
                (40u8, Vec::new()),
                (33u8, vec![1, 2, 3, 4, 5, 6, 7, 8]),
            ]
        );
        // Frame boundaries: a cut exactly between frames is a clean
        // (shorter) log, not a tear.
        let mut boundaries = vec![0usize];
        let mut off = 0usize;
        for (_, payload) in &frames {
            off += 9 + payload.len();
            boundaries.push(off);
        }
        for cut in 0..buf.len() {
            let (prefix, torn) = read_frames(&buf[..cut]);
            assert_eq!(torn, !boundaries.contains(&cut), "tear flag at cut {cut}");
            assert!(prefix.len() <= frames.len());
            assert_eq!(prefix[..], frames[..prefix.len()], "prefix at {cut}");
        }
    }

    #[test]
    fn journal_handle_appends_and_reseals() {
        let dir = std::env::temp_dir().join("symj_handle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("appends.journal");
        let base = JournalWriter::new(&header()).finish();
        let mut j = Journal::create(
            &path,
            &base,
            JournalConfig {
                flush_every_bytes: 1, // flush on every append
                compact_threshold_bytes: u64::MAX,
            },
        )
        .unwrap();
        for r in sample_records() {
            j.append(&r).unwrap();
            // Every post-flush state is a sealed, complete journal.
            let bytes = std::fs::read(&path).unwrap();
            assert_eq!(bytes.len() as u64, j.bytes());
            let (_, _, torn) = read_journal(&bytes).unwrap();
            assert!(!torn);
        }
        let (h, records, torn) = read_journal(&std::fs::read(&path).unwrap()).unwrap();
        assert_eq!(h, header());
        assert!(!torn);
        assert_eq!(records, sample_records());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_handle_buffers_until_flush_threshold() {
        let dir = std::env::temp_dir().join("symj_handle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("buffers.journal");
        let base = JournalWriter::new(&header()).finish();
        let mut j = Journal::create(
            &path,
            &base,
            JournalConfig {
                flush_every_bytes: 1 << 20,
                compact_threshold_bytes: u64::MAX,
            },
        )
        .unwrap();
        j.append(&Record::Quota {
            owner: 1,
            limit: Some(4),
        })
        .unwrap();
        // Unflushed: disk still holds only the sealed base snapshot.
        assert_eq!(std::fs::read(&path).unwrap(), base);
        assert!(j.bytes() > base.len() as u64);
        j.flush().unwrap();
        let (_, records, torn) = read_journal(&std::fs::read(&path).unwrap()).unwrap();
        assert!(!torn);
        assert_eq!(records.len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn journal_compaction_replaces_file_atomically() {
        let dir = std::env::temp_dir().join("symj_handle_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("compacts.journal");
        let base = JournalWriter::new(&header()).finish();
        let mut j = Journal::create(
            &path,
            &base,
            JournalConfig {
                flush_every_bytes: 1,
                compact_threshold_bytes: 128,
            },
        )
        .unwrap();
        for r in sample_records() {
            j.append(&r).unwrap();
        }
        assert!(j.needs_compaction());
        // "Snapshot" here is any complete sealed stream — smaller than the
        // threshold, so compaction actually clears the trigger.
        let mut w = JournalWriter::new(&header());
        w.append(&Record::Quota {
            owner: 9,
            limit: None,
        });
        let snap = w.finish();
        assert!((snap.len() as u64) < 128, "snapshot must fit under the threshold");

        // Crash before the rename: old journal bytes intact and valid.
        let before = std::fs::read(&path).unwrap();
        j.compact_crash_before_rename(&snap).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), before);
        assert_eq!(j.compactions(), 0);

        // Real compaction: the file is exactly the snapshot.
        j.compact(&snap).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), snap);
        assert_eq!(j.bytes(), snap.len() as u64);
        assert_eq!(j.compactions(), 1);
        assert!(!j.needs_compaction());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn raw_frame_crc_rejects_corruption() {
        let mut buf = Vec::new();
        append_frame(&mut buf, 32, b"payload");
        append_frame(&mut buf, 33, b"second");
        buf[3] ^= 0xff;
        let (frames, torn) = read_frames(&buf);
        assert!(torn);
        assert!(frames.is_empty());
    }
}
