//! KVFS error types.

use core::fmt;

/// Errors returned by KVFS operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KvError {
    /// The GPU tier has no free pages; the caller must evict or swap.
    NoGpuMemory,
    /// The CPU tier has no free pages; nothing further can be swapped out.
    NoCpuMemory,
    /// The disk tier has no free pages (or is disabled with zero capacity).
    NoDiskMemory,
    /// No file with the given ID or path.
    NotFound,
    /// A path is already linked to a file.
    AlreadyExists,
    /// The caller's owner ID may not perform this operation on the file.
    PermissionDenied,
    /// The file is write-locked by another owner.
    Locked,
    /// The caller does not hold the lock it tried to release.
    NotLockHolder,
    /// The owner's page quota would be exceeded.
    QuotaExceeded,
    /// An index or range is out of bounds.
    BadRange,
    /// The operation needs the file resident in the GPU tier.
    NotResident,
    /// The file is pinned and cannot be evicted or swapped out.
    Pinned,
    /// `merge`/`extract` was called with no source entries.
    EmptyInput,
    /// A journal's tail record is torn or its body is inconsistent; the
    /// valid prefix was (or can be) restored, the rest is lost.
    JournalTorn,
    /// A journal was written under a different geometry (page size or
    /// bytes-per-token) and cannot be replayed into this store.
    JournalIncompatible,
}

impl fmt::Display for KvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let msg = match self {
            KvError::NoGpuMemory => "out of GPU pages",
            KvError::NoCpuMemory => "out of CPU pages",
            KvError::NoDiskMemory => "out of disk pages",
            KvError::NotFound => "file not found",
            KvError::AlreadyExists => "path already exists",
            KvError::PermissionDenied => "permission denied",
            KvError::Locked => "file is locked by another owner",
            KvError::NotLockHolder => "caller does not hold the lock",
            KvError::QuotaExceeded => "owner page quota exceeded",
            KvError::BadRange => "index or range out of bounds",
            KvError::NotResident => "file is not resident in the GPU tier",
            KvError::Pinned => "file is pinned",
            KvError::EmptyInput => "operation requires at least one entry",
            KvError::JournalTorn => "journal tail is torn; restored the valid prefix",
            KvError::JournalIncompatible => "journal geometry does not match the store config",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for KvError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        assert_eq!(KvError::NoGpuMemory.to_string(), "out of GPU pages");
        assert_eq!(KvError::QuotaExceeded.to_string(), "owner page quota exceeded");
    }
}
