//! The KV file store: namespace, access control, quotas, and the
//! fork/extract/merge operations of §4.2.

use std::collections::BTreeMap;

use symphony_model::CtxFingerprint;
use symphony_telemetry::{Counter, Gauge, MetricsRegistry};

use crate::error::KvError;
use crate::journal::{self, JournalHeader, JournalWriter, Record, RestoreReport};
use crate::page::{KvEntry, PageId, PagePool, Tier, PAGE_TOKENS_DEFAULT};

/// A tenant identity (a Symphony process, a baseline engine, or "the admin").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u64);

impl OwnerId {
    /// The administrative owner: passes every permission check.
    pub const ADMIN: OwnerId = OwnerId(0);
}

/// A KV file identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Non-owner permission bits ("system prompts might be readable by all LIPs
/// but writable only by the admin", §4.2). The owner always has full access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mode {
    /// Any owner may read.
    pub read_all: bool,
    /// Any owner may write (append/truncate/remove/swap/pin).
    pub write_all: bool,
}

impl Mode {
    /// Owner-private file.
    pub const PRIVATE: Mode = Mode {
        read_all: false,
        write_all: false,
    };

    /// World-readable, owner-writable — the shared-prefix publishing mode.
    pub const SHARED_READ: Mode = Mode {
        read_all: true,
        write_all: false,
    };
}

/// Where a file's pages currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// No pages (empty file).
    Empty,
    /// All pages in GPU HBM; `pred` may use the file.
    Gpu,
    /// No pages in GPU HBM, at least one in CPU DRAM (the rest may be on
    /// disk) — swap-in crosses PCIe, possibly plus the NVMe lane.
    Cpu,
    /// Every page spilled to the disk tier; swap-in crosses the NVMe lane.
    Disk,
    /// Pages split between GPU and lower tiers (mid-swap).
    Mixed,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvStoreConfig {
    /// Tokens per page.
    pub page_tokens: usize,
    /// GPU-tier capacity in pages.
    pub gpu_pages: usize,
    /// CPU-tier capacity in pages.
    pub cpu_pages: usize,
    /// Disk-tier capacity in pages (0 disables the disk tier).
    pub disk_pages: usize,
    /// KV bytes per token (for byte-denominated statistics).
    pub bytes_per_token: u64,
}

impl KvStoreConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 64,
            cpu_pages: 64,
            disk_pages: 64,
            bytes_per_token: 1024,
        }
    }

    /// Sizes the pools from byte budgets and a model's per-token KV size.
    ///
    /// Policy: a *nonzero* byte budget always yields at least one page —
    /// integer truncation used to turn a budget smaller than one page into
    /// a zero-page tier whose every allocation failed with a confusing
    /// out-of-memory error. A zero budget stays zero (tier disabled).
    pub fn from_bytes(
        gpu_kv_bytes: u64,
        cpu_kv_bytes: u64,
        disk_kv_bytes: u64,
        bytes_per_token: u64,
        page_tokens: usize,
    ) -> Self {
        assert!(bytes_per_token > 0 && page_tokens > 0);
        let page_bytes = bytes_per_token * page_tokens as u64;
        let pages = |budget_bytes: u64| {
            if budget_bytes == 0 {
                0
            } else {
                ((budget_bytes / page_bytes) as usize).max(1)
            }
        };
        KvStoreConfig {
            page_tokens,
            gpu_pages: pages(gpu_kv_bytes),
            cpu_pages: pages(cpu_kv_bytes),
            disk_pages: pages(disk_kv_bytes),
            bytes_per_token,
        }
    }
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            page_tokens: PAGE_TOKENS_DEFAULT,
            gpu_pages: 4096,
            cpu_pages: 16_384,
            disk_pages: 65_536,
            bytes_per_token: 819_200,
        }
    }
}

/// Public snapshot of one file's metadata.
#[derive(Debug, Clone)]
pub struct FileStat {
    /// File ID.
    pub id: FileId,
    /// Owning tenant.
    pub owner: OwnerId,
    /// Entry (token) count.
    pub len: usize,
    /// Page count.
    pub pages: usize,
    /// Whether the file is pinned against eviction/swap.
    pub pinned: bool,
    /// Holder of the exclusive write lock, if any.
    pub locked_by: Option<OwnerId>,
    /// Tier placement.
    pub residency: Residency,
    /// Logical last-access stamp (monotone counter, for LRU policies).
    pub last_access: u64,
    /// Paths linked to this file.
    pub links: usize,
}

#[derive(Debug)]
struct FileMeta {
    pages: Vec<crate::page::PageId>,
    len: usize,
    owner: OwnerId,
    mode: Mode,
    pinned: bool,
    lock: Option<OwnerId>,
    last_access: u64,
    links: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct Quota {
    used_pages: usize,
    limit_pages: Option<usize>,
}

/// Cumulative store statistics — a point-in-time snapshot of the store's
/// counters in the unified metrics registry (`kvfs.*`).
#[derive(Debug, Default, Clone, Copy)]
pub struct KvStats {
    /// Tokens moved out of GPU HBM (to DRAM or disk).
    pub swapped_out_tokens: u64,
    /// Tokens moved back into GPU HBM (from DRAM or disk).
    pub swapped_in_tokens: u64,
    /// Tokens that landed on the disk tier (CPU-pressure spill or demote).
    pub disk_spilled_tokens: u64,
    /// Tokens read back from the disk tier.
    pub disk_loaded_tokens: u64,
    /// Copy-on-write page copies performed.
    pub cow_copies: u64,
    /// Entries copied by `extract`/`merge`.
    pub copied_entries: u64,
}

/// Live counter handles into the metrics registry backing [`KvStats`].
#[derive(Debug, Clone)]
struct KvCounters {
    swapped_out_tokens: Counter,
    swapped_in_tokens: Counter,
    disk_spilled_tokens: Counter,
    disk_loaded_tokens: Counter,
    cow_copies: Counter,
    copied_entries: Counter,
    compactions: Counter,
    journal_bytes: Gauge,
    journal_frames_page_write: Gauge,
    journal_frames_file_meta: Gauge,
    journal_frames_link: Gauge,
    journal_frames_quota: Gauge,
    journal_frames_pool_state: Gauge,
}

impl KvCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        KvCounters {
            swapped_out_tokens: registry.counter("kvfs.swapped_out_tokens"),
            swapped_in_tokens: registry.counter("kvfs.swapped_in_tokens"),
            disk_spilled_tokens: registry.counter("kvfs.disk_spilled_tokens"),
            disk_loaded_tokens: registry.counter("kvfs.disk_loaded_tokens"),
            cow_copies: registry.counter("kvfs.cow_copies"),
            copied_entries: registry.counter("kvfs.copied_entries"),
            compactions: registry.counter("kvfs.compactions"),
            journal_bytes: registry.gauge("kvfs.journal_bytes"),
            journal_frames_page_write: registry.gauge("kvfs.journal_frames.page_write"),
            journal_frames_file_meta: registry.gauge("kvfs.journal_frames.file_meta"),
            journal_frames_link: registry.gauge("kvfs.journal_frames.link"),
            journal_frames_quota: registry.gauge("kvfs.journal_frames.quota"),
            journal_frames_pool_state: registry.gauge("kvfs.journal_frames.pool_state"),
        }
    }
}

/// Token-move breakdown of one swap operation, split by the lane the bytes
/// crossed: `dram_tokens` moved over PCIe (GPU↔CPU), `disk_tokens` crossed
/// the NVMe lane (anything↔disk). Callers charge each lane's cost model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SwapReport {
    /// Tokens moved between GPU HBM and CPU DRAM (PCIe traffic).
    pub dram_tokens: usize,
    /// Tokens moved to or from the disk tier (NVMe traffic).
    pub disk_tokens: usize,
}

impl SwapReport {
    /// Total tokens moved, regardless of lane.
    pub fn total(&self) -> usize {
        self.dram_tokens + self.disk_tokens
    }
}

/// Change tracking for incremental journal persistence.
///
/// The dirty sets say *which* live entities changed since the last
/// [`KvStore::take_delta`] drain; the shadow maps remember the namespace,
/// live-file set, and quota limits as the journal last described them, so
/// the drain can emit a structural diff (removes, unlinks, links, quota
/// changes) instead of logging every operation. Entities born and removed
/// between drains never touch the diff at all.
#[derive(Debug, Default)]
struct DeltaLog {
    /// Live file ids whose metadata changed since the last drain.
    dirty_files: std::collections::BTreeSet<u64>,
    /// Live file ids as of the last drain.
    shadow_files: std::collections::BTreeSet<u64>,
    /// Namespace as of the last drain.
    shadow_namespace: BTreeMap<String, u64>,
    /// Per-owner quota limits as of the last drain.
    shadow_quotas: BTreeMap<u64, Option<u64>>,
}

/// The KV file store.
#[derive(Debug)]
pub struct KvStore {
    pool: PagePool,
    files: BTreeMap<u64, FileMeta>,
    next_file: u64,
    namespace: BTreeMap<String, FileId>,
    quotas: BTreeMap<OwnerId, Quota>,
    access_clock: u64,
    bytes_per_token: u64,
    counters: KvCounters,
    /// `Some` while an incremental journal is attached (see
    /// [`KvStore::enable_delta_log`]); `None` keeps every mutation path at
    /// its original cost.
    delta: Option<DeltaLog>,
}

impl KvStore {
    /// Creates an empty store with a private metrics registry.
    pub fn new(config: KvStoreConfig) -> Self {
        KvStore::with_registry(config, &MetricsRegistry::new())
    }

    /// Creates an empty store whose counters live in `registry` under the
    /// `kvfs.*` names, so the embedding kernel can snapshot them alongside
    /// every other subsystem.
    pub fn with_registry(config: KvStoreConfig, registry: &MetricsRegistry) -> Self {
        KvStore {
            pool: PagePool::new(
                config.page_tokens,
                config.gpu_pages,
                config.cpu_pages,
                config.disk_pages,
            ),
            files: BTreeMap::new(),
            next_file: 1,
            namespace: BTreeMap::new(),
            quotas: BTreeMap::new(),
            access_clock: 0,
            bytes_per_token: config.bytes_per_token,
            counters: KvCounters::register(registry),
            delta: None,
        }
    }

    // ---- accounting ------------------------------------------------------

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.page_tokens()
    }

    /// GPU pages in use.
    pub fn gpu_pages_used(&self) -> usize {
        self.pool.gpu_used()
    }

    /// GPU page capacity.
    pub fn gpu_pages_capacity(&self) -> usize {
        self.pool.gpu_capacity()
    }

    /// Free GPU pages.
    pub fn gpu_pages_free(&self) -> usize {
        self.pool.gpu_capacity() - self.pool.gpu_used()
    }

    /// CPU pages in use.
    pub fn cpu_pages_used(&self) -> usize {
        self.pool.cpu_used()
    }

    /// CPU page capacity.
    pub fn cpu_pages_capacity(&self) -> usize {
        self.pool.cpu_capacity()
    }

    /// Disk pages in use.
    pub fn disk_pages_used(&self) -> usize {
        self.pool.disk_used()
    }

    /// Disk page capacity (0 when the disk tier is disabled).
    pub fn disk_pages_capacity(&self) -> usize {
        self.pool.disk_capacity()
    }

    /// Total live pages across all tiers.
    pub fn live_pages(&self) -> usize {
        self.pool.live_pages()
    }

    /// KV bytes per token (byte-denominated statistics).
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Cumulative statistics (a snapshot of the `kvfs.*` counters).
    pub fn stats(&self) -> KvStats {
        KvStats {
            swapped_out_tokens: self.counters.swapped_out_tokens.get(),
            swapped_in_tokens: self.counters.swapped_in_tokens.get(),
            disk_spilled_tokens: self.counters.disk_spilled_tokens.get(),
            disk_loaded_tokens: self.counters.disk_loaded_tokens.get(),
            cow_copies: self.counters.cow_copies.get(),
            copied_entries: self.counters.copied_entries.get(),
        }
    }

    /// Sets an owner's page quota (`None` = unlimited).
    pub fn set_quota(&mut self, owner: OwnerId, limit_pages: Option<usize>) {
        self.quotas.entry(owner).or_default().limit_pages = limit_pages;
    }

    /// Pages currently charged to an owner.
    pub fn quota_used(&self, owner: OwnerId) -> usize {
        self.quotas.get(&owner).map_or(0, |q| q.used_pages)
    }

    fn charge(&mut self, owner: OwnerId, pages: usize) -> Result<(), KvError> {
        let q = self.quotas.entry(owner).or_default();
        if let Some(limit) = q.limit_pages {
            if q.used_pages + pages > limit {
                return Err(KvError::QuotaExceeded);
            }
        }
        q.used_pages += pages;
        Ok(())
    }

    fn credit(&mut self, owner: OwnerId, pages: usize) {
        let q = self.quotas.entry(owner).or_default();
        debug_assert!(q.used_pages >= pages, "quota underflow");
        q.used_pages = q.used_pages.saturating_sub(pages);
    }

    // ---- permission helpers ----------------------------------------------

    fn meta(&self, id: FileId) -> Result<&FileMeta, KvError> {
        self.files.get(&id.0).ok_or(KvError::NotFound)
    }

    fn meta_mut(&mut self, id: FileId) -> Result<&mut FileMeta, KvError> {
        // Every metadata mutation flows through here (or `touch`), which is
        // what makes the delta log's dirty-file set complete.
        if let Some(d) = self.delta.as_mut() {
            d.dirty_files.insert(id.0);
        }
        self.files.get_mut(&id.0).ok_or(KvError::NotFound)
    }

    fn check_read(&self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if caller == OwnerId::ADMIN || caller == m.owner || m.mode.read_all {
            Ok(())
        } else {
            Err(KvError::PermissionDenied)
        }
    }

    fn check_write(&self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if !(caller == OwnerId::ADMIN || caller == m.owner || m.mode.write_all) {
            return Err(KvError::PermissionDenied);
        }
        match m.lock {
            Some(holder) if holder != caller => Err(KvError::Locked),
            _ => Ok(()),
        }
    }

    fn touch(&mut self, id: FileId) {
        self.access_clock += 1;
        let clock = self.access_clock;
        if let Some(m) = self.files.get_mut(&id.0) {
            m.last_access = clock;
            // `last_access` is journalled state: reads dirty the file too.
            if let Some(d) = self.delta.as_mut() {
                d.dirty_files.insert(id.0);
            }
        }
    }

    // ---- lifecycle ---------------------------------------------------------

    /// Creates an empty file owned by `owner` with [`Mode::PRIVATE`].
    pub fn create(&mut self, owner: OwnerId) -> Result<FileId, KvError> {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id.0,
            FileMeta {
                pages: Vec::new(),
                len: 0,
                owner,
                mode: Mode::PRIVATE,
                pinned: false,
                lock: None,
                last_access: 0,
                links: 0,
            },
        );
        self.touch(id);
        Ok(id)
    }

    /// Sets a file's permission mode (owner or admin only).
    pub fn chmod(&mut self, id: FileId, caller: OwnerId, mode: Mode) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if caller != OwnerId::ADMIN && caller != m.owner {
            return Err(KvError::PermissionDenied);
        }
        self.meta_mut(id)?.mode = mode;
        Ok(())
    }

    /// Removes a file, releasing its pages and any namespace links.
    pub fn remove(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        let meta = self.files.remove(&id.0).ok_or(KvError::NotFound)?;
        for p in &meta.pages {
            self.pool.release(*p);
        }
        self.credit(meta.owner, meta.pages.len());
        self.namespace.retain(|_, v| *v != id);
        Ok(())
    }

    // ---- namespace ---------------------------------------------------------

    /// Links a path to a file so other processes can [`KvStore::open`] it.
    pub fn link(&mut self, id: FileId, path: &str, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        if self.namespace.contains_key(path) {
            return Err(KvError::AlreadyExists);
        }
        self.namespace.insert(path.to_string(), id);
        self.meta_mut(id)?.links += 1;
        Ok(())
    }

    /// Removes a path (the file itself survives).
    pub fn unlink(&mut self, path: &str, caller: OwnerId) -> Result<(), KvError> {
        let id = *self.namespace.get(path).ok_or(KvError::NotFound)?;
        self.check_write(id, caller)?;
        self.namespace.remove(path);
        self.meta_mut(id)?.links -= 1;
        Ok(())
    }

    /// Resolves a path to a file ID, checking read permission.
    pub fn open(&mut self, path: &str, caller: OwnerId) -> Result<FileId, KvError> {
        let id = *self.namespace.get(path).ok_or(KvError::NotFound)?;
        self.check_read(id, caller)?;
        self.touch(id);
        Ok(id)
    }

    /// Resolves a path without permission checks or access stamping.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.namespace.get(path).copied()
    }

    // ---- locks -------------------------------------------------------------

    /// Takes the exclusive write lock (idempotent for the holder).
    pub fn lock(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_read(id, caller)?;
        let m = self.meta_mut(id)?;
        match m.lock {
            None => {
                m.lock = Some(caller);
                Ok(())
            }
            Some(holder) if holder == caller => Ok(()),
            Some(_) => Err(KvError::Locked),
        }
    }

    /// Releases the exclusive write lock.
    pub fn unlock(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta_mut(id)?;
        match m.lock {
            Some(holder) if holder == caller => {
                m.lock = None;
                Ok(())
            }
            Some(_) => Err(KvError::NotLockHolder),
            None => Err(KvError::NotLockHolder),
        }
    }

    // ---- content -----------------------------------------------------------

    /// Entry count.
    pub fn len(&self, id: FileId) -> Result<usize, KvError> {
        Ok(self.meta(id)?.len)
    }

    /// Returns `true` if the file has no entries.
    pub fn is_empty(&self, id: FileId) -> Result<bool, KvError> {
        Ok(self.meta(id)?.len == 0)
    }

    /// Fingerprint of the last entry (the context `pred` continues from).
    pub fn tail_fingerprint(&self, id: FileId) -> Result<Option<CtxFingerprint>, KvError> {
        let m = self.meta(id)?;
        Ok(m.pages.last().and_then(|&p| {
            self.pool.page(p).entries.last().map(|e| e.fingerprint)
        }))
    }

    /// Position following the last entry (0 for an empty file).
    pub fn next_position(&self, id: FileId) -> Result<u32, KvError> {
        let m = self.meta(id)?;
        Ok(m
            .pages
            .last()
            .and_then(|&p| self.pool.page(p).entries.last())
            .map_or(0, |e| e.position + 1))
    }

    /// Reads `count` entries starting at entry index `start`.
    pub fn read(
        &mut self,
        id: FileId,
        caller: OwnerId,
        start: usize,
        count: usize,
    ) -> Result<Vec<KvEntry>, KvError> {
        self.check_read(id, caller)?;
        let m = self.meta(id)?;
        if start + count > m.len {
            return Err(KvError::BadRange);
        }
        let mut out = Vec::with_capacity(count);
        let pt = self.pool.page_tokens();
        let mut idx = start;
        while out.len() < count {
            let page = m.pages[idx / pt];
            let within = idx % pt;
            let entries = &self.pool.page(page).entries;
            let take = (count - out.len()).min(entries.len() - within);
            out.extend_from_slice(&entries[within..within + take]);
            idx += take;
        }
        self.touch(id);
        Ok(out)
    }

    /// Reads the whole file (no permission check; kernel/executor internal).
    pub fn read_all_unchecked(&self, id: FileId) -> Result<Vec<KvEntry>, KvError> {
        let m = self.meta(id)?;
        let mut out = Vec::with_capacity(m.len);
        for &p in &m.pages {
            out.extend_from_slice(&self.pool.page(p).entries);
        }
        Ok(out)
    }

    /// Returns `true` if appending `n` entries would fit in the GPU tier
    /// (capacity only; quota is still checked by [`KvStore::append`]).
    /// Executors use this to fail fast before computing model outputs.
    pub fn can_append(&self, id: FileId, n: usize) -> Result<bool, KvError> {
        let pt = self.pool.page_tokens();
        let m = self.meta(id)?;
        let (tail_free, tail_shared) = match m.pages.last() {
            Some(&p) => {
                let page = self.pool.page(p);
                (pt - page.entries.len(), page.refcount > 1)
            }
            None => (0, false),
        };
        let cow = usize::from(n > 0 && tail_free > 0 && tail_shared);
        let new_pages = n.saturating_sub(tail_free).div_ceil(pt);
        Ok(self.pool.gpu_used() + new_pages + cow <= self.pool.gpu_capacity())
    }

    /// Appends entries, copy-on-writing a shared tail page if needed.
    ///
    /// Allocation needs are checked up front, so a failed append leaves the
    /// file unchanged. New pages are allocated in the GPU tier; the file's
    /// existing tail must be GPU-resident.
    pub fn append(
        &mut self,
        id: FileId,
        caller: OwnerId,
        entries: &[KvEntry],
    ) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        if entries.is_empty() {
            return Ok(());
        }
        let pt = self.pool.page_tokens();
        let (tail_free, tail_shared, tail_tier) = {
            let m = self.meta(id)?;
            match m.pages.last() {
                Some(&p) => {
                    let page = self.pool.page(p);
                    (
                        pt - page.entries.len(),
                        page.refcount > 1,
                        Some(page.tier),
                    )
                }
                None => (0, false, None),
            }
        };
        if let Some(t) = tail_tier {
            if t != Tier::Gpu && tail_free > 0 {
                return Err(KvError::NotResident);
            }
        }
        let writes_into_tail = tail_free > 0;
        let cow_pages = usize::from(writes_into_tail && tail_shared);
        let overflow = entries.len().saturating_sub(tail_free);
        let new_pages = overflow.div_ceil(pt);
        // Upfront capacity and quota checks (COW replaces a page in this
        // file, so quota only grows by `new_pages`).
        if self.pool.gpu_used() + new_pages + cow_pages > self.pool.gpu_capacity() {
            return Err(KvError::NoGpuMemory);
        }
        let owner = self.meta(id)?.owner;
        self.charge(owner, new_pages)?;

        // COW the tail if it is shared and we are about to write into it.
        // (`tail_free > 0` implies the file has a tail page, and the
        // capacity check above reserved the COW page — a `BadRange` or
        // `NoGpuMemory` here would mean the accounting itself is broken,
        // so it surfaces as a typed error, not a panic.)
        if cow_pages == 1 {
            let old = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
            let copy = self.pool.alloc(Tier::Gpu)?;
            self.pool.copy_entries_into(old, copy);
            self.pool.release(old);
            *self
                .meta_mut(id)?
                .pages
                .last_mut()
                .ok_or(KvError::BadRange)? = copy;
            self.counters.cow_copies.inc();
        }

        let mut remaining = entries;
        if writes_into_tail {
            let take = remaining.len().min(tail_free);
            let tail = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
            self.pool
                .page_mut(tail)
                .entries
                .extend_from_slice(&remaining[..take]);
            self.pool.mark_dirty(tail);
            remaining = &remaining[take..];
        }
        while !remaining.is_empty() {
            let p = self.pool.alloc(Tier::Gpu)?;
            let take = remaining.len().min(pt);
            self.pool
                .page_mut(p)
                .entries
                .extend_from_slice(&remaining[..take]);
            self.meta_mut(id)?.pages.push(p);
            remaining = &remaining[take..];
        }
        self.meta_mut(id)?.len += entries.len();
        self.touch(id);
        Ok(())
    }

    /// Truncates the file to `new_len` entries, releasing now-empty pages.
    ///
    /// A shared boundary page is copy-on-written so the other references keep
    /// their full contents.
    pub fn truncate(&mut self, id: FileId, caller: OwnerId, new_len: usize) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        let m = self.meta(id)?;
        if new_len > m.len {
            return Err(KvError::BadRange);
        }
        if new_len == m.len {
            return Ok(());
        }
        let pt = self.pool.page_tokens();
        let keep_pages = new_len.div_ceil(pt);
        let owner = m.owner;
        let drop_pages: Vec<_> = self.meta(id)?.pages[keep_pages..].to_vec();
        let dropped = drop_pages.len();
        for p in drop_pages {
            self.pool.release(p);
        }
        self.meta_mut(id)?.pages.truncate(keep_pages);
        self.credit(owner, dropped);
        // Trim within the boundary page.
        let within = new_len % pt;
        if within != 0 || new_len == 0 {
            if let Some(&last) = self.meta(id)?.pages.last() {
                if self.pool.page(last).refcount > 1 {
                    let copy = self.pool.alloc(Tier::Gpu)?;
                    self.pool.copy_entries_into(last, copy);
                    self.pool.release(last);
                    *self.meta_mut(id)?.pages.last_mut().ok_or(KvError::BadRange)? = copy;
                    self.counters.cow_copies.inc();
                }
                let last = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
                self.pool.page_mut(last).entries.truncate(within);
                self.pool.mark_dirty(last);
            }
        }
        self.meta_mut(id)?.len = new_len;
        self.touch(id);
        Ok(())
    }

    // ---- fork / extract / merge ---------------------------------------------

    /// Clones a file by sharing all of its pages (copy-on-write).
    ///
    /// The clone is owned by `caller` and starts private and unpinned. This
    /// is the `kv_fork` of the paper's Figure 2: parallel generation threads
    /// fork a shared prefix "without duplicating the actual tensors".
    pub fn fork(&mut self, id: FileId, caller: OwnerId) -> Result<FileId, KvError> {
        self.check_read(id, caller)?;
        let (pages, len) = {
            let m = self.meta(id)?;
            (m.pages.clone(), m.len)
        };
        self.charge(caller, pages.len())?;
        for &p in &pages {
            self.pool.retain(p);
        }
        let new = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            new.0,
            FileMeta {
                pages,
                len,
                owner: caller,
                mode: Mode::PRIVATE,
                pinned: false,
                lock: None,
                last_access: 0,
                links: 0,
            },
        );
        self.touch(new);
        Ok(new)
    }

    /// Builds a new file from entry ranges of an existing file.
    ///
    /// Entries are copied (not shared): an extracted file models *pruned*
    /// context (§4.2's runtime context pruning), whose entries keep the
    /// fingerprints computed under the original context — the approximate-
    /// reuse semantics of techniques like attention sinks.
    pub fn extract(
        &mut self,
        id: FileId,
        caller: OwnerId,
        ranges: &[core::ops::Range<usize>],
    ) -> Result<FileId, KvError> {
        self.check_read(id, caller)?;
        let len = self.meta(id)?.len;
        let mut picked = Vec::new();
        for r in ranges {
            if r.start > r.end || r.end > len {
                return Err(KvError::BadRange);
            }
            let chunk = self.read(id, caller, r.start, r.end - r.start)?;
            picked.extend(chunk);
        }
        if picked.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let new = self.create(caller)?;
        match self.append(new, caller, &picked) {
            Ok(()) => {
                self.counters.copied_entries.add(picked.len() as u64);
                Ok(new)
            }
            Err(e) => {
                let _ = self.remove(new, caller);
                Err(e)
            }
        }
    }

    /// Concatenates several files into a new one (entries copied).
    pub fn merge(&mut self, ids: &[FileId], caller: OwnerId) -> Result<FileId, KvError> {
        if ids.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let mut all = Vec::new();
        for &id in ids {
            self.check_read(id, caller)?;
            all.extend(self.read_all_unchecked(id)?);
        }
        if all.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let new = self.create(caller)?;
        match self.append(new, caller, &all) {
            Ok(()) => {
                self.counters.copied_entries.add(all.len() as u64);
                Ok(new)
            }
            Err(e) => {
                let _ = self.remove(new, caller);
                Err(e)
            }
        }
    }

    // ---- pinning and tiers ---------------------------------------------------

    /// Pins a file: it may not be swapped out or removed by non-owners.
    pub fn pin(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        self.meta_mut(id)?.pinned = true;
        Ok(())
    }

    /// Unpins a file.
    pub fn unpin(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        self.meta_mut(id)?.pinned = false;
        Ok(())
    }

    /// Where the file's pages live.
    pub fn residency(&self, id: FileId) -> Result<Residency, KvError> {
        let m = self.meta(id)?;
        if m.pages.is_empty() {
            return Ok(Residency::Empty);
        }
        let (mut gpu, mut disk) = (0usize, 0usize);
        for &p in &m.pages {
            match self.pool.page(p).tier {
                Tier::Gpu => gpu += 1,
                Tier::Cpu => {}
                Tier::Disk => disk += 1,
            }
        }
        Ok(if gpu == m.pages.len() {
            Residency::Gpu
        } else if gpu > 0 {
            Residency::Mixed
        } else if disk == m.pages.len() {
            Residency::Disk
        } else {
            // No GPU pages; at least one DRAM page (any disk remainder is
            // still off-GPU, so the file is equally non-resident).
            Residency::Cpu
        })
    }

    /// Swaps all GPU pages out of HBM; returns the per-lane token counts
    /// (for PCIe/NVMe timing). Pages go to CPU DRAM first; under CPU
    /// pressure they spill one level further to the disk tier. Shared
    /// pages move too — swap is a whole-page property. Pages already off
    /// the GPU stay where they are.
    ///
    /// When the disk tier is disabled (zero capacity) a full DRAM surfaces
    /// as [`KvError::NoCpuMemory`], exactly as it did before the disk tier
    /// existed.
    pub fn swap_out(&mut self, id: FileId, caller: OwnerId) -> Result<SwapReport, KvError> {
        self.check_write(id, caller)?;
        if self.meta(id)?.pinned {
            return Err(KvError::Pinned);
        }
        // Split borrow: the page table is read-only while the pool migrates,
        // so the per-call `pages.clone()` this path used to do is unneeded.
        let (files, pool) = (&self.files, &mut self.pool);
        let m = files.get(&id.0).ok_or(KvError::NotFound)?;
        let mut report = SwapReport::default();
        for &p in &m.pages {
            if pool.page(p).tier != Tier::Gpu {
                continue;
            }
            match pool.migrate(p, Tier::Cpu) {
                Ok(n) => report.dram_tokens += n,
                Err(KvError::NoCpuMemory) => match pool.migrate(p, Tier::Disk) {
                    Ok(n) => report.disk_tokens += n,
                    Err(KvError::NoDiskMemory) => return Err(KvError::NoCpuMemory),
                    Err(e) => return Err(e),
                },
                Err(e) => return Err(e),
            }
        }
        self.counters.swapped_out_tokens.add(report.total() as u64);
        self.counters
            .disk_spilled_tokens
            .add(report.disk_tokens as u64);
        Ok(report)
    }

    /// Demotes every page of a file to the disk tier (cold persistence or
    /// DRAM reclaim). Unlike [`KvStore::swap_out`], pinned files are
    /// eligible: pinning protects a file from being *dropped* or chosen by
    /// eviction policies, not from an explicit demotion to durable storage
    /// — a demoted pinned file keeps all its pages and its pin.
    pub fn demote_to_disk(&mut self, id: FileId, caller: OwnerId) -> Result<SwapReport, KvError> {
        self.check_write(id, caller)?;
        let (files, pool) = (&self.files, &mut self.pool);
        let m = files.get(&id.0).ok_or(KvError::NotFound)?;
        let mut report = SwapReport::default();
        let mut left_gpu = 0usize;
        for &p in &m.pages {
            let from = pool.page(p).tier;
            if from == Tier::Disk {
                continue;
            }
            let n = pool.migrate(p, Tier::Disk)?;
            if from == Tier::Gpu {
                left_gpu += n;
            }
            report.disk_tokens += n;
        }
        self.counters.swapped_out_tokens.add(left_gpu as u64);
        self.counters
            .disk_spilled_tokens
            .add(report.disk_tokens as u64);
        Ok(report)
    }

    /// Swaps all pages back into the GPU tier; returns the per-lane token
    /// counts (disk pages cross the NVMe lane, DRAM pages cross PCIe).
    pub fn swap_in(&mut self, id: FileId, caller: OwnerId) -> Result<SwapReport, KvError> {
        self.check_write(id, caller)?;
        let (files, pool) = (&self.files, &mut self.pool);
        let m = files.get(&id.0).ok_or(KvError::NotFound)?;
        let mut report = SwapReport::default();
        for &p in &m.pages {
            let from = pool.page(p).tier;
            let n = pool.migrate(p, Tier::Gpu)?;
            match from {
                Tier::Disk => report.disk_tokens += n,
                Tier::Cpu | Tier::Gpu => report.dram_tokens += n,
            }
        }
        self.counters.swapped_in_tokens.add(report.total() as u64);
        self.counters
            .disk_loaded_tokens
            .add(report.disk_tokens as u64);
        self.touch(id);
        Ok(report)
    }

    /// Preemption eviction hook: swaps out the least-recently-used
    /// GPU-resident file to free pages, skipping pinned, locked and
    /// `exclude`d files (the scheduler excludes files of sequences still
    /// executing). Returns the victim and the per-lane token counts, or
    /// `None` when no file is evictable. Deterministic: ties on
    /// `last_access` break by file id.
    pub fn evict_lru(&mut self, exclude: &[FileId]) -> Option<(FileId, SwapReport)> {
        // Scan the file table directly instead of materialising a full
        // `list_files()` stat vector: this runs on the preemption hot path.
        // A file with any GPU page is exactly the old `Gpu | Mixed`
        // residency filter.
        let pool = &self.pool;
        let victim = self
            .files
            .iter()
            .filter(|&(id, m)| {
                !m.pinned
                    && m.lock.is_none()
                    && !exclude.contains(&FileId(*id))
                    && m.pages.iter().any(|&p| pool.page(p).tier == Tier::Gpu)
            })
            .min_by_key(|&(id, m)| (m.last_access, *id))
            .map(|(&id, _)| FileId(id))?;
        // The victim just passed the evictability filter, so `swap_out`
        // should succeed; if it does not, report "nothing evictable"
        // rather than panicking mid-preemption (lint rule k1).
        let moved = self.swap_out(victim, OwnerId::ADMIN).ok()?;
        Some((victim, moved))
    }

    /// Releases every lock held by `owner` (kernel cleanup when a process
    /// exits or crashes). Returns the number of locks released.
    pub fn release_locks(&mut self, owner: OwnerId) -> usize {
        let mut released = 0;
        for (id, m) in self.files.iter_mut() {
            if m.lock == Some(owner) {
                m.lock = None;
                released += 1;
                if let Some(d) = self.delta.as_mut() {
                    d.dirty_files.insert(*id);
                }
            }
        }
        released
    }

    // ---- persistence -----------------------------------------------------------

    /// Starts incremental change tracking for delta journalling. Call at
    /// the moment the journal's base snapshot is taken: from here on,
    /// [`KvStore::take_delta`] returns records that replay the store's
    /// changes on top of that snapshot. Idempotent-ish only in the sense
    /// that re-enabling resets tracking to "nothing changed since now".
    pub fn enable_delta_log(&mut self) {
        self.pool.enable_dirty_tracking();
        let mut d = DeltaLog::default();
        self.reset_delta_shadow(&mut d);
        self.delta = Some(d);
    }

    fn reset_delta_shadow(&self, d: &mut DeltaLog) {
        d.dirty_files.clear();
        d.shadow_files = self.files.keys().copied().collect();
        d.shadow_namespace = self
            .namespace
            .iter()
            .map(|(p, id)| (p.clone(), id.0))
            .collect();
        d.shadow_quotas = self
            .quotas
            .iter()
            .map(|(o, q)| (o.0, q.limit_pages.map(|l| l as u64)))
            .collect();
    }

    /// Drains the changes since the last drain (or since
    /// [`KvStore::enable_delta_log`]) as an ordered record batch that,
    /// appended to the journal, replays to the store's current state:
    /// dirty pages, dirty file metadata, then a structural diff against
    /// the shadow state — removes, unlinks, links, quota changes — and a
    /// trailing [`Record::PoolState`] so append-only histories restore
    /// with byte-identical allocator state. Returns an empty batch when
    /// nothing changed or tracking is disabled.
    pub fn take_delta(&mut self) -> Vec<Record> {
        let Some(mut d) = self.delta.take() else {
            return Vec::new();
        };
        let mut recs = Vec::new();
        for p in self.pool.take_dirty() {
            let page = self.pool.page(crate::page::PageId(p));
            recs.push(Record::PageWrite {
                page: p,
                tier: page.tier,
                entries: page.entries.clone(),
            });
        }
        for &id in &d.dirty_files {
            let Some(m) = self.files.get(&id) else {
                continue; // dirtied, then removed: the diff below covers it
            };
            recs.push(Record::FileMeta {
                id,
                owner: m.owner.0,
                len: m.len as u64,
                read_all: m.mode.read_all,
                write_all: m.mode.write_all,
                pinned: m.pinned,
                lock: m.lock.map(|o| o.0),
                last_access: m.last_access,
                pages: m.pages.iter().map(|p| p.0).collect(),
            });
        }
        // Structural diff. Removes come first (replay drops a removed
        // file's namespace entries itself), then unlinks of surviving
        // stale paths, then links — so a re-pointed path never collides.
        let mut removed = std::collections::BTreeSet::new();
        for &id in &d.shadow_files {
            if !self.files.contains_key(&id) {
                recs.push(Record::Remove { file: id });
                removed.insert(id);
            }
        }
        for (path, &old_id) in &d.shadow_namespace {
            let stale = self.namespace.get(path).is_none_or(|cur| cur.0 != old_id);
            if stale && !removed.contains(&old_id) {
                recs.push(Record::Unlink { path: path.clone() });
            }
        }
        for (path, id) in &self.namespace {
            if d.shadow_namespace.get(path) != Some(&id.0) {
                recs.push(Record::Link {
                    path: path.clone(),
                    id: id.0,
                });
            }
        }
        for (owner, q) in &self.quotas {
            let limit = q.limit_pages.map(|l| l as u64);
            if d.shadow_quotas.get(&owner.0).copied().unwrap_or(None) != limit {
                recs.push(Record::Quota {
                    owner: owner.0,
                    limit,
                });
            }
        }
        if !recs.is_empty() {
            recs.push(Record::PoolState {
                slots_len: self.pool.slots_len() as u32,
                free: self.pool.free_list().to_vec(),
            });
        }
        self.reset_delta_shadow(&mut d);
        self.delta = Some(d);
        recs
    }

    /// Bumps the `kvfs.compactions` counter (the kernel calls this when
    /// its journal handle compacts).
    pub fn note_compaction(&self) {
        self.counters.compactions.inc();
    }

    /// Points the `kvfs.journal_bytes` gauge at an externally-managed
    /// journal's size (delta journals grow between snapshots, so the
    /// snapshot-sized value set by [`KvStore::journal_bytes`] goes stale).
    pub fn set_journal_len_metric(&self, bytes: u64) {
        self.counters.journal_bytes.set(bytes as i64);
    }

    /// Serialises the whole store as a journal record sequence: every live
    /// page, every file's metadata, every namespace link, every quota
    /// limit, and the pool's exact slot geometry. Replaying the bytes with
    /// [`KvStore::restore_from_journal_bytes`] under the same config
    /// rebuilds a byte-identical store (its own `journal_bytes` matches).
    pub fn journal_bytes(&self) -> Vec<u8> {
        let mut w = JournalWriter::new(&JournalHeader {
            page_tokens: self.pool.page_tokens() as u64,
            bytes_per_token: self.bytes_per_token,
            next_file: self.next_file,
            access_clock: self.access_clock,
        });
        let mut pages = 0i64;
        for (pid, page) in self.pool.iter() {
            w.append(&Record::PageWrite {
                page: pid.0,
                tier: page.tier,
                entries: page.entries.clone(),
            });
            pages += 1;
        }
        for (&id, m) in &self.files {
            w.append(&Record::FileMeta {
                id,
                owner: m.owner.0,
                len: m.len as u64,
                read_all: m.mode.read_all,
                write_all: m.mode.write_all,
                pinned: m.pinned,
                lock: m.lock.map(|o| o.0),
                last_access: m.last_access,
                pages: m.pages.iter().map(|p| p.0).collect(),
            });
        }
        for (path, id) in &self.namespace {
            w.append(&Record::Link {
                path: path.clone(),
                id: id.0,
            });
        }
        let mut quotas = 0i64;
        for (&owner, q) in &self.quotas {
            if let Some(limit) = q.limit_pages {
                w.append(&Record::Quota {
                    owner: owner.0,
                    limit: Some(limit as u64),
                });
                quotas += 1;
            }
        }
        w.append(&Record::PoolState {
            slots_len: self.pool.slots_len() as u32,
            free: self.pool.free_list().to_vec(),
        });
        let bytes = w.finish();
        // Growth observability: gauge the size and per-tag frame mix of the
        // latest snapshot so unbounded journals show up as a number, not an
        // out-of-disk surprise.
        self.counters.journal_bytes.set(bytes.len() as i64);
        self.counters.journal_frames_page_write.set(pages);
        self.counters
            .journal_frames_file_meta
            .set(self.files.len() as i64);
        self.counters
            .journal_frames_link
            .set(self.namespace.len() as i64);
        self.counters.journal_frames_quota.set(quotas);
        self.counters.journal_frames_pool_state.set(1);
        bytes
    }

    /// Writes the journal snapshot to a file.
    pub fn snapshot_to_journal(&self, path: &std::path::Path) -> std::io::Result<()> {
        std::fs::write(path, self.journal_bytes())
    }

    /// Restores a store from a journal file. I/O errors surface as
    /// [`KvError::JournalTorn`] (an unreadable journal and a torn one get
    /// the same cold-start handling from callers).
    pub fn restore_from_journal(
        path: &std::path::Path,
        config: KvStoreConfig,
        registry: &MetricsRegistry,
    ) -> Result<(KvStore, RestoreReport), KvError> {
        let bytes = std::fs::read(path).map_err(|_| KvError::JournalTorn)?;
        KvStore::restore_from_journal_bytes(config, registry, &bytes)
    }

    /// Replays journal bytes into a fresh store.
    ///
    /// A torn tail (crash mid-append) is truncate-and-continue: the longest
    /// valid record prefix is replayed and the tear is reported as
    /// `RestoreReport::torn = Some(KvError::JournalTorn)`. Hard failures —
    /// an unusable header, mismatched geometry
    /// ([`KvError::JournalIncompatible`]), or a restoring config too small
    /// to hold the journal's pages — fail the whole restore with a typed
    /// error. Cumulative `kvfs.*` counters are process-lifetime metrics and
    /// start at zero in the restored store.
    pub fn restore_from_journal_bytes(
        config: KvStoreConfig,
        registry: &MetricsRegistry,
        bytes: &[u8],
    ) -> Result<(KvStore, RestoreReport), KvError> {
        let (header, records, tail_torn) = journal::read_journal(bytes)?;
        if header.page_tokens != config.page_tokens as u64
            || header.bytes_per_token != config.bytes_per_token
        {
            return Err(KvError::JournalIncompatible);
        }

        struct StagedFile {
            pages: Vec<u32>,
            len: usize,
            owner: OwnerId,
            mode: Mode,
            pinned: bool,
            lock: Option<OwnerId>,
            last_access: u64,
        }

        let pt = config.page_tokens;
        let mut staged_pages: BTreeMap<u32, (Tier, Vec<KvEntry>)> = BTreeMap::new();
        let mut staged_files: BTreeMap<u64, StagedFile> = BTreeMap::new();
        let mut namespace: BTreeMap<String, FileId> = BTreeMap::new();
        let mut limits: BTreeMap<OwnerId, Option<usize>> = BTreeMap::new();
        let mut pool_state: Option<(usize, Vec<u32>)> = None;
        let mut torn = tail_torn;

        // An inconsistent record body (a file referencing unwritten pages,
        // a truncate past the end, ...) is treated exactly like a torn
        // frame: keep what replayed cleanly, stop there.
        'replay: for rec in records {
            // Any page/file mutation invalidates an earlier PoolState
            // snapshot record — its free list no longer matches.
            match &rec {
                Record::Link { .. }
                | Record::Unlink { .. }
                | Record::Quota { .. }
                | Record::PoolState { .. }
                | Record::End => {}
                _ => pool_state = None,
            }
            match rec {
                Record::PageWrite {
                    page,
                    tier,
                    entries,
                } => {
                    if entries.len() > pt {
                        torn = true;
                        break 'replay;
                    }
                    staged_pages.insert(page, (tier, entries));
                }
                Record::FileMeta {
                    id,
                    owner,
                    len,
                    read_all,
                    write_all,
                    pinned,
                    lock,
                    last_access,
                    pages,
                } => {
                    let mut total = 0usize;
                    for p in &pages {
                        match staged_pages.get(p) {
                            Some((_, entries)) => total += entries.len(),
                            None => {
                                torn = true;
                                break 'replay;
                            }
                        }
                    }
                    if total != len as usize {
                        torn = true;
                        break 'replay;
                    }
                    staged_files.insert(
                        id,
                        StagedFile {
                            pages,
                            len: len as usize,
                            owner: OwnerId(owner),
                            mode: Mode {
                                read_all,
                                write_all,
                            },
                            pinned,
                            lock: lock.map(OwnerId),
                            last_access,
                        },
                    );
                }
                Record::Link { path, id } => {
                    if !staged_files.contains_key(&id) || namespace.contains_key(&path) {
                        torn = true;
                        break 'replay;
                    }
                    namespace.insert(path, FileId(id));
                }
                Record::Unlink { path } => {
                    if namespace.remove(&path).is_none() {
                        torn = true;
                        break 'replay;
                    }
                }
                Record::Remove { file } => {
                    if staged_files.remove(&file).is_none() {
                        torn = true;
                        break 'replay;
                    }
                    namespace.retain(|_, v| v.0 != file);
                }
                Record::Truncate { file, new_len } => {
                    let new_len = new_len as usize;
                    let (pages_now, len_now) = match staged_files.get(&file) {
                        Some(f) => (f.pages.clone(), f.len),
                        None => {
                            torn = true;
                            break 'replay;
                        }
                    };
                    if new_len > len_now {
                        torn = true;
                        break 'replay;
                    }
                    let keep = new_len.div_ceil(pt).min(pages_now.len());
                    let mut new_pages = pages_now[..keep].to_vec();
                    let within = new_len % pt;
                    if within != 0 {
                        if let Some(&last) = new_pages.last() {
                            // Copy-on-write a boundary page other staged
                            // files still reference in full.
                            let refs: usize = staged_files
                                .values()
                                .map(|f| f.pages.iter().filter(|&&p| p == last).count())
                                .sum();
                            let boundary = if refs > 1 {
                                let fresh =
                                    staged_pages.keys().next_back().map_or(0, |&m| m + 1);
                                match staged_pages.get(&last) {
                                    Some(src) => {
                                        let copy = src.clone();
                                        staged_pages.insert(fresh, copy);
                                    }
                                    None => {
                                        torn = true;
                                        break 'replay;
                                    }
                                }
                                if let Some(slot) = new_pages.last_mut() {
                                    *slot = fresh;
                                }
                                fresh
                            } else {
                                last
                            };
                            match staged_pages.get_mut(&boundary) {
                                Some((_, entries)) => entries.truncate(within),
                                None => {
                                    torn = true;
                                    break 'replay;
                                }
                            }
                        }
                    }
                    if let Some(f) = staged_files.get_mut(&file) {
                        f.pages = new_pages;
                        f.len = new_len;
                    }
                }
                Record::Quota { owner, limit } => {
                    limits.insert(OwnerId(owner), limit.map(|l| l as usize));
                }
                Record::PoolState { slots_len, free } => {
                    pool_state = Some((slots_len as usize, free));
                }
                // `read_journal` consumes the terminator; nothing to do.
                Record::End => {}
            }
        }

        // Reference counts from the final staged file set; pages no file
        // references any more (truncated or removed tails) are dropped.
        let mut refs: BTreeMap<u32, u32> = BTreeMap::new();
        for f in staged_files.values() {
            for &p in &f.pages {
                *refs.entry(p).or_insert(0) += 1;
            }
        }
        let dropped_pages = staged_pages.keys().any(|p| !refs.contains_key(p));

        let mut store = KvStore::with_registry(config, registry);
        let mut pages_restored = 0usize;
        let mut tokens_restored = 0usize;
        for (&pid, (tier, entries)) in &staged_pages {
            let Some(&rc) = refs.get(&pid) else { continue };
            store
                .pool
                .install(PageId(pid), *tier, entries.clone(), rc)?;
            pages_restored += 1;
            tokens_restored += entries.len();
        }

        let mut max_file = 0u64;
        let mut per_owner: BTreeMap<OwnerId, usize> = BTreeMap::new();
        for (&id, f) in &staged_files {
            max_file = max_file.max(id);
            *per_owner.entry(f.owner).or_insert(0) += f.pages.len();
        }
        for (id, f) in staged_files {
            store.files.insert(
                id,
                FileMeta {
                    pages: f.pages.iter().map(|&p| PageId(p)).collect(),
                    len: f.len,
                    owner: f.owner,
                    mode: f.mode,
                    pinned: f.pinned,
                    lock: f.lock,
                    last_access: f.last_access,
                    links: 0,
                },
            );
        }
        for (path, id) in namespace {
            if let Some(m) = store.files.get_mut(&id.0) {
                m.links += 1;
            }
            store.namespace.insert(path, id);
        }
        for (owner, used) in per_owner {
            store.quotas.entry(owner).or_default().used_pages = used;
        }
        for (owner, limit) in limits {
            store.quotas.entry(owner).or_default().limit_pages = limit;
        }
        store.next_file = header.next_file.max(max_file + 1);
        // Delta batches appended after the base snapshot carry access times
        // newer than the base header's clock; never let the clock run
        // behind a restored `last_access` or post-restore touches would
        // reuse timestamps and scramble LRU ordering.
        let max_access = store.files.values().map(|m| m.last_access).max().unwrap_or(0);
        store.access_clock = header.access_clock.max(max_access);

        // Adopt the recorded free-slot order only when it still exactly
        // describes the restored pool; otherwise rebuild canonically.
        let installed = pages_restored;
        let usable_state = pool_state.filter(|(slots_len, free)| {
            !dropped_pages
                && *slots_len >= store.pool.slots_len()
                && free.len() == slots_len - installed
                && free
                    .iter()
                    .all(|&f| (f as usize) < *slots_len && !refs.contains_key(&f))
        });
        match usable_state {
            Some((slots_len, free)) => store.pool.finish_restore(slots_len, Some(free)),
            None => store.pool.finish_restore(0, None),
        }

        // Belt and braces: a restored store must satisfy every invariant
        // `verify` checks; a failure here is a journal-layer bug and the
        // store cannot be trusted.
        store.verify().map_err(|_| KvError::JournalTorn)?;

        // Growth observability survives recovery: gauge the journal we
        // just replayed (size and frame mix) so post-restore registries
        // report journal state without waiting for the next snapshot.
        store.counters.journal_bytes.set(bytes.len() as i64);
        store
            .counters
            .journal_frames_page_write
            .set(pages_restored as i64);
        store
            .counters
            .journal_frames_file_meta
            .set(store.files.len() as i64);
        store
            .counters
            .journal_frames_link
            .set(store.namespace.len() as i64);
        store.counters.journal_frames_quota.set(
            store
                .quotas
                .values()
                .filter(|q| q.limit_pages.is_some())
                .count() as i64,
        );
        store.counters.journal_frames_pool_state.set(1);

        let report = RestoreReport {
            files: store.files.len(),
            pages: pages_restored,
            tokens: tokens_restored,
            links: store.namespace.len(),
            torn: torn.then_some(KvError::JournalTorn),
        };
        Ok((store, report))
    }

    // ---- introspection ---------------------------------------------------------

    /// Snapshot of one file.
    pub fn stat(&self, id: FileId) -> Result<FileStat, KvError> {
        let m = self.meta(id)?;
        Ok(FileStat {
            id,
            owner: m.owner,
            len: m.len,
            pages: m.pages.len(),
            pinned: m.pinned,
            locked_by: m.lock,
            residency: self.residency(id)?,
            last_access: m.last_access,
            links: m.links,
        })
    }

    /// Snapshots of all files, in file-ID order (deterministic).
    pub fn list_files(&self) -> Vec<FileStat> {
        // Every key in `files` has metadata by construction; `filter_map`
        // instead of unwrapping keeps introspection total (lint rule k1).
        self.files
            .keys()
            .filter_map(|&k| self.stat(FileId(k)).ok())
            .collect()
    }

    /// Checks internal invariants; returns a description of the first
    /// violation. Tests call this after every mutation sequence.
    pub fn verify(&self) -> Result<(), String> {
        // Refcounts must equal the number of file references.
        let mut refs: BTreeMap<crate::page::PageId, u32> = BTreeMap::new();
        for m in self.files.values() {
            for &p in &m.pages {
                *refs.entry(p).or_insert(0) += 1;
            }
        }
        let mut live = 0;
        for (pid, page) in self.pool.iter() {
            live += 1;
            let expected = refs.get(&pid).copied().unwrap_or(0);
            if page.refcount != expected {
                return Err(format!(
                    "page {pid:?}: refcount {} but {} file references",
                    page.refcount, expected
                ));
            }
            if page.refcount == 0 {
                return Err(format!("page {pid:?} is live with refcount 0"));
            }
        }
        if live != refs.len() {
            return Err(format!(
                "{live} live pages but {} referenced pages",
                refs.len()
            ));
        }
        // File lengths must match page contents.
        for (idf, m) in &self.files {
            let total: usize = m
                .pages
                .iter()
                .map(|&p| self.pool.page(p).entries.len())
                .sum();
            if total != m.len {
                return Err(format!(
                    "file {idf}: len {} but pages hold {total} entries",
                    m.len
                ));
            }
            // Only the last page may be partially filled.
            for (i, &p) in m.pages.iter().enumerate() {
                let n = self.pool.page(p).entries.len();
                if i + 1 < m.pages.len() && n != self.pool.page_tokens() {
                    return Err(format!("file {idf}: interior page {i} not full ({n})"));
                }
            }
        }
        // Quota accounting must match file ownership.
        let mut per_owner: BTreeMap<OwnerId, usize> = BTreeMap::new();
        for m in self.files.values() {
            *per_owner.entry(m.owner).or_insert(0) += m.pages.len();
        }
        for (&owner, q) in &self.quotas {
            let expected = per_owner.get(&owner).copied().unwrap_or(0);
            if q.used_pages != expected {
                return Err(format!(
                    "owner {owner:?}: quota used {} but owns {expected} pages",
                    q.used_pages
                ));
            }
        }
        for (&owner, &used) in &per_owner {
            if used > 0 && !self.quotas.contains_key(&owner) {
                return Err(format!("owner {owner:?} owns pages but has no quota record"));
            }
        }
        // Namespace must point at live files.
        for (path, id) in &self.namespace {
            if !self.files.contains_key(&id.0) {
                return Err(format!("path {path:?} points at dead file {id:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u64) -> CtxFingerprint {
        CtxFingerprint(x)
    }

    fn entries(range: core::ops::Range<u32>) -> Vec<KvEntry> {
        range.map(|i| KvEntry::new(i, i, fp(i as u64))).collect()
    }

    fn store() -> KvStore {
        KvStore::new(KvStoreConfig::for_tests())
    }

    const U1: OwnerId = OwnerId(1);
    const U2: OwnerId = OwnerId(2);

    #[test]
    fn create_append_read() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        assert_eq!(s.len(f).unwrap(), 10);
        let got = s.read(f, U1, 3, 4).unwrap();
        assert_eq!(got, entries(3..7));
        assert_eq!(s.tail_fingerprint(f).unwrap(), Some(fp(9)));
        assert_eq!(s.next_position(f).unwrap(), 10);
        s.verify().unwrap();
    }

    #[test]
    fn read_bad_range() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..5)).unwrap();
        assert_eq!(s.read(f, U1, 3, 4), Err(KvError::BadRange));
    }

    #[test]
    fn fork_shares_pages_cow_on_append() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap(); // exactly 2 pages of 4
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let pages_before = s.gpu_pages_used();
        let g = s.fork(f, U2).unwrap();
        assert_eq!(s.gpu_pages_used(), pages_before, "fork allocates nothing");
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..8));
        // Append to the fork: tail page is full, so no COW, just a new page.
        s.append(g, U2, &entries(8..9)).unwrap();
        assert_eq!(s.gpu_pages_used(), pages_before + 1);
        // The original is untouched.
        assert_eq!(s.len(f).unwrap(), 8);
        assert_eq!(s.len(g).unwrap(), 9);
        s.verify().unwrap();
    }

    #[test]
    fn cow_on_shared_partial_tail() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..6)).unwrap(); // page0 full, page1 half
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let g = s.fork(f, U2).unwrap();
        let before = s.gpu_pages_used();
        s.append(g, U2, &entries(6..7)).unwrap();
        // COW of the shared tail page: one extra page in the pool.
        assert_eq!(s.gpu_pages_used(), before + 1);
        assert_eq!(s.stats().cow_copies, 1);
        assert_eq!(s.read_all_unchecked(f).unwrap(), entries(0..6));
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..7));
        s.verify().unwrap();
    }

    #[test]
    fn remove_releases_shared_pages_correctly() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let g = s.fork(f, U2).unwrap();
        s.remove(f, U1).unwrap();
        // Pages survive via g.
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..8));
        assert_eq!(s.gpu_pages_used(), 2);
        s.remove(g, U2).unwrap();
        assert_eq!(s.gpu_pages_used(), 0);
        s.verify().unwrap();
    }

    #[test]
    fn append_out_of_memory_is_atomic() {
        let mut s = KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 2,
            cpu_pages: 0,
            disk_pages: 0,
            bytes_per_token: 1,
        });
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        assert_eq!(s.append(f, U1, &entries(4..12)), Err(KvError::NoGpuMemory));
        assert_eq!(s.len(f).unwrap(), 4, "failed append must not mutate");
        s.verify().unwrap();
    }

    #[test]
    fn quota_enforced_and_released() {
        let mut s = store();
        s.set_quota(U1, Some(2));
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap(); // 2 pages
        assert_eq!(s.append(f, U1, &entries(8..9)), Err(KvError::QuotaExceeded));
        assert_eq!(s.quota_used(U1), 2);
        s.remove(f, U1).unwrap();
        assert_eq!(s.quota_used(U1), 0);
        s.verify().unwrap();
    }

    #[test]
    fn fork_charges_the_forker() {
        let mut s = store();
        s.set_quota(U2, Some(1));
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        assert_eq!(s.fork(f, U2), Err(KvError::QuotaExceeded));
        s.set_quota(U2, Some(2));
        let g = s.fork(f, U2).unwrap();
        assert_eq!(s.quota_used(U2), 2);
        s.remove(g, U2).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn permissions() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        // Private by default.
        assert_eq!(s.read(f, U2, 0, 1), Err(KvError::PermissionDenied));
        assert_eq!(s.append(f, U2, &entries(4..5)), Err(KvError::PermissionDenied));
        // World-readable.
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        assert!(s.read(f, U2, 0, 1).is_ok());
        assert_eq!(s.append(f, U2, &entries(4..5)), Err(KvError::PermissionDenied));
        // Admin bypasses everything.
        assert!(s.read(f, OwnerId::ADMIN, 0, 1).is_ok());
        assert!(s.append(f, OwnerId::ADMIN, &entries(4..5)).is_ok());
        // Only owner/admin can chmod.
        assert_eq!(s.chmod(f, U2, Mode::PRIVATE), Err(KvError::PermissionDenied));
        s.verify().unwrap();
    }

    #[test]
    fn locks_exclude_other_writers() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.chmod(f, U1, Mode { read_all: true, write_all: true }).unwrap();
        s.lock(f, U2).unwrap();
        assert_eq!(s.append(f, U1, &entries(0..1)), Err(KvError::Locked));
        assert!(s.append(f, U2, &entries(0..1)).is_ok());
        assert_eq!(s.unlock(f, U1), Err(KvError::NotLockHolder));
        s.unlock(f, U2).unwrap();
        assert!(s.append(f, U1, &entries(1..2)).is_ok());
        assert_eq!(s.unlock(f, U1), Err(KvError::NotLockHolder));
        // Re-lock is idempotent for the holder.
        s.lock(f, U1).unwrap();
        s.lock(f, U1).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn namespace_link_open_unlink() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        s.link(f, "sys/prompt.kv", U1).unwrap();
        assert_eq!(s.link(f, "sys/prompt.kv", U1), Err(KvError::AlreadyExists));
        assert_eq!(s.open("sys/prompt.kv", U2).unwrap(), f);
        assert_eq!(s.open("missing", U2), Err(KvError::NotFound));
        // U2 cannot unlink a file it cannot write.
        assert_eq!(s.unlink("sys/prompt.kv", U2), Err(KvError::PermissionDenied));
        s.unlink("sys/prompt.kv", U1).unwrap();
        assert_eq!(s.lookup("sys/prompt.kv"), None);
        s.verify().unwrap();
    }

    #[test]
    fn remove_clears_namespace() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.link(f, "a", U1).unwrap();
        s.link(f, "b", U1).unwrap();
        s.remove(f, U1).unwrap();
        assert_eq!(s.lookup("a"), None);
        assert_eq!(s.lookup("b"), None);
        s.verify().unwrap();
    }

    #[test]
    fn extract_copies_ranges() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        let e = s.extract(f, U1, &[0..2, 6..9]).unwrap();
        let got = s.read_all_unchecked(e).unwrap();
        let mut want = entries(0..2);
        want.extend(entries(6..9));
        assert_eq!(got, want);
        // Positions are preserved (discontiguous layout).
        assert_eq!(got[2].position, 6);
        assert_eq!(s.extract(f, U1, &[4..20]), Err(KvError::BadRange));
        assert_eq!(s.extract(f, U1, &[]), Err(KvError::EmptyInput));
        s.verify().unwrap();
    }

    #[test]
    fn merge_concatenates() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        s.append(a, U1, &entries(0..3)).unwrap();
        s.append(b, U1, &entries(10..13)).unwrap();
        let m = s.merge(&[a, b], U1).unwrap();
        let got = s.read_all_unchecked(m).unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(got[3].token, 10);
        assert_eq!(s.merge(&[], U1), Err(KvError::EmptyInput));
        s.verify().unwrap();
    }

    #[test]
    fn truncate_releases_pages_and_cows_shared_boundary() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap(); // 3 pages (4+4+2)
        let g = s.fork(f, U1).unwrap();
        s.truncate(f, U1, 3).unwrap(); // boundary inside shared page 0
        assert_eq!(s.len(f).unwrap(), 3);
        assert_eq!(s.read_all_unchecked(f).unwrap(), entries(0..3));
        // g still intact.
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..10));
        s.truncate(f, U1, 0).unwrap();
        assert_eq!(s.len(f).unwrap(), 0);
        assert_eq!(s.truncate(g, U1, 11), Err(KvError::BadRange));
        s.verify().unwrap();
    }

    #[test]
    fn swap_out_and_in_move_tokens() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        let out = s.swap_out(f, U1).unwrap();
        assert_eq!(out.total(), 10);
        assert_eq!(out.disk_tokens, 0, "DRAM had room; nothing spills");
        assert_eq!(s.residency(f).unwrap(), Residency::Cpu);
        assert_eq!(s.gpu_pages_used(), 0);
        assert_eq!(s.cpu_pages_used(), 3);
        let back = s.swap_in(f, U1).unwrap();
        assert_eq!(back.total(), 10);
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        assert_eq!(s.stats().swapped_out_tokens, 10);
        assert_eq!(s.stats().swapped_in_tokens, 10);
        s.verify().unwrap();
    }

    #[test]
    fn pinned_files_refuse_swap_out() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        s.pin(f, U1).unwrap();
        assert_eq!(s.swap_out(f, U1), Err(KvError::Pinned));
        s.unpin(f, U1).unwrap();
        assert!(s.swap_out(f, U1).is_ok());
        s.verify().unwrap();
    }

    #[test]
    fn append_to_swapped_file_requires_residency() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..6)).unwrap(); // partial tail
        s.swap_out(f, U1).unwrap();
        assert_eq!(s.append(f, U1, &entries(6..7)), Err(KvError::NotResident));
        s.swap_in(f, U1).unwrap();
        assert!(s.append(f, U1, &entries(6..7)).is_ok());
        s.verify().unwrap();
    }

    #[test]
    fn stat_and_list_files() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..5)).unwrap();
        s.pin(f, U1).unwrap();
        s.link(f, "x", U1).unwrap();
        let st = s.stat(f).unwrap();
        assert_eq!(st.len, 5);
        assert_eq!(st.pages, 2);
        assert!(st.pinned);
        assert_eq!(st.links, 1);
        assert_eq!(st.owner, U1);
        let g = s.create(U2).unwrap();
        let list = s.list_files();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].id, f);
        assert_eq!(list[1].id, g);
    }

    #[test]
    fn last_access_ordering_supports_lru() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        s.append(a, U1, &entries(0..1)).unwrap();
        s.append(b, U1, &entries(0..1)).unwrap();
        // Touch a after b.
        let _ = s.read(a, U1, 0, 1).unwrap();
        let sa = s.stat(a).unwrap().last_access;
        let sb = s.stat(b).unwrap().last_access;
        assert!(sa > sb, "a was accessed more recently");
    }

    #[test]
    fn evict_lru_picks_least_recent_and_respects_filters() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        let c = s.create(U2).unwrap();
        s.append(a, U1, &entries(0..4)).unwrap();
        s.append(b, U1, &entries(0..4)).unwrap();
        s.append(c, U2, &entries(0..4)).unwrap();
        // Touch a so b becomes the LRU file.
        let _ = s.read(a, U1, 0, 1).unwrap();
        let (victim, moved) = s.evict_lru(&[]).unwrap();
        assert_eq!(victim, b);
        assert_eq!(moved.total(), 4);
        assert_eq!(s.residency(b).unwrap(), Residency::Cpu);
        // Already-swapped files are no longer candidates; with c excluded
        // and b on CPU, the only remaining candidate is a.
        let (victim, _) = s.evict_lru(&[c]).unwrap();
        assert_eq!(victim, a);
        s.verify().unwrap();
    }

    #[test]
    fn evict_lru_skips_pinned_and_locked() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U2).unwrap();
        s.append(a, U1, &entries(0..2)).unwrap();
        s.append(b, U2, &entries(0..2)).unwrap();
        s.pin(a, U1).unwrap();
        s.lock(b, U2).unwrap();
        assert_eq!(s.evict_lru(&[]), None, "pinned and locked are immune");
        s.unlock(b, U2).unwrap();
        assert_eq!(s.evict_lru(&[]).unwrap().0, b);
        assert_eq!(s.evict_lru(&[]), None, "nothing left on the GPU");
        s.verify().unwrap();
    }

    #[test]
    fn evict_lru_on_empty_store_is_none() {
        let mut s = store();
        assert_eq!(s.evict_lru(&[]), None, "no files at all");
        let f = s.create(U1).unwrap();
        assert_eq!(s.evict_lru(&[]), None, "empty file is not GPU-resident");
        s.remove(f, U1).unwrap();
        assert_eq!(s.evict_lru(&[]), None);
    }

    #[test]
    fn list_files_total_after_removal() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U2).unwrap();
        s.remove(a, U1).unwrap();
        let listed: Vec<FileId> = s.list_files().iter().map(|st| st.id).collect();
        assert_eq!(listed, vec![b], "stat never panics on a stale id");
    }

    #[test]
    fn swap_out_spills_to_disk_under_cpu_pressure() {
        let mut s = KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 4,
            cpu_pages: 1,
            disk_pages: 4,
            bytes_per_token: 1,
        });
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..12)).unwrap(); // 3 pages
        let out = s.swap_out(f, U1).unwrap();
        assert_eq!(out.dram_tokens, 4, "one page fits in DRAM");
        assert_eq!(out.disk_tokens, 8, "the rest spills to disk");
        assert_eq!(s.cpu_pages_used(), 1);
        assert_eq!(s.disk_pages_used(), 2);
        assert_eq!(s.residency(f).unwrap(), Residency::Cpu);
        assert_eq!(s.stats().disk_spilled_tokens, 8);
        // Swap back in: disk pages cross the NVMe lane.
        let back = s.swap_in(f, U1).unwrap();
        assert_eq!(back.dram_tokens, 4);
        assert_eq!(back.disk_tokens, 8);
        assert_eq!(s.stats().disk_loaded_tokens, 8);
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        s.verify().unwrap();
    }

    #[test]
    fn swap_out_without_disk_tier_matches_old_error() {
        let mut s = KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 4,
            cpu_pages: 1,
            disk_pages: 0,
            bytes_per_token: 1,
        });
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..12)).unwrap();
        assert_eq!(s.swap_out(f, U1), Err(KvError::NoCpuMemory));
        s.verify().unwrap();
    }

    #[test]
    fn demote_to_disk_keeps_pinned_files_and_their_pin() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap();
        s.pin(f, U1).unwrap();
        // Pinned files refuse eviction-style swap-out but accept an
        // explicit demotion to durable storage.
        assert_eq!(s.swap_out(f, U1), Err(KvError::Pinned));
        let moved = s.demote_to_disk(f, U1).unwrap();
        assert_eq!(moved.disk_tokens, 8);
        assert_eq!(s.residency(f).unwrap(), Residency::Disk);
        assert!(s.stat(f).unwrap().pinned, "demotion never drops the pin");
        assert_eq!(s.len(f).unwrap(), 8, "demotion never drops pages");
        let back = s.swap_in(f, U1).unwrap();
        assert_eq!(back.disk_tokens, 8);
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        s.verify().unwrap();
    }

    #[test]
    fn disk_resident_files_are_not_evict_candidates() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        s.demote_to_disk(f, U1).unwrap();
        assert_eq!(s.evict_lru(&[]), None, "disk files free no GPU pages");
    }

    #[test]
    fn from_bytes_floors_nonzero_budgets_to_one_page() {
        // A budget smaller than one page (4 tokens × 2 bytes = 8 bytes per
        // page) used to truncate to a zero-page tier.
        let c = KvStoreConfig::from_bytes(7, 100, 3, 2, 4);
        assert_eq!(c.gpu_pages, 1, "nonzero budget floors to one page");
        assert_eq!(c.cpu_pages, 12);
        assert_eq!(c.disk_pages, 1);
        // Zero stays zero: the tier is disabled, not floored.
        let off = KvStoreConfig::from_bytes(64, 0, 0, 2, 4);
        assert_eq!(off.cpu_pages, 0);
        assert_eq!(off.disk_pages, 0);
    }

    #[test]
    fn journal_round_trip_restores_byte_identical_store() {
        let mut s = store();
        s.set_quota(U1, Some(32));
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        s.pin(f, U1).unwrap();
        s.link(f, "rag/doc.kv", U1).unwrap();
        let g = s.fork(f, U2).unwrap(); // CoW sharing survives the journal
        s.append(g, U2, &entries(10..13)).unwrap();
        let h = s.create(U2).unwrap();
        s.append(h, U2, &entries(0..5)).unwrap();
        s.demote_to_disk(h, U2).unwrap();
        s.lock(g, U2).unwrap();
        let bytes = s.journal_bytes();
        let (r, report) =
            KvStore::restore_from_journal_bytes(KvStoreConfig::for_tests(), &MetricsRegistry::new(), &bytes)
                .unwrap();
        assert_eq!(report.files, 3);
        assert_eq!(report.links, 1);
        assert_eq!(report.torn, None);
        r.verify().unwrap();
        assert_eq!(r.journal_bytes(), bytes, "restore is byte-identical");
        assert_eq!(r.read_all_unchecked(f).unwrap(), entries(0..10));
        assert_eq!(r.lookup("rag/doc.kv"), Some(f));
        assert!(r.stat(f).unwrap().pinned);
        assert_eq!(r.stat(g).unwrap().locked_by, Some(U2));
        assert_eq!(r.residency(h).unwrap(), Residency::Disk);
        assert_eq!(
            r.gpu_pages_used(),
            s.gpu_pages_used(),
            "CoW sharing restored, not deep-copied"
        );
        // Fresh allocation continues where the snapshot left off.
        let mut r = r;
        let next = r.create(U1).unwrap();
        assert!(next.0 > h.0);
        r.verify().unwrap();
    }

    #[test]
    fn journal_replays_incremental_mutation_records() {
        // Snapshot a store, then append incremental records by hand and
        // check replay applies them with store semantics.
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        let g = s.fork(f, U1).unwrap();
        s.link(f, "a", U1).unwrap();
        let bytes = s.journal_bytes();
        // Rebuild the record stream without the End terminator, then tack
        // on a truncate (CoW boundary) and an unlink.
        let (header, mut records, torn) = crate::journal::read_journal(&bytes).unwrap();
        assert!(!torn);
        records.push(Record::Truncate { file: g.0, new_len: 5 });
        records.push(Record::Unlink { path: "a".to_string() });
        let mut w = JournalWriter::new(&header);
        for r in &records {
            w.append(r);
        }
        let (r, report) = KvStore::restore_from_journal_bytes(
            KvStoreConfig::for_tests(),
            &MetricsRegistry::new(),
            &w.finish(),
        )
        .unwrap();
        assert_eq!(report.torn, None);
        r.verify().unwrap();
        assert_eq!(r.len(g).unwrap(), 5);
        assert_eq!(r.read_all_unchecked(g).unwrap(), entries(0..5));
        assert_eq!(r.read_all_unchecked(f).unwrap(), entries(0..10), "CoW protected");
        assert_eq!(r.lookup("a"), None);
        assert_eq!(r.stat(f).unwrap().links, 0);
    }

    #[test]
    fn torn_journal_restores_valid_prefix() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        s.link(f, "keep", U1).unwrap();
        let bytes = s.journal_bytes();
        // Tear the tail mid-record: everything before the cut that parses
        // cleanly must be restored, and the tear must be typed.
        let cut = bytes.len() - 7;
        let (r, report) = KvStore::restore_from_journal_bytes(
            KvStoreConfig::for_tests(),
            &MetricsRegistry::new(),
            &bytes[..cut],
        )
        .unwrap();
        assert_eq!(report.torn, Some(KvError::JournalTorn));
        r.verify().unwrap();
        assert_eq!(r.read_all_unchecked(f).unwrap(), entries(0..10));
    }

    #[test]
    fn journal_geometry_mismatch_is_incompatible() {
        let s = store();
        let bytes = s.journal_bytes();
        let mut other = KvStoreConfig::for_tests();
        other.page_tokens = 8;
        assert_eq!(
            KvStore::restore_from_journal_bytes(other, &MetricsRegistry::new(), &bytes)
                .err(),
            Some(KvError::JournalIncompatible)
        );
    }

    #[test]
    fn empty_file_edge_cases() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        assert!(s.is_empty(f).unwrap());
        assert_eq!(s.tail_fingerprint(f).unwrap(), None);
        assert_eq!(s.next_position(f).unwrap(), 0);
        assert_eq!(s.residency(f).unwrap(), Residency::Empty);
        assert_eq!(s.read(f, U1, 0, 0).unwrap(), vec![]);
        s.append(f, U1, &[]).unwrap();
        assert!(s.is_empty(f).unwrap());
        s.verify().unwrap();
    }
}
