//! The KV file store: namespace, access control, quotas, and the
//! fork/extract/merge operations of §4.2.

use std::collections::BTreeMap;

use symphony_model::CtxFingerprint;
use symphony_telemetry::{Counter, MetricsRegistry};

use crate::error::KvError;
use crate::page::{KvEntry, PagePool, Tier, PAGE_TOKENS_DEFAULT};

/// A tenant identity (a Symphony process, a baseline engine, or "the admin").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct OwnerId(pub u64);

impl OwnerId {
    /// The administrative owner: passes every permission check.
    pub const ADMIN: OwnerId = OwnerId(0);
}

/// A KV file identifier.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct FileId(pub u64);

/// Non-owner permission bits ("system prompts might be readable by all LIPs
/// but writable only by the admin", §4.2). The owner always has full access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Mode {
    /// Any owner may read.
    pub read_all: bool,
    /// Any owner may write (append/truncate/remove/swap/pin).
    pub write_all: bool,
}

impl Mode {
    /// Owner-private file.
    pub const PRIVATE: Mode = Mode {
        read_all: false,
        write_all: false,
    };

    /// World-readable, owner-writable — the shared-prefix publishing mode.
    pub const SHARED_READ: Mode = Mode {
        read_all: true,
        write_all: false,
    };
}

/// Where a file's pages currently live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Residency {
    /// No pages (empty file).
    Empty,
    /// All pages in GPU HBM; `pred` may use the file.
    Gpu,
    /// All pages swapped to CPU DRAM.
    Cpu,
    /// Pages split across tiers (mid-swap).
    Mixed,
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct KvStoreConfig {
    /// Tokens per page.
    pub page_tokens: usize,
    /// GPU-tier capacity in pages.
    pub gpu_pages: usize,
    /// CPU-tier capacity in pages.
    pub cpu_pages: usize,
    /// KV bytes per token (for byte-denominated statistics).
    pub bytes_per_token: u64,
}

impl KvStoreConfig {
    /// A small configuration for unit tests.
    pub fn for_tests() -> Self {
        KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 64,
            cpu_pages: 64,
            bytes_per_token: 1024,
        }
    }

    /// Sizes the pools from byte budgets and a model's per-token KV size.
    pub fn from_bytes(
        gpu_kv_bytes: u64,
        cpu_kv_bytes: u64,
        bytes_per_token: u64,
        page_tokens: usize,
    ) -> Self {
        assert!(bytes_per_token > 0 && page_tokens > 0);
        let page_bytes = bytes_per_token * page_tokens as u64;
        KvStoreConfig {
            page_tokens,
            gpu_pages: (gpu_kv_bytes / page_bytes) as usize,
            cpu_pages: (cpu_kv_bytes / page_bytes) as usize,
            bytes_per_token,
        }
    }
}

impl Default for KvStoreConfig {
    fn default() -> Self {
        KvStoreConfig {
            page_tokens: PAGE_TOKENS_DEFAULT,
            gpu_pages: 4096,
            cpu_pages: 16_384,
            bytes_per_token: 819_200,
        }
    }
}

/// Public snapshot of one file's metadata.
#[derive(Debug, Clone)]
pub struct FileStat {
    /// File ID.
    pub id: FileId,
    /// Owning tenant.
    pub owner: OwnerId,
    /// Entry (token) count.
    pub len: usize,
    /// Page count.
    pub pages: usize,
    /// Whether the file is pinned against eviction/swap.
    pub pinned: bool,
    /// Holder of the exclusive write lock, if any.
    pub locked_by: Option<OwnerId>,
    /// Tier placement.
    pub residency: Residency,
    /// Logical last-access stamp (monotone counter, for LRU policies).
    pub last_access: u64,
    /// Paths linked to this file.
    pub links: usize,
}

#[derive(Debug)]
struct FileMeta {
    pages: Vec<crate::page::PageId>,
    len: usize,
    owner: OwnerId,
    mode: Mode,
    pinned: bool,
    lock: Option<OwnerId>,
    last_access: u64,
    links: usize,
}

#[derive(Debug, Default, Clone, Copy)]
struct Quota {
    used_pages: usize,
    limit_pages: Option<usize>,
}

/// Cumulative store statistics — a point-in-time snapshot of the store's
/// counters in the unified metrics registry (`kvfs.*`).
#[derive(Debug, Default, Clone, Copy)]
pub struct KvStats {
    /// Tokens moved GPU→CPU.
    pub swapped_out_tokens: u64,
    /// Tokens moved CPU→GPU.
    pub swapped_in_tokens: u64,
    /// Copy-on-write page copies performed.
    pub cow_copies: u64,
    /// Entries copied by `extract`/`merge`.
    pub copied_entries: u64,
}

/// Live counter handles into the metrics registry backing [`KvStats`].
#[derive(Debug, Clone)]
struct KvCounters {
    swapped_out_tokens: Counter,
    swapped_in_tokens: Counter,
    cow_copies: Counter,
    copied_entries: Counter,
}

impl KvCounters {
    fn register(registry: &MetricsRegistry) -> Self {
        KvCounters {
            swapped_out_tokens: registry.counter("kvfs.swapped_out_tokens"),
            swapped_in_tokens: registry.counter("kvfs.swapped_in_tokens"),
            cow_copies: registry.counter("kvfs.cow_copies"),
            copied_entries: registry.counter("kvfs.copied_entries"),
        }
    }
}

/// The KV file store.
#[derive(Debug)]
pub struct KvStore {
    pool: PagePool,
    files: BTreeMap<u64, FileMeta>,
    next_file: u64,
    namespace: BTreeMap<String, FileId>,
    quotas: BTreeMap<OwnerId, Quota>,
    access_clock: u64,
    bytes_per_token: u64,
    counters: KvCounters,
}

impl KvStore {
    /// Creates an empty store with a private metrics registry.
    pub fn new(config: KvStoreConfig) -> Self {
        KvStore::with_registry(config, &MetricsRegistry::new())
    }

    /// Creates an empty store whose counters live in `registry` under the
    /// `kvfs.*` names, so the embedding kernel can snapshot them alongside
    /// every other subsystem.
    pub fn with_registry(config: KvStoreConfig, registry: &MetricsRegistry) -> Self {
        KvStore {
            pool: PagePool::new(config.page_tokens, config.gpu_pages, config.cpu_pages),
            files: BTreeMap::new(),
            next_file: 1,
            namespace: BTreeMap::new(),
            quotas: BTreeMap::new(),
            access_clock: 0,
            bytes_per_token: config.bytes_per_token,
            counters: KvCounters::register(registry),
        }
    }

    // ---- accounting ------------------------------------------------------

    /// Tokens per page.
    pub fn page_tokens(&self) -> usize {
        self.pool.page_tokens()
    }

    /// GPU pages in use.
    pub fn gpu_pages_used(&self) -> usize {
        self.pool.gpu_used()
    }

    /// GPU page capacity.
    pub fn gpu_pages_capacity(&self) -> usize {
        self.pool.gpu_capacity()
    }

    /// Free GPU pages.
    pub fn gpu_pages_free(&self) -> usize {
        self.pool.gpu_capacity() - self.pool.gpu_used()
    }

    /// CPU pages in use.
    pub fn cpu_pages_used(&self) -> usize {
        self.pool.cpu_used()
    }

    /// CPU page capacity.
    pub fn cpu_pages_capacity(&self) -> usize {
        self.pool.cpu_capacity()
    }

    /// Total live pages across both tiers.
    pub fn live_pages(&self) -> usize {
        self.pool.live_pages()
    }

    /// KV bytes per token (byte-denominated statistics).
    pub fn bytes_per_token(&self) -> u64 {
        self.bytes_per_token
    }

    /// Cumulative statistics (a snapshot of the `kvfs.*` counters).
    pub fn stats(&self) -> KvStats {
        KvStats {
            swapped_out_tokens: self.counters.swapped_out_tokens.get(),
            swapped_in_tokens: self.counters.swapped_in_tokens.get(),
            cow_copies: self.counters.cow_copies.get(),
            copied_entries: self.counters.copied_entries.get(),
        }
    }

    /// Sets an owner's page quota (`None` = unlimited).
    pub fn set_quota(&mut self, owner: OwnerId, limit_pages: Option<usize>) {
        self.quotas.entry(owner).or_default().limit_pages = limit_pages;
    }

    /// Pages currently charged to an owner.
    pub fn quota_used(&self, owner: OwnerId) -> usize {
        self.quotas.get(&owner).map_or(0, |q| q.used_pages)
    }

    fn charge(&mut self, owner: OwnerId, pages: usize) -> Result<(), KvError> {
        let q = self.quotas.entry(owner).or_default();
        if let Some(limit) = q.limit_pages {
            if q.used_pages + pages > limit {
                return Err(KvError::QuotaExceeded);
            }
        }
        q.used_pages += pages;
        Ok(())
    }

    fn credit(&mut self, owner: OwnerId, pages: usize) {
        let q = self.quotas.entry(owner).or_default();
        debug_assert!(q.used_pages >= pages, "quota underflow");
        q.used_pages = q.used_pages.saturating_sub(pages);
    }

    // ---- permission helpers ----------------------------------------------

    fn meta(&self, id: FileId) -> Result<&FileMeta, KvError> {
        self.files.get(&id.0).ok_or(KvError::NotFound)
    }

    fn meta_mut(&mut self, id: FileId) -> Result<&mut FileMeta, KvError> {
        self.files.get_mut(&id.0).ok_or(KvError::NotFound)
    }

    fn check_read(&self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if caller == OwnerId::ADMIN || caller == m.owner || m.mode.read_all {
            Ok(())
        } else {
            Err(KvError::PermissionDenied)
        }
    }

    fn check_write(&self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if !(caller == OwnerId::ADMIN || caller == m.owner || m.mode.write_all) {
            return Err(KvError::PermissionDenied);
        }
        match m.lock {
            Some(holder) if holder != caller => Err(KvError::Locked),
            _ => Ok(()),
        }
    }

    fn touch(&mut self, id: FileId) {
        self.access_clock += 1;
        let clock = self.access_clock;
        if let Some(m) = self.files.get_mut(&id.0) {
            m.last_access = clock;
        }
    }

    // ---- lifecycle ---------------------------------------------------------

    /// Creates an empty file owned by `owner` with [`Mode::PRIVATE`].
    pub fn create(&mut self, owner: OwnerId) -> Result<FileId, KvError> {
        let id = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            id.0,
            FileMeta {
                pages: Vec::new(),
                len: 0,
                owner,
                mode: Mode::PRIVATE,
                pinned: false,
                lock: None,
                last_access: 0,
                links: 0,
            },
        );
        self.touch(id);
        Ok(id)
    }

    /// Sets a file's permission mode (owner or admin only).
    pub fn chmod(&mut self, id: FileId, caller: OwnerId, mode: Mode) -> Result<(), KvError> {
        let m = self.meta(id)?;
        if caller != OwnerId::ADMIN && caller != m.owner {
            return Err(KvError::PermissionDenied);
        }
        self.meta_mut(id)?.mode = mode;
        Ok(())
    }

    /// Removes a file, releasing its pages and any namespace links.
    pub fn remove(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        let meta = self.files.remove(&id.0).ok_or(KvError::NotFound)?;
        for p in &meta.pages {
            self.pool.release(*p);
        }
        self.credit(meta.owner, meta.pages.len());
        self.namespace.retain(|_, v| *v != id);
        Ok(())
    }

    // ---- namespace ---------------------------------------------------------

    /// Links a path to a file so other processes can [`KvStore::open`] it.
    pub fn link(&mut self, id: FileId, path: &str, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        if self.namespace.contains_key(path) {
            return Err(KvError::AlreadyExists);
        }
        self.namespace.insert(path.to_string(), id);
        self.meta_mut(id)?.links += 1;
        Ok(())
    }

    /// Removes a path (the file itself survives).
    pub fn unlink(&mut self, path: &str, caller: OwnerId) -> Result<(), KvError> {
        let id = *self.namespace.get(path).ok_or(KvError::NotFound)?;
        self.check_write(id, caller)?;
        self.namespace.remove(path);
        self.meta_mut(id)?.links -= 1;
        Ok(())
    }

    /// Resolves a path to a file ID, checking read permission.
    pub fn open(&mut self, path: &str, caller: OwnerId) -> Result<FileId, KvError> {
        let id = *self.namespace.get(path).ok_or(KvError::NotFound)?;
        self.check_read(id, caller)?;
        self.touch(id);
        Ok(id)
    }

    /// Resolves a path without permission checks or access stamping.
    pub fn lookup(&self, path: &str) -> Option<FileId> {
        self.namespace.get(path).copied()
    }

    // ---- locks -------------------------------------------------------------

    /// Takes the exclusive write lock (idempotent for the holder).
    pub fn lock(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_read(id, caller)?;
        let m = self.meta_mut(id)?;
        match m.lock {
            None => {
                m.lock = Some(caller);
                Ok(())
            }
            Some(holder) if holder == caller => Ok(()),
            Some(_) => Err(KvError::Locked),
        }
    }

    /// Releases the exclusive write lock.
    pub fn unlock(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        let m = self.meta_mut(id)?;
        match m.lock {
            Some(holder) if holder == caller => {
                m.lock = None;
                Ok(())
            }
            Some(_) => Err(KvError::NotLockHolder),
            None => Err(KvError::NotLockHolder),
        }
    }

    // ---- content -----------------------------------------------------------

    /// Entry count.
    pub fn len(&self, id: FileId) -> Result<usize, KvError> {
        Ok(self.meta(id)?.len)
    }

    /// Returns `true` if the file has no entries.
    pub fn is_empty(&self, id: FileId) -> Result<bool, KvError> {
        Ok(self.meta(id)?.len == 0)
    }

    /// Fingerprint of the last entry (the context `pred` continues from).
    pub fn tail_fingerprint(&self, id: FileId) -> Result<Option<CtxFingerprint>, KvError> {
        let m = self.meta(id)?;
        Ok(m.pages.last().and_then(|&p| {
            self.pool.page(p).entries.last().map(|e| e.fingerprint)
        }))
    }

    /// Position following the last entry (0 for an empty file).
    pub fn next_position(&self, id: FileId) -> Result<u32, KvError> {
        let m = self.meta(id)?;
        Ok(m
            .pages
            .last()
            .and_then(|&p| self.pool.page(p).entries.last())
            .map_or(0, |e| e.position + 1))
    }

    /// Reads `count` entries starting at entry index `start`.
    pub fn read(
        &mut self,
        id: FileId,
        caller: OwnerId,
        start: usize,
        count: usize,
    ) -> Result<Vec<KvEntry>, KvError> {
        self.check_read(id, caller)?;
        let m = self.meta(id)?;
        if start + count > m.len {
            return Err(KvError::BadRange);
        }
        let mut out = Vec::with_capacity(count);
        let pt = self.pool.page_tokens();
        let mut idx = start;
        while out.len() < count {
            let page = m.pages[idx / pt];
            let within = idx % pt;
            let entries = &self.pool.page(page).entries;
            let take = (count - out.len()).min(entries.len() - within);
            out.extend_from_slice(&entries[within..within + take]);
            idx += take;
        }
        self.touch(id);
        Ok(out)
    }

    /// Reads the whole file (no permission check; kernel/executor internal).
    pub fn read_all_unchecked(&self, id: FileId) -> Result<Vec<KvEntry>, KvError> {
        let m = self.meta(id)?;
        let mut out = Vec::with_capacity(m.len);
        for &p in &m.pages {
            out.extend_from_slice(&self.pool.page(p).entries);
        }
        Ok(out)
    }

    /// Returns `true` if appending `n` entries would fit in the GPU tier
    /// (capacity only; quota is still checked by [`KvStore::append`]).
    /// Executors use this to fail fast before computing model outputs.
    pub fn can_append(&self, id: FileId, n: usize) -> Result<bool, KvError> {
        let pt = self.pool.page_tokens();
        let m = self.meta(id)?;
        let (tail_free, tail_shared) = match m.pages.last() {
            Some(&p) => {
                let page = self.pool.page(p);
                (pt - page.entries.len(), page.refcount > 1)
            }
            None => (0, false),
        };
        let cow = usize::from(n > 0 && tail_free > 0 && tail_shared);
        let new_pages = n.saturating_sub(tail_free).div_ceil(pt);
        Ok(self.pool.gpu_used() + new_pages + cow <= self.pool.gpu_capacity())
    }

    /// Appends entries, copy-on-writing a shared tail page if needed.
    ///
    /// Allocation needs are checked up front, so a failed append leaves the
    /// file unchanged. New pages are allocated in the GPU tier; the file's
    /// existing tail must be GPU-resident.
    pub fn append(
        &mut self,
        id: FileId,
        caller: OwnerId,
        entries: &[KvEntry],
    ) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        if entries.is_empty() {
            return Ok(());
        }
        let pt = self.pool.page_tokens();
        let (tail_free, tail_shared, tail_tier) = {
            let m = self.meta(id)?;
            match m.pages.last() {
                Some(&p) => {
                    let page = self.pool.page(p);
                    (
                        pt - page.entries.len(),
                        page.refcount > 1,
                        Some(page.tier),
                    )
                }
                None => (0, false, None),
            }
        };
        if let Some(t) = tail_tier {
            if t != Tier::Gpu && tail_free > 0 {
                return Err(KvError::NotResident);
            }
        }
        let writes_into_tail = tail_free > 0;
        let cow_pages = usize::from(writes_into_tail && tail_shared);
        let overflow = entries.len().saturating_sub(tail_free);
        let new_pages = overflow.div_ceil(pt);
        // Upfront capacity and quota checks (COW replaces a page in this
        // file, so quota only grows by `new_pages`).
        if self.pool.gpu_used() + new_pages + cow_pages > self.pool.gpu_capacity() {
            return Err(KvError::NoGpuMemory);
        }
        let owner = self.meta(id)?.owner;
        self.charge(owner, new_pages)?;

        // COW the tail if it is shared and we are about to write into it.
        // (`tail_free > 0` implies the file has a tail page, and the
        // capacity check above reserved the COW page — a `BadRange` or
        // `NoGpuMemory` here would mean the accounting itself is broken,
        // so it surfaces as a typed error, not a panic.)
        if cow_pages == 1 {
            let old = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
            let copy = self.pool.alloc(Tier::Gpu)?;
            let entries_copy = self.pool.page(old).entries.clone();
            self.pool.page_mut(copy).entries = entries_copy;
            self.pool.release(old);
            *self
                .meta_mut(id)?
                .pages
                .last_mut()
                .ok_or(KvError::BadRange)? = copy;
            self.counters.cow_copies.inc();
        }

        let mut remaining = entries;
        if writes_into_tail {
            let take = remaining.len().min(tail_free);
            let tail = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
            self.pool
                .page_mut(tail)
                .entries
                .extend_from_slice(&remaining[..take]);
            remaining = &remaining[take..];
        }
        while !remaining.is_empty() {
            let p = self.pool.alloc(Tier::Gpu)?;
            let take = remaining.len().min(pt);
            self.pool
                .page_mut(p)
                .entries
                .extend_from_slice(&remaining[..take]);
            self.meta_mut(id)?.pages.push(p);
            remaining = &remaining[take..];
        }
        self.meta_mut(id)?.len += entries.len();
        self.touch(id);
        Ok(())
    }

    /// Truncates the file to `new_len` entries, releasing now-empty pages.
    ///
    /// A shared boundary page is copy-on-written so the other references keep
    /// their full contents.
    pub fn truncate(&mut self, id: FileId, caller: OwnerId, new_len: usize) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        let m = self.meta(id)?;
        if new_len > m.len {
            return Err(KvError::BadRange);
        }
        if new_len == m.len {
            return Ok(());
        }
        let pt = self.pool.page_tokens();
        let keep_pages = new_len.div_ceil(pt);
        let owner = m.owner;
        let drop_pages: Vec<_> = self.meta(id)?.pages[keep_pages..].to_vec();
        let dropped = drop_pages.len();
        for p in drop_pages {
            self.pool.release(p);
        }
        self.meta_mut(id)?.pages.truncate(keep_pages);
        self.credit(owner, dropped);
        // Trim within the boundary page.
        let within = new_len % pt;
        if within != 0 || new_len == 0 {
            if let Some(&last) = self.meta(id)?.pages.last() {
                if self.pool.page(last).refcount > 1 {
                    let copy = self.pool.alloc(Tier::Gpu)?;
                    let entries = self.pool.page(last).entries.clone();
                    self.pool.page_mut(copy).entries = entries;
                    self.pool.release(last);
                    *self.meta_mut(id)?.pages.last_mut().ok_or(KvError::BadRange)? = copy;
                    self.counters.cow_copies.inc();
                }
                let last = *self.meta(id)?.pages.last().ok_or(KvError::BadRange)?;
                self.pool.page_mut(last).entries.truncate(within);
            }
        }
        self.meta_mut(id)?.len = new_len;
        self.touch(id);
        Ok(())
    }

    // ---- fork / extract / merge ---------------------------------------------

    /// Clones a file by sharing all of its pages (copy-on-write).
    ///
    /// The clone is owned by `caller` and starts private and unpinned. This
    /// is the `kv_fork` of the paper's Figure 2: parallel generation threads
    /// fork a shared prefix "without duplicating the actual tensors".
    pub fn fork(&mut self, id: FileId, caller: OwnerId) -> Result<FileId, KvError> {
        self.check_read(id, caller)?;
        let pages = self.meta(id)?.pages.clone();
        let len = self.meta(id)?.len;
        self.charge(caller, pages.len())?;
        for &p in &pages {
            self.pool.retain(p);
        }
        let new = FileId(self.next_file);
        self.next_file += 1;
        self.files.insert(
            new.0,
            FileMeta {
                pages,
                len,
                owner: caller,
                mode: Mode::PRIVATE,
                pinned: false,
                lock: None,
                last_access: 0,
                links: 0,
            },
        );
        self.touch(new);
        Ok(new)
    }

    /// Builds a new file from entry ranges of an existing file.
    ///
    /// Entries are copied (not shared): an extracted file models *pruned*
    /// context (§4.2's runtime context pruning), whose entries keep the
    /// fingerprints computed under the original context — the approximate-
    /// reuse semantics of techniques like attention sinks.
    pub fn extract(
        &mut self,
        id: FileId,
        caller: OwnerId,
        ranges: &[core::ops::Range<usize>],
    ) -> Result<FileId, KvError> {
        self.check_read(id, caller)?;
        let len = self.meta(id)?.len;
        let mut picked = Vec::new();
        for r in ranges {
            if r.start > r.end || r.end > len {
                return Err(KvError::BadRange);
            }
            let chunk = self.read(id, caller, r.start, r.end - r.start)?;
            picked.extend(chunk);
        }
        if picked.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let new = self.create(caller)?;
        match self.append(new, caller, &picked) {
            Ok(()) => {
                self.counters.copied_entries.add(picked.len() as u64);
                Ok(new)
            }
            Err(e) => {
                let _ = self.remove(new, caller);
                Err(e)
            }
        }
    }

    /// Concatenates several files into a new one (entries copied).
    pub fn merge(&mut self, ids: &[FileId], caller: OwnerId) -> Result<FileId, KvError> {
        if ids.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let mut all = Vec::new();
        for &id in ids {
            self.check_read(id, caller)?;
            all.extend(self.read_all_unchecked(id)?);
        }
        if all.is_empty() {
            return Err(KvError::EmptyInput);
        }
        let new = self.create(caller)?;
        match self.append(new, caller, &all) {
            Ok(()) => {
                self.counters.copied_entries.add(all.len() as u64);
                Ok(new)
            }
            Err(e) => {
                let _ = self.remove(new, caller);
                Err(e)
            }
        }
    }

    // ---- pinning and tiers ---------------------------------------------------

    /// Pins a file: it may not be swapped out or removed by non-owners.
    pub fn pin(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        self.meta_mut(id)?.pinned = true;
        Ok(())
    }

    /// Unpins a file.
    pub fn unpin(&mut self, id: FileId, caller: OwnerId) -> Result<(), KvError> {
        self.check_write(id, caller)?;
        self.meta_mut(id)?.pinned = false;
        Ok(())
    }

    /// Where the file's pages live.
    pub fn residency(&self, id: FileId) -> Result<Residency, KvError> {
        let m = self.meta(id)?;
        if m.pages.is_empty() {
            return Ok(Residency::Empty);
        }
        let gpu = m
            .pages
            .iter()
            .filter(|&&p| self.pool.page(p).tier == Tier::Gpu)
            .count();
        Ok(if gpu == m.pages.len() {
            Residency::Gpu
        } else if gpu == 0 {
            Residency::Cpu
        } else {
            Residency::Mixed
        })
    }

    /// Swaps all pages to the CPU tier; returns tokens moved (for PCIe
    /// timing). Shared pages move too — swap is a whole-page property.
    pub fn swap_out(&mut self, id: FileId, caller: OwnerId) -> Result<usize, KvError> {
        self.check_write(id, caller)?;
        if self.meta(id)?.pinned {
            return Err(KvError::Pinned);
        }
        let pages = self.meta(id)?.pages.clone();
        let mut moved = 0;
        for p in pages {
            moved += self.pool.migrate(p, Tier::Cpu)?;
        }
        self.counters.swapped_out_tokens.add(moved as u64);
        Ok(moved)
    }

    /// Swaps all pages back into the GPU tier; returns tokens moved.
    pub fn swap_in(&mut self, id: FileId, caller: OwnerId) -> Result<usize, KvError> {
        self.check_write(id, caller)?;
        let pages = self.meta(id)?.pages.clone();
        let mut moved = 0;
        for p in pages {
            moved += self.pool.migrate(p, Tier::Gpu)?;
        }
        self.counters.swapped_in_tokens.add(moved as u64);
        self.touch(id);
        Ok(moved)
    }

    /// Preemption eviction hook: swaps out the least-recently-used
    /// GPU-resident file to free pages, skipping pinned, locked and
    /// `exclude`d files (the scheduler excludes files of sequences still
    /// executing). Returns the victim and tokens moved, or `None` when no
    /// file is evictable. Deterministic: ties on `last_access` break by
    /// file id.
    pub fn evict_lru(&mut self, exclude: &[FileId]) -> Option<(FileId, usize)> {
        let victim = self
            .list_files()
            .into_iter()
            .filter(|s| {
                !s.pinned
                    && s.locked_by.is_none()
                    && matches!(s.residency, Residency::Gpu | Residency::Mixed)
                    && !exclude.contains(&s.id)
            })
            .min_by_key(|s| (s.last_access, s.id))?;
        // The victim just passed the evictability filter, so `swap_out`
        // should succeed; if it does not, report "nothing evictable"
        // rather than panicking mid-preemption (lint rule k1).
        let moved = self.swap_out(victim.id, OwnerId::ADMIN).ok()?;
        Some((victim.id, moved))
    }

    /// Releases every lock held by `owner` (kernel cleanup when a process
    /// exits or crashes). Returns the number of locks released.
    pub fn release_locks(&mut self, owner: OwnerId) -> usize {
        let mut released = 0;
        for m in self.files.values_mut() {
            if m.lock == Some(owner) {
                m.lock = None;
                released += 1;
            }
        }
        released
    }

    // ---- introspection ---------------------------------------------------------

    /// Snapshot of one file.
    pub fn stat(&self, id: FileId) -> Result<FileStat, KvError> {
        let m = self.meta(id)?;
        Ok(FileStat {
            id,
            owner: m.owner,
            len: m.len,
            pages: m.pages.len(),
            pinned: m.pinned,
            locked_by: m.lock,
            residency: self.residency(id)?,
            last_access: m.last_access,
            links: m.links,
        })
    }

    /// Snapshots of all files, in file-ID order (deterministic).
    pub fn list_files(&self) -> Vec<FileStat> {
        // Every key in `files` has metadata by construction; `filter_map`
        // instead of unwrapping keeps introspection total (lint rule k1).
        self.files
            .keys()
            .filter_map(|&k| self.stat(FileId(k)).ok())
            .collect()
    }

    /// Checks internal invariants; returns a description of the first
    /// violation. Tests call this after every mutation sequence.
    pub fn verify(&self) -> Result<(), String> {
        // Refcounts must equal the number of file references.
        let mut refs: BTreeMap<crate::page::PageId, u32> = BTreeMap::new();
        for m in self.files.values() {
            for &p in &m.pages {
                *refs.entry(p).or_insert(0) += 1;
            }
        }
        let mut live = 0;
        for (pid, page) in self.pool.iter() {
            live += 1;
            let expected = refs.get(&pid).copied().unwrap_or(0);
            if page.refcount != expected {
                return Err(format!(
                    "page {pid:?}: refcount {} but {} file references",
                    page.refcount, expected
                ));
            }
            if page.refcount == 0 {
                return Err(format!("page {pid:?} is live with refcount 0"));
            }
        }
        if live != refs.len() {
            return Err(format!(
                "{live} live pages but {} referenced pages",
                refs.len()
            ));
        }
        // File lengths must match page contents.
        for (idf, m) in &self.files {
            let total: usize = m
                .pages
                .iter()
                .map(|&p| self.pool.page(p).entries.len())
                .sum();
            if total != m.len {
                return Err(format!(
                    "file {idf}: len {} but pages hold {total} entries",
                    m.len
                ));
            }
            // Only the last page may be partially filled.
            for (i, &p) in m.pages.iter().enumerate() {
                let n = self.pool.page(p).entries.len();
                if i + 1 < m.pages.len() && n != self.pool.page_tokens() {
                    return Err(format!("file {idf}: interior page {i} not full ({n})"));
                }
            }
        }
        // Quota accounting must match file ownership.
        let mut per_owner: BTreeMap<OwnerId, usize> = BTreeMap::new();
        for m in self.files.values() {
            *per_owner.entry(m.owner).or_insert(0) += m.pages.len();
        }
        for (&owner, q) in &self.quotas {
            let expected = per_owner.get(&owner).copied().unwrap_or(0);
            if q.used_pages != expected {
                return Err(format!(
                    "owner {owner:?}: quota used {} but owns {expected} pages",
                    q.used_pages
                ));
            }
        }
        for (&owner, &used) in &per_owner {
            if used > 0 && !self.quotas.contains_key(&owner) {
                return Err(format!("owner {owner:?} owns pages but has no quota record"));
            }
        }
        // Namespace must point at live files.
        for (path, id) in &self.namespace {
            if !self.files.contains_key(&id.0) {
                return Err(format!("path {path:?} points at dead file {id:?}"));
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(x: u64) -> CtxFingerprint {
        CtxFingerprint(x)
    }

    fn entries(range: core::ops::Range<u32>) -> Vec<KvEntry> {
        range.map(|i| KvEntry::new(i, i, fp(i as u64))).collect()
    }

    fn store() -> KvStore {
        KvStore::new(KvStoreConfig::for_tests())
    }

    const U1: OwnerId = OwnerId(1);
    const U2: OwnerId = OwnerId(2);

    #[test]
    fn create_append_read() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        assert_eq!(s.len(f).unwrap(), 10);
        let got = s.read(f, U1, 3, 4).unwrap();
        assert_eq!(got, entries(3..7));
        assert_eq!(s.tail_fingerprint(f).unwrap(), Some(fp(9)));
        assert_eq!(s.next_position(f).unwrap(), 10);
        s.verify().unwrap();
    }

    #[test]
    fn read_bad_range() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..5)).unwrap();
        assert_eq!(s.read(f, U1, 3, 4), Err(KvError::BadRange));
    }

    #[test]
    fn fork_shares_pages_cow_on_append() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap(); // exactly 2 pages of 4
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let pages_before = s.gpu_pages_used();
        let g = s.fork(f, U2).unwrap();
        assert_eq!(s.gpu_pages_used(), pages_before, "fork allocates nothing");
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..8));
        // Append to the fork: tail page is full, so no COW, just a new page.
        s.append(g, U2, &entries(8..9)).unwrap();
        assert_eq!(s.gpu_pages_used(), pages_before + 1);
        // The original is untouched.
        assert_eq!(s.len(f).unwrap(), 8);
        assert_eq!(s.len(g).unwrap(), 9);
        s.verify().unwrap();
    }

    #[test]
    fn cow_on_shared_partial_tail() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..6)).unwrap(); // page0 full, page1 half
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let g = s.fork(f, U2).unwrap();
        let before = s.gpu_pages_used();
        s.append(g, U2, &entries(6..7)).unwrap();
        // COW of the shared tail page: one extra page in the pool.
        assert_eq!(s.gpu_pages_used(), before + 1);
        assert_eq!(s.stats().cow_copies, 1);
        assert_eq!(s.read_all_unchecked(f).unwrap(), entries(0..6));
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..7));
        s.verify().unwrap();
    }

    #[test]
    fn remove_releases_shared_pages_correctly() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        let g = s.fork(f, U2).unwrap();
        s.remove(f, U1).unwrap();
        // Pages survive via g.
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..8));
        assert_eq!(s.gpu_pages_used(), 2);
        s.remove(g, U2).unwrap();
        assert_eq!(s.gpu_pages_used(), 0);
        s.verify().unwrap();
    }

    #[test]
    fn append_out_of_memory_is_atomic() {
        let mut s = KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 2,
            cpu_pages: 0,
            bytes_per_token: 1,
        });
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        assert_eq!(s.append(f, U1, &entries(4..12)), Err(KvError::NoGpuMemory));
        assert_eq!(s.len(f).unwrap(), 4, "failed append must not mutate");
        s.verify().unwrap();
    }

    #[test]
    fn quota_enforced_and_released() {
        let mut s = store();
        s.set_quota(U1, Some(2));
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap(); // 2 pages
        assert_eq!(s.append(f, U1, &entries(8..9)), Err(KvError::QuotaExceeded));
        assert_eq!(s.quota_used(U1), 2);
        s.remove(f, U1).unwrap();
        assert_eq!(s.quota_used(U1), 0);
        s.verify().unwrap();
    }

    #[test]
    fn fork_charges_the_forker() {
        let mut s = store();
        s.set_quota(U2, Some(1));
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..8)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        assert_eq!(s.fork(f, U2), Err(KvError::QuotaExceeded));
        s.set_quota(U2, Some(2));
        let g = s.fork(f, U2).unwrap();
        assert_eq!(s.quota_used(U2), 2);
        s.remove(g, U2).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn permissions() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        // Private by default.
        assert_eq!(s.read(f, U2, 0, 1), Err(KvError::PermissionDenied));
        assert_eq!(s.append(f, U2, &entries(4..5)), Err(KvError::PermissionDenied));
        // World-readable.
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        assert!(s.read(f, U2, 0, 1).is_ok());
        assert_eq!(s.append(f, U2, &entries(4..5)), Err(KvError::PermissionDenied));
        // Admin bypasses everything.
        assert!(s.read(f, OwnerId::ADMIN, 0, 1).is_ok());
        assert!(s.append(f, OwnerId::ADMIN, &entries(4..5)).is_ok());
        // Only owner/admin can chmod.
        assert_eq!(s.chmod(f, U2, Mode::PRIVATE), Err(KvError::PermissionDenied));
        s.verify().unwrap();
    }

    #[test]
    fn locks_exclude_other_writers() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.chmod(f, U1, Mode { read_all: true, write_all: true }).unwrap();
        s.lock(f, U2).unwrap();
        assert_eq!(s.append(f, U1, &entries(0..1)), Err(KvError::Locked));
        assert!(s.append(f, U2, &entries(0..1)).is_ok());
        assert_eq!(s.unlock(f, U1), Err(KvError::NotLockHolder));
        s.unlock(f, U2).unwrap();
        assert!(s.append(f, U1, &entries(1..2)).is_ok());
        assert_eq!(s.unlock(f, U1), Err(KvError::NotLockHolder));
        // Re-lock is idempotent for the holder.
        s.lock(f, U1).unwrap();
        s.lock(f, U1).unwrap();
        s.verify().unwrap();
    }

    #[test]
    fn namespace_link_open_unlink() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        s.chmod(f, U1, Mode::SHARED_READ).unwrap();
        s.link(f, "sys/prompt.kv", U1).unwrap();
        assert_eq!(s.link(f, "sys/prompt.kv", U1), Err(KvError::AlreadyExists));
        assert_eq!(s.open("sys/prompt.kv", U2).unwrap(), f);
        assert_eq!(s.open("missing", U2), Err(KvError::NotFound));
        // U2 cannot unlink a file it cannot write.
        assert_eq!(s.unlink("sys/prompt.kv", U2), Err(KvError::PermissionDenied));
        s.unlink("sys/prompt.kv", U1).unwrap();
        assert_eq!(s.lookup("sys/prompt.kv"), None);
        s.verify().unwrap();
    }

    #[test]
    fn remove_clears_namespace() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.link(f, "a", U1).unwrap();
        s.link(f, "b", U1).unwrap();
        s.remove(f, U1).unwrap();
        assert_eq!(s.lookup("a"), None);
        assert_eq!(s.lookup("b"), None);
        s.verify().unwrap();
    }

    #[test]
    fn extract_copies_ranges() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        let e = s.extract(f, U1, &[0..2, 6..9]).unwrap();
        let got = s.read_all_unchecked(e).unwrap();
        let mut want = entries(0..2);
        want.extend(entries(6..9));
        assert_eq!(got, want);
        // Positions are preserved (discontiguous layout).
        assert_eq!(got[2].position, 6);
        assert_eq!(s.extract(f, U1, &[4..20]), Err(KvError::BadRange));
        assert_eq!(s.extract(f, U1, &[]), Err(KvError::EmptyInput));
        s.verify().unwrap();
    }

    #[test]
    fn merge_concatenates() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        s.append(a, U1, &entries(0..3)).unwrap();
        s.append(b, U1, &entries(10..13)).unwrap();
        let m = s.merge(&[a, b], U1).unwrap();
        let got = s.read_all_unchecked(m).unwrap();
        assert_eq!(got.len(), 6);
        assert_eq!(got[3].token, 10);
        assert_eq!(s.merge(&[], U1), Err(KvError::EmptyInput));
        s.verify().unwrap();
    }

    #[test]
    fn truncate_releases_pages_and_cows_shared_boundary() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap(); // 3 pages (4+4+2)
        let g = s.fork(f, U1).unwrap();
        s.truncate(f, U1, 3).unwrap(); // boundary inside shared page 0
        assert_eq!(s.len(f).unwrap(), 3);
        assert_eq!(s.read_all_unchecked(f).unwrap(), entries(0..3));
        // g still intact.
        assert_eq!(s.read_all_unchecked(g).unwrap(), entries(0..10));
        s.truncate(f, U1, 0).unwrap();
        assert_eq!(s.len(f).unwrap(), 0);
        assert_eq!(s.truncate(g, U1, 11), Err(KvError::BadRange));
        s.verify().unwrap();
    }

    #[test]
    fn swap_out_and_in_move_tokens() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..10)).unwrap();
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        let out = s.swap_out(f, U1).unwrap();
        assert_eq!(out, 10);
        assert_eq!(s.residency(f).unwrap(), Residency::Cpu);
        assert_eq!(s.gpu_pages_used(), 0);
        assert_eq!(s.cpu_pages_used(), 3);
        let back = s.swap_in(f, U1).unwrap();
        assert_eq!(back, 10);
        assert_eq!(s.residency(f).unwrap(), Residency::Gpu);
        assert_eq!(s.stats().swapped_out_tokens, 10);
        assert_eq!(s.stats().swapped_in_tokens, 10);
        s.verify().unwrap();
    }

    #[test]
    fn pinned_files_refuse_swap_out() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..4)).unwrap();
        s.pin(f, U1).unwrap();
        assert_eq!(s.swap_out(f, U1), Err(KvError::Pinned));
        s.unpin(f, U1).unwrap();
        assert!(s.swap_out(f, U1).is_ok());
        s.verify().unwrap();
    }

    #[test]
    fn append_to_swapped_file_requires_residency() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..6)).unwrap(); // partial tail
        s.swap_out(f, U1).unwrap();
        assert_eq!(s.append(f, U1, &entries(6..7)), Err(KvError::NotResident));
        s.swap_in(f, U1).unwrap();
        assert!(s.append(f, U1, &entries(6..7)).is_ok());
        s.verify().unwrap();
    }

    #[test]
    fn stat_and_list_files() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        s.append(f, U1, &entries(0..5)).unwrap();
        s.pin(f, U1).unwrap();
        s.link(f, "x", U1).unwrap();
        let st = s.stat(f).unwrap();
        assert_eq!(st.len, 5);
        assert_eq!(st.pages, 2);
        assert!(st.pinned);
        assert_eq!(st.links, 1);
        assert_eq!(st.owner, U1);
        let g = s.create(U2).unwrap();
        let list = s.list_files();
        assert_eq!(list.len(), 2);
        assert_eq!(list[0].id, f);
        assert_eq!(list[1].id, g);
    }

    #[test]
    fn last_access_ordering_supports_lru() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        s.append(a, U1, &entries(0..1)).unwrap();
        s.append(b, U1, &entries(0..1)).unwrap();
        // Touch a after b.
        let _ = s.read(a, U1, 0, 1).unwrap();
        let sa = s.stat(a).unwrap().last_access;
        let sb = s.stat(b).unwrap().last_access;
        assert!(sa > sb, "a was accessed more recently");
    }

    #[test]
    fn evict_lru_picks_least_recent_and_respects_filters() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U1).unwrap();
        let c = s.create(U2).unwrap();
        s.append(a, U1, &entries(0..4)).unwrap();
        s.append(b, U1, &entries(0..4)).unwrap();
        s.append(c, U2, &entries(0..4)).unwrap();
        // Touch a so b becomes the LRU file.
        let _ = s.read(a, U1, 0, 1).unwrap();
        let (victim, moved) = s.evict_lru(&[]).unwrap();
        assert_eq!(victim, b);
        assert_eq!(moved, 4);
        assert_eq!(s.residency(b).unwrap(), Residency::Cpu);
        // Already-swapped files are no longer candidates; with c excluded
        // and b on CPU, the only remaining candidate is a.
        let (victim, _) = s.evict_lru(&[c]).unwrap();
        assert_eq!(victim, a);
        s.verify().unwrap();
    }

    #[test]
    fn evict_lru_skips_pinned_and_locked() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U2).unwrap();
        s.append(a, U1, &entries(0..2)).unwrap();
        s.append(b, U2, &entries(0..2)).unwrap();
        s.pin(a, U1).unwrap();
        s.lock(b, U2).unwrap();
        assert_eq!(s.evict_lru(&[]), None, "pinned and locked are immune");
        s.unlock(b, U2).unwrap();
        assert_eq!(s.evict_lru(&[]).unwrap().0, b);
        assert_eq!(s.evict_lru(&[]), None, "nothing left on the GPU");
        s.verify().unwrap();
    }

    #[test]
    fn evict_lru_on_empty_store_is_none() {
        let mut s = store();
        assert_eq!(s.evict_lru(&[]), None, "no files at all");
        let f = s.create(U1).unwrap();
        assert_eq!(s.evict_lru(&[]), None, "empty file is not GPU-resident");
        s.remove(f, U1).unwrap();
        assert_eq!(s.evict_lru(&[]), None);
    }

    #[test]
    fn list_files_total_after_removal() {
        let mut s = store();
        let a = s.create(U1).unwrap();
        let b = s.create(U2).unwrap();
        s.remove(a, U1).unwrap();
        let listed: Vec<FileId> = s.list_files().iter().map(|st| st.id).collect();
        assert_eq!(listed, vec![b], "stat never panics on a stale id");
    }

    #[test]
    fn empty_file_edge_cases() {
        let mut s = store();
        let f = s.create(U1).unwrap();
        assert!(s.is_empty(f).unwrap());
        assert_eq!(s.tail_fingerprint(f).unwrap(), None);
        assert_eq!(s.next_position(f).unwrap(), 0);
        assert_eq!(s.residency(f).unwrap(), Residency::Empty);
        assert_eq!(s.read(f, U1, 0, 0).unwrap(), vec![]);
        s.append(f, U1, &[]).unwrap();
        assert!(s.is_empty(f).unwrap());
        s.verify().unwrap();
    }
}
