//! Model-based property tests for the KV store.
//!
//! A shadow model (`Vec<KvEntry>` per live file) tracks the expected contents
//! while random operation sequences run against the real store. After every
//! operation the store's internal invariants ([`KvStore::verify`]) must hold
//! and the contents must match the shadow — including across copy-on-write
//! forks, truncation, extraction, merging and tier migration.

use std::collections::BTreeMap;

use proptest::prelude::*;
use symphony_kvfs::{FileId, KvEntry, KvStore, KvStoreConfig, OwnerId};
use symphony_model::CtxFingerprint;

#[derive(Debug, Clone)]
enum Op {
    Create,
    Append { file: usize, count: usize },
    Fork { file: usize },
    Remove { file: usize },
    Truncate { file: usize, frac: f64 },
    Extract { file: usize, a: f64, b: f64 },
    Merge { a: usize, b: usize },
    SwapOut { file: usize },
    SwapIn { file: usize },
    Demote { file: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        2 => Just(Op::Create),
        6 => (0usize..8, 1usize..12).prop_map(|(file, count)| Op::Append { file, count }),
        3 => (0usize..8).prop_map(|file| Op::Fork { file }),
        2 => (0usize..8).prop_map(|file| Op::Remove { file }),
        2 => (0usize..8, 0.0f64..1.0).prop_map(|(file, frac)| Op::Truncate { file, frac }),
        2 => (0usize..8, 0.0f64..1.0, 0.0f64..1.0).prop_map(|(file, a, b)| Op::Extract { file, a, b }),
        2 => (0usize..8, 0usize..8).prop_map(|(a, b)| Op::Merge { a, b }),
        1 => (0usize..8).prop_map(|file| Op::SwapOut { file }),
        1 => (0usize..8).prop_map(|file| Op::SwapIn { file }),
        1 => (0usize..8).prop_map(|file| Op::Demote { file }),
    ]
}

fn entry(i: u32) -> KvEntry {
    KvEntry::new(i, i, CtxFingerprint(0x1234_5678_u64 ^ i as u64))
}

/// Picks the `idx`-th live file (wrapping), if any.
fn pick(model: &BTreeMap<u64, Vec<KvEntry>>, idx: usize) -> Option<FileId> {
    if model.is_empty() {
        return None;
    }
    let keys: Vec<u64> = model.keys().copied().collect();
    Some(FileId(keys[idx % keys.len()]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn store_matches_shadow_model(ops in proptest::collection::vec(op_strategy(), 1..60)) {
        let owner = OwnerId(1);
        let mut store = KvStore::new(KvStoreConfig {
            page_tokens: 4,
            gpu_pages: 256,
            // A tight DRAM tier so swap-out exercises the disk spill path.
            cpu_pages: 8,
            disk_pages: 256,
            bytes_per_token: 1,
        });
        let mut model: BTreeMap<u64, Vec<KvEntry>> = BTreeMap::new();
        let mut next_token = 0u32;

        for op in ops {
            match op {
                Op::Create => {
                    let f = store.create(owner).unwrap();
                    model.insert(f.0, Vec::new());
                }
                Op::Append { file, count } => {
                    if let Some(f) = pick(&model, file) {
                        let new: Vec<KvEntry> =
                            (0..count as u32).map(|i| entry(next_token + i)).collect();
                        next_token += count as u32;
                        // Appending to a CPU-resident partial tail is an
                        // expected error; swap in first to keep the op alive.
                        let _ = store.swap_in(f, owner);
                        store.append(f, owner, &new).unwrap();
                        model.get_mut(&f.0).unwrap().extend(new);
                    }
                }
                Op::Fork { file } => {
                    if let Some(f) = pick(&model, file) {
                        let g = store.fork(f, owner).unwrap();
                        let contents = model[&f.0].clone();
                        model.insert(g.0, contents);
                    }
                }
                Op::Remove { file } => {
                    if let Some(f) = pick(&model, file) {
                        store.remove(f, owner).unwrap();
                        model.remove(&f.0);
                    }
                }
                Op::Truncate { file, frac } => {
                    if let Some(f) = pick(&model, file) {
                        let len = model[&f.0].len();
                        let new_len = (len as f64 * frac) as usize;
                        let _ = store.swap_in(f, owner);
                        store.truncate(f, owner, new_len).unwrap();
                        model.get_mut(&f.0).unwrap().truncate(new_len);
                    }
                }
                Op::Extract { file, a, b } => {
                    if let Some(f) = pick(&model, file) {
                        let len = model[&f.0].len();
                        let (mut lo, mut hi) =
                            ((len as f64 * a) as usize, (len as f64 * b) as usize);
                        if lo > hi {
                            std::mem::swap(&mut lo, &mut hi);
                        }
                        if lo < hi {
                            let g = store.extract(f, owner, &[lo..hi]).unwrap();
                            model.insert(g.0, model[&f.0][lo..hi].to_vec());
                        }
                    }
                }
                Op::Merge { a, b } => {
                    if let (Some(fa), Some(fb)) = (pick(&model, a), pick(&model, b)) {
                        if !model[&fa.0].is_empty() || !model[&fb.0].is_empty() {
                            let g = store.merge(&[fa, fb], owner).unwrap();
                            let mut joined = model[&fa.0].clone();
                            joined.extend(model[&fb.0].iter().copied());
                            model.insert(g.0, joined);
                        }
                    }
                }
                Op::SwapOut { file } => {
                    if let Some(f) = pick(&model, file) {
                        // May fail if shared pages already moved; both fine.
                        let _ = store.swap_out(f, owner);
                    }
                }
                Op::SwapIn { file } => {
                    if let Some(f) = pick(&model, file) {
                        let _ = store.swap_in(f, owner);
                    }
                }
                Op::Demote { file } => {
                    if let Some(f) = pick(&model, file) {
                        // May fail only if the disk tier fills; both fine.
                        let _ = store.demote_to_disk(f, owner);
                    }
                }
            }

            // Invariants after every operation.
            store.verify().unwrap();
            for (&id, expected) in &model {
                let got = store.read_all_unchecked(FileId(id)).unwrap();
                prop_assert_eq!(&got, expected, "file {} contents diverged", id);
            }
        }

        // Tear everything down: the pool must drain to zero.
        let ids: Vec<u64> = model.keys().copied().collect();
        for id in ids {
            store.remove(FileId(id), owner).unwrap();
        }
        store.verify().unwrap();
        prop_assert_eq!(store.gpu_pages_used(), 0);
        prop_assert_eq!(store.cpu_pages_used(), 0);
        prop_assert_eq!(store.disk_pages_used(), 0);
        prop_assert_eq!(store.live_pages(), 0);
    }
}
