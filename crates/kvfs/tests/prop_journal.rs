//! Property tests for the KVFS journal.
//!
//! Two families:
//!
//! 1. **Round trip** — a random operation sequence (creates, appends,
//!    copy-on-write forks, truncates, removes, links, pins, tier moves,
//!    quotas) runs against a store, the store is snapshotted to a journal,
//!    and the restore must reproduce the *observable* state exactly —
//!    including CoW page sharing (same pool usage, not deep copies), pins,
//!    locks, namespace, and the journal's own byte-identity fixed point.
//! 2. **Torn tail chaos** — the snapshot bytes are cut at every possible
//!    length; replay must never panic, must flag the tear with the typed
//!    `KvError::JournalTorn` detail, and must restore a consistent prefix.
//! 3. **Delta equivalence** — the same op sequence run with the delta log
//!    enabled, drained in batches through the production [`Journal`] file
//!    handle, must restore to the same observable state as the live store.
//! 4. **Compaction** — rewriting any journal prefix to its
//!    snapshot-equivalent form must restore byte-identically at every
//!    truncation point, and a crash before the atomic rename must leave
//!    the old journal untouched and valid.

use proptest::prelude::*;
use symphony_kvfs::{
    FileId, Journal, JournalConfig, KvEntry, KvError, KvStore, KvStoreConfig, OwnerId,
};
use symphony_model::CtxFingerprint;
use symphony_telemetry::MetricsRegistry;

#[derive(Debug, Clone)]
enum Op {
    Create { owner: u64 },
    Append { file: usize, count: usize },
    Fork { file: usize, owner: u64 },
    Remove { file: usize },
    Truncate { file: usize, frac: f64 },
    Link { file: usize, path: u8 },
    Unlink { path: u8 },
    Pin { file: usize },
    SwapOut { file: usize },
    Demote { file: usize },
    Lock { file: usize },
    Quota { owner: u64, limit: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..4).prop_map(|owner| Op::Create { owner }),
        6 => (0usize..8, 1usize..12).prop_map(|(file, count)| Op::Append { file, count }),
        3 => (0usize..8, 1u64..4).prop_map(|(file, owner)| Op::Fork { file, owner }),
        2 => (0usize..8).prop_map(|file| Op::Remove { file }),
        2 => (0usize..8, 0.0f64..1.0).prop_map(|(file, frac)| Op::Truncate { file, frac }),
        2 => (0usize..8, 0u8..6).prop_map(|(file, path)| Op::Link { file, path }),
        1 => (0u8..6).prop_map(|path| Op::Unlink { path }),
        2 => (0usize..8).prop_map(|file| Op::Pin { file }),
        2 => (0usize..8).prop_map(|file| Op::SwapOut { file }),
        2 => (0usize..8).prop_map(|file| Op::Demote { file }),
        1 => (0usize..8).prop_map(|file| Op::Lock { file }),
        1 => (1u64..4, 1usize..64).prop_map(|(owner, limit)| Op::Quota { owner, limit }),
    ]
}

fn entry(i: u32) -> KvEntry {
    KvEntry::new(i, i, CtxFingerprint(0x9e37_79b9_u64 ^ i as u64))
}

fn config() -> KvStoreConfig {
    KvStoreConfig {
        page_tokens: 4,
        gpu_pages: 256,
        cpu_pages: 8,
        disk_pages: 256,
        bytes_per_token: 1,
    }
}

/// Applies one op to `store`, maintaining the live-file list and token
/// counter exactly the way [`build_store`] does.
fn apply_op(store: &mut KvStore, live: &mut Vec<FileId>, next_token: &mut u32, op: &Op) {
    let admin = OwnerId::ADMIN;
    match *op {
        Op::Create { owner } => {
            if let Ok(f) = store.create(OwnerId(owner)) {
                live.push(f);
            }
        }
        Op::Append { file, count } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                let new: Vec<KvEntry> =
                    (0..count as u32).map(|i| entry(*next_token + i)).collect();
                *next_token += count as u32;
                let _ = store.swap_in(f, admin);
                let _ = store.append(f, admin, &new);
            }
        }
        Op::Fork { file, owner } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                if let Ok(g) = store.fork(f, OwnerId(owner)) {
                    live.push(g);
                }
            }
        }
        Op::Remove { file } => {
            if !live.is_empty() {
                let f = live.remove(file % live.len());
                let _ = store.remove(f, admin);
            }
        }
        Op::Truncate { file, frac } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                if let Ok(len) = store.len(f) {
                    let _ = store.swap_in(f, admin);
                    let _ = store.truncate(f, admin, (len as f64 * frac) as usize);
                }
            }
        }
        Op::Link { file, path } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                let _ = store.link(f, &format!("p/{path}"), admin);
            }
        }
        Op::Unlink { path } => {
            let _ = store.unlink(&format!("p/{path}"), admin);
        }
        Op::Pin { file } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                let _ = store.pin(f, admin);
            }
        }
        Op::SwapOut { file } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                let _ = store.swap_out(f, admin);
            }
        }
        Op::Demote { file } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                let _ = store.demote_to_disk(f, admin);
            }
        }
        Op::Lock { file } => {
            if let Some(&f) = live.get(file % live.len().max(1)) {
                if let Ok(owner) = store.stat(f).map(|s| s.owner) {
                    let _ = store.lock(f, owner);
                }
            }
        }
        Op::Quota { owner, limit } => {
            // Only raiseable floors: never set a limit below current
            // usage, or later ops would fail for quota reasons the
            // shadowing below does not track.
            let used = store.quota_used(OwnerId(owner));
            store.set_quota(OwnerId(owner), Some(limit.max(used).max(32)));
        }
    }
    store.verify().unwrap();
}

/// Runs the op sequence and returns the resulting store plus live file ids.
fn build_store(ops: &[Op]) -> (KvStore, Vec<FileId>) {
    let mut store = KvStore::new(config());
    let mut live: Vec<FileId> = Vec::new();
    let mut next_token = 0u32;
    for op in ops {
        apply_op(&mut store, &mut live, &mut next_token, op);
    }
    (store, live)
}


proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_restore_reproduces_observable_state(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let (store, live) = build_store(&ops);
        let bytes = store.journal_bytes();
        let (restored, report) =
            KvStore::restore_from_journal_bytes(config(), &MetricsRegistry::new(), &bytes)
                .unwrap();
        prop_assert_eq!(report.torn, None);
        restored.verify().unwrap();

        // Byte-identity fixed point: the restored store writes the exact
        // same journal.
        prop_assert_eq!(restored.journal_bytes(), bytes);

        // Observable state: contents, stat fields, pool usage (CoW shares
        // restore as shares, so the tier counts match exactly).
        prop_assert_eq!(restored.gpu_pages_used(), store.gpu_pages_used());
        prop_assert_eq!(restored.cpu_pages_used(), store.cpu_pages_used());
        prop_assert_eq!(restored.disk_pages_used(), store.disk_pages_used());
        prop_assert_eq!(restored.live_pages(), store.live_pages());
        for f in live {
            let a = store.stat(f).unwrap();
            let b = restored.stat(f).unwrap();
            prop_assert_eq!(a.owner, b.owner);
            prop_assert_eq!(a.len, b.len);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.pinned, b.pinned);
            prop_assert_eq!(a.locked_by, b.locked_by);
            prop_assert_eq!(a.residency, b.residency);
            prop_assert_eq!(a.last_access, b.last_access);
            prop_assert_eq!(a.links, b.links);
            prop_assert_eq!(
                restored.read_all_unchecked(f).unwrap(),
                store.read_all_unchecked(f).unwrap()
            );
            prop_assert_eq!(store.quota_used(a.owner), restored.quota_used(a.owner));
        }
    }

    #[test]
    fn torn_tail_restores_consistent_prefix_at_every_cut(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let (store, _) = build_store(&ops);
        let bytes = store.journal_bytes();
        let registry = MetricsRegistry::new();
        // Every cut length: no panic; either a typed hard error (header
        // unusable) or a verified store with the tear reported.
        for cut in 0..bytes.len() {
            match KvStore::restore_from_journal_bytes(config(), &registry, &bytes[..cut]) {
                Err(KvError::JournalTorn) => {} // header unusable: nothing restored
                Err(e) => prop_assert!(false, "unexpected hard error at cut {}: {:?}", cut, e),
                Ok((prefix, report)) => {
                    prop_assert_eq!(
                        report.torn,
                        Some(KvError::JournalTorn),
                        "a cut journal must read as torn (cut {})",
                        cut
                    );
                    prefix.verify().unwrap();
                    // Every restored file must be fully readable.
                    for st in prefix.list_files() {
                        prop_assert_eq!(
                            prefix.read_all_unchecked(st.id).unwrap().len(),
                            st.len
                        );
                    }
                }
            }
        }
        // The untouched journal is not torn.
        let (_, report) =
            KvStore::restore_from_journal_bytes(config(), &registry, &bytes).unwrap();
        prop_assert_eq!(report.torn, None);
    }
}

/// Builds a journal the way a live kernel does: base snapshot written at
/// open, then the delta log drained and appended every `batch` ops through
/// the production [`Journal`] file handle. Returns the final store, its
/// live file ids, and the on-disk journal bytes.
fn build_delta_journal(ops: &[Op], batch: usize, tag: &str) -> (KvStore, Vec<FileId>, Vec<u8>) {
    let path = std::env::temp_dir().join(format!(
        "symj_prop_{tag}_{}_{:?}.journal",
        std::process::id(),
        std::thread::current().id()
    ));
    let mut store = KvStore::new(config());
    store.enable_delta_log();
    let base = store.journal_bytes();
    let mut journal = Journal::create(
        &path,
        &base,
        JournalConfig {
            flush_every_bytes: usize::MAX,
            compact_threshold_bytes: u64::MAX,
        },
    )
    .unwrap();
    let mut live = Vec::new();
    let mut next_token = 0u32;
    for (k, op) in ops.iter().enumerate() {
        apply_op(&mut store, &mut live, &mut next_token, op);
        if (k + 1) % batch == 0 {
            for rec in store.take_delta() {
                journal.append(&rec).unwrap();
            }
            journal.flush().unwrap();
        }
    }
    for rec in store.take_delta() {
        journal.append(&rec).unwrap();
    }
    journal.flush().unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    (store, live, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn delta_journal_restores_live_state(
        ops in proptest::collection::vec(op_strategy(), 1..40)
    ) {
        let (store, live, bytes) = build_delta_journal(&ops, 5, "delta");
        let (restored, report) =
            KvStore::restore_from_journal_bytes(config(), &MetricsRegistry::new(), &bytes)
                .unwrap();
        prop_assert_eq!(report.torn, None);
        restored.verify().unwrap();
        prop_assert_eq!(restored.gpu_pages_used(), store.gpu_pages_used());
        prop_assert_eq!(restored.cpu_pages_used(), store.cpu_pages_used());
        prop_assert_eq!(restored.disk_pages_used(), store.disk_pages_used());
        prop_assert_eq!(restored.live_pages(), store.live_pages());
        for f in live {
            let a = store.stat(f).unwrap();
            let b = restored.stat(f).unwrap();
            prop_assert_eq!(a.owner, b.owner);
            prop_assert_eq!(a.len, b.len);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.pinned, b.pinned);
            prop_assert_eq!(a.locked_by, b.locked_by);
            prop_assert_eq!(a.residency, b.residency);
            prop_assert_eq!(a.last_access, b.last_access);
            prop_assert_eq!(a.links, b.links);
            prop_assert_eq!(
                restored.read_all_unchecked(f).unwrap(),
                store.read_all_unchecked(f).unwrap()
            );
            prop_assert_eq!(store.quota_used(a.owner), restored.quota_used(a.owner));
        }
    }
}

proptest! {
    // Every truncation point restores three times (prefix, compact,
    // recompact), so keep the op sequences short.
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn compaction_is_restore_identical_at_every_cut(
        ops in proptest::collection::vec(op_strategy(), 1..12)
    ) {
        let (_store, _live, bytes) = build_delta_journal(&ops, 3, "cut");
        let registry = MetricsRegistry::new();
        for cut in 0..=bytes.len() {
            // A prefix too short even for the header has nothing to
            // compact; every other cut restores to *some* consistent
            // store, and compaction is defined as that store's canonical
            // snapshot.
            let Ok((prefix, _)) =
                KvStore::restore_from_journal_bytes(config(), &registry, &bytes[..cut])
            else {
                continue;
            };
            let compacted = prefix.journal_bytes();
            let (recovered, report) =
                KvStore::restore_from_journal_bytes(config(), &registry, &compacted)
                    .unwrap();
            prop_assert_eq!(report.torn, None, "compacted journal must be whole (cut {})", cut);
            recovered.verify().unwrap();
            // Byte identity: restoring the compacted journal reproduces
            // the exact store the uncompacted prefix restored to.
            prop_assert_eq!(
                recovered.journal_bytes(),
                compacted,
                "compact→restore must be a fixed point (cut {})",
                cut
            );
        }
    }
}

#[test]
fn crash_mid_compaction_preserves_the_old_journal() {
    let path = std::env::temp_dir().join(format!(
        "symj_prop_crash_{}.journal",
        std::process::id()
    ));
    let admin = OwnerId::ADMIN;
    let mut store = KvStore::new(config());
    store.enable_delta_log();
    let base = store.journal_bytes();
    let mut journal = Journal::create(
        &path,
        &base,
        JournalConfig {
            flush_every_bytes: usize::MAX,
            compact_threshold_bytes: 1,
        },
    )
    .unwrap();
    let f = store.create(admin).unwrap();
    store.append(f, admin, &[entry(1), entry(2), entry(3)]).unwrap();
    store.link(f, "p/crash", admin).unwrap();
    for rec in store.take_delta() {
        journal.append(&rec).unwrap();
    }
    journal.flush().unwrap();
    let before = std::fs::read(&path).unwrap();
    assert!(journal.needs_compaction(), "threshold of 1 byte must trip");

    // Crash after writing the temp file but before the atomic rename:
    // the live journal is byte-for-byte untouched and still restores.
    journal.compact_crash_before_rename(&store.journal_bytes()).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), before, "old journal must survive the crash");
    let (recovered, report) =
        KvStore::restore_from_journal_bytes(config(), &MetricsRegistry::new(), &before).unwrap();
    assert_eq!(report.torn, None);
    assert_eq!(recovered.read_all_unchecked(f).unwrap().len(), 3);

    // The real compaction lands atomically and restores identically.
    let snap = store.journal_bytes();
    journal.compact(&snap).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), snap);
    let (rec2, rep2) =
        KvStore::restore_from_journal_bytes(config(), &MetricsRegistry::new(), &snap).unwrap();
    assert_eq!(rep2.torn, None);
    assert_eq!(
        rec2.read_all_unchecked(f).unwrap(),
        store.read_all_unchecked(f).unwrap()
    );
    std::fs::remove_file(&path).ok();
    let tmp = path.with_file_name(format!(
        "{}.compact",
        path.file_name().unwrap().to_string_lossy()
    ));
    std::fs::remove_file(tmp).ok();
}
