//! Property tests for the KVFS journal.
//!
//! Two families:
//!
//! 1. **Round trip** — a random operation sequence (creates, appends,
//!    copy-on-write forks, truncates, removes, links, pins, tier moves,
//!    quotas) runs against a store, the store is snapshotted to a journal,
//!    and the restore must reproduce the *observable* state exactly —
//!    including CoW page sharing (same pool usage, not deep copies), pins,
//!    locks, namespace, and the journal's own byte-identity fixed point.
//! 2. **Torn tail chaos** — the snapshot bytes are cut at every possible
//!    length; replay must never panic, must flag the tear with the typed
//!    `KvError::JournalTorn` detail, and must restore a consistent prefix.

use proptest::prelude::*;
use symphony_kvfs::{FileId, KvEntry, KvError, KvStore, KvStoreConfig, OwnerId};
use symphony_model::CtxFingerprint;
use symphony_telemetry::MetricsRegistry;

#[derive(Debug, Clone)]
enum Op {
    Create { owner: u64 },
    Append { file: usize, count: usize },
    Fork { file: usize, owner: u64 },
    Remove { file: usize },
    Truncate { file: usize, frac: f64 },
    Link { file: usize, path: u8 },
    Unlink { path: u8 },
    Pin { file: usize },
    SwapOut { file: usize },
    Demote { file: usize },
    Lock { file: usize },
    Quota { owner: u64, limit: usize },
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => (1u64..4).prop_map(|owner| Op::Create { owner }),
        6 => (0usize..8, 1usize..12).prop_map(|(file, count)| Op::Append { file, count }),
        3 => (0usize..8, 1u64..4).prop_map(|(file, owner)| Op::Fork { file, owner }),
        2 => (0usize..8).prop_map(|file| Op::Remove { file }),
        2 => (0usize..8, 0.0f64..1.0).prop_map(|(file, frac)| Op::Truncate { file, frac }),
        2 => (0usize..8, 0u8..6).prop_map(|(file, path)| Op::Link { file, path }),
        1 => (0u8..6).prop_map(|path| Op::Unlink { path }),
        2 => (0usize..8).prop_map(|file| Op::Pin { file }),
        2 => (0usize..8).prop_map(|file| Op::SwapOut { file }),
        2 => (0usize..8).prop_map(|file| Op::Demote { file }),
        1 => (0usize..8).prop_map(|file| Op::Lock { file }),
        1 => (1u64..4, 1usize..64).prop_map(|(owner, limit)| Op::Quota { owner, limit }),
    ]
}

fn entry(i: u32) -> KvEntry {
    KvEntry::new(i, i, CtxFingerprint(0x9e37_79b9_u64 ^ i as u64))
}

fn config() -> KvStoreConfig {
    KvStoreConfig {
        page_tokens: 4,
        gpu_pages: 256,
        cpu_pages: 8,
        disk_pages: 256,
        bytes_per_token: 1,
    }
}

/// Runs the op sequence and returns the resulting store plus live file ids.
fn build_store(ops: &[Op]) -> (KvStore, Vec<FileId>) {
    let admin = OwnerId::ADMIN;
    let mut store = KvStore::new(config());
    let mut live: Vec<FileId> = Vec::new();
    let mut next_token = 0u32;
    for op in ops {
        match *op {
            Op::Create { owner } => {
                if let Ok(f) = store.create(OwnerId(owner)) {
                    live.push(f);
                }
            }
            Op::Append { file, count } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    let new: Vec<KvEntry> =
                        (0..count as u32).map(|i| entry(next_token + i)).collect();
                    next_token += count as u32;
                    let _ = store.swap_in(f, admin);
                    let _ = store.append(f, admin, &new);
                }
            }
            Op::Fork { file, owner } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    if let Ok(g) = store.fork(f, OwnerId(owner)) {
                        live.push(g);
                    }
                }
            }
            Op::Remove { file } => {
                if !live.is_empty() {
                    let f = live.remove(file % live.len());
                    let _ = store.remove(f, admin);
                }
            }
            Op::Truncate { file, frac } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    if let Ok(len) = store.len(f) {
                        let _ = store.swap_in(f, admin);
                        let _ = store.truncate(f, admin, (len as f64 * frac) as usize);
                    }
                }
            }
            Op::Link { file, path } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    let _ = store.link(f, &format!("p/{path}"), admin);
                }
            }
            Op::Unlink { path } => {
                let _ = store.unlink(&format!("p/{path}"), admin);
            }
            Op::Pin { file } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    let _ = store.pin(f, admin);
                }
            }
            Op::SwapOut { file } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    let _ = store.swap_out(f, admin);
                }
            }
            Op::Demote { file } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    let _ = store.demote_to_disk(f, admin);
                }
            }
            Op::Lock { file } => {
                if let Some(&f) = live.get(file % live.len().max(1)) {
                    if let Ok(owner) = store.stat(f).map(|s| s.owner) {
                        let _ = store.lock(f, owner);
                    }
                }
            }
            Op::Quota { owner, limit } => {
                // Only raiseable floors: never set a limit below current
                // usage, or later ops would fail for quota reasons the
                // shadowing below does not track.
                let used = store.quota_used(OwnerId(owner));
                store.set_quota(OwnerId(owner), Some(limit.max(used).max(32)));
            }
        }
        store.verify().unwrap();
    }
    (store, live)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn snapshot_restore_reproduces_observable_state(
        ops in proptest::collection::vec(op_strategy(), 1..50)
    ) {
        let (store, live) = build_store(&ops);
        let bytes = store.journal_bytes();
        let (restored, report) =
            KvStore::restore_from_journal_bytes(config(), &MetricsRegistry::new(), &bytes)
                .unwrap();
        prop_assert_eq!(report.torn, None);
        restored.verify().unwrap();

        // Byte-identity fixed point: the restored store writes the exact
        // same journal.
        prop_assert_eq!(restored.journal_bytes(), bytes);

        // Observable state: contents, stat fields, pool usage (CoW shares
        // restore as shares, so the tier counts match exactly).
        prop_assert_eq!(restored.gpu_pages_used(), store.gpu_pages_used());
        prop_assert_eq!(restored.cpu_pages_used(), store.cpu_pages_used());
        prop_assert_eq!(restored.disk_pages_used(), store.disk_pages_used());
        prop_assert_eq!(restored.live_pages(), store.live_pages());
        for f in live {
            let a = store.stat(f).unwrap();
            let b = restored.stat(f).unwrap();
            prop_assert_eq!(a.owner, b.owner);
            prop_assert_eq!(a.len, b.len);
            prop_assert_eq!(a.pages, b.pages);
            prop_assert_eq!(a.pinned, b.pinned);
            prop_assert_eq!(a.locked_by, b.locked_by);
            prop_assert_eq!(a.residency, b.residency);
            prop_assert_eq!(a.last_access, b.last_access);
            prop_assert_eq!(a.links, b.links);
            prop_assert_eq!(
                restored.read_all_unchecked(f).unwrap(),
                store.read_all_unchecked(f).unwrap()
            );
            prop_assert_eq!(store.quota_used(a.owner), restored.quota_used(a.owner));
        }
    }

    #[test]
    fn torn_tail_restores_consistent_prefix_at_every_cut(
        ops in proptest::collection::vec(op_strategy(), 1..20)
    ) {
        let (store, _) = build_store(&ops);
        let bytes = store.journal_bytes();
        let registry = MetricsRegistry::new();
        // Every cut length: no panic; either a typed hard error (header
        // unusable) or a verified store with the tear reported.
        for cut in 0..bytes.len() {
            match KvStore::restore_from_journal_bytes(config(), &registry, &bytes[..cut]) {
                Err(KvError::JournalTorn) => {} // header unusable: nothing restored
                Err(e) => prop_assert!(false, "unexpected hard error at cut {}: {:?}", cut, e),
                Ok((prefix, report)) => {
                    prop_assert_eq!(
                        report.torn,
                        Some(KvError::JournalTorn),
                        "a cut journal must read as torn (cut {})",
                        cut
                    );
                    prefix.verify().unwrap();
                    // Every restored file must be fully readable.
                    for st in prefix.list_files() {
                        prop_assert_eq!(
                            prefix.read_all_unchecked(st.id).unwrap().len(),
                            st.len
                        );
                    }
                }
            }
        }
        // The untouched journal is not torn.
        let (_, report) =
            KvStore::restore_from_journal_bytes(config(), &registry, &bytes).unwrap();
        prop_assert_eq!(report.torn, None);
    }
}
